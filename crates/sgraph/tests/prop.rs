//! Property-based tests for the sgraph substrate.

use proptest::prelude::*;
use sgraph::stochastic::{l1_distance, normalize_l1, PowerIterationOpts};
use sgraph::{GraphBuilder, JumpVector, NodeId, RowStochastic};

/// Strategy: a random directed graph as (num_nodes, edge list).
fn arb_graph() -> impl Strategy<Value = (u32, Vec<(u32, u32, f64)>)> {
    (2u32..60).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (0..n, 0..n, 0.01f64..10.0),
            0..200,
        );
        (Just(n), edges)
    })
}

proptest! {
    #[test]
    fn build_never_panics_and_validates((n, edges) in arb_graph()) {
        let g = GraphBuilder::from_weighted_edges(n, &edges);
        prop_assert!(g.validate().is_ok());
        prop_assert!(g.num_edges() <= edges.len());
    }

    #[test]
    fn out_and_in_edge_counts_agree((n, edges) in arb_graph()) {
        let g = GraphBuilder::from_weighted_edges(n, &edges);
        let out_total: usize = g.nodes().map(|v| g.out_degree(v)).sum();
        let in_total: usize = g.nodes().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_total, g.num_edges());
        prop_assert_eq!(in_total, g.num_edges());
    }

    #[test]
    fn transpose_involution((n, edges) in arb_graph()) {
        let g = GraphBuilder::from_weighted_edges(n, &edges);
        let tt = g.transpose().transpose();
        prop_assert_eq!(tt, g);
    }

    #[test]
    fn transpose_swaps_degrees((n, edges) in arb_graph()) {
        let g = GraphBuilder::from_weighted_edges(n, &edges);
        let t = g.transpose();
        for v in g.nodes() {
            prop_assert_eq!(g.out_degree(v), t.in_degree(v));
            prop_assert_eq!(g.in_degree(v), t.out_degree(v));
        }
    }

    #[test]
    fn edge_iterator_matches_has_edge((n, edges) in arb_graph()) {
        let g = GraphBuilder::from_weighted_edges(n, &edges);
        for e in g.edges() {
            prop_assert!(g.has_edge(e.src, e.dst));
            prop_assert_eq!(g.edge_weight(e.src, e.dst), Some(e.weight));
        }
    }

    #[test]
    fn duplicate_weights_sum((n, edges) in arb_graph()) {
        let g = GraphBuilder::from_weighted_edges(n, &edges);
        let expected: f64 = edges.iter().map(|e| e.2).sum();
        prop_assert!((g.total_weight() - expected).abs() < 1e-9 * (1.0 + expected.abs()));
    }

    #[test]
    fn stochastic_step_conserves_mass((n, edges) in arb_graph(), damping in 0.0f64..1.0) {
        let g = GraphBuilder::from_weighted_edges(n, &edges);
        let op = RowStochastic::new(&g);
        let mut x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        normalize_l1(&mut x);
        let mut y = vec![0.0; n as usize];
        op.apply(&x, &mut y, damping, &JumpVector::Uniform);
        let sum: f64 = y.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "mass {sum} not conserved");
        prop_assert!(y.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn stationary_is_fixed_point((n, edges) in arb_graph()) {
        let g = GraphBuilder::from_weighted_edges(n, &edges);
        let op = RowStochastic::new(&g);
        let res = op.stationary(&PowerIterationOpts { tol: 1e-12, max_iter: 500, ..Default::default() });
        if res.converged {
            let mut y = vec![0.0; n as usize];
            op.apply(&res.scores, &mut y, 0.85, &JumpVector::Uniform);
            prop_assert!(l1_distance(&res.scores, &y) < 1e-9);
        }
    }

    #[test]
    fn parallel_apply_matches_sequential((n, edges) in arb_graph(), threads in 2usize..6) {
        let g = GraphBuilder::from_weighted_edges(n, &edges);
        let op = RowStochastic::new(&g);
        let mut x: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
        normalize_l1(&mut x);
        let mut y1 = vec![0.0; n as usize];
        let mut y2 = vec![0.0; n as usize];
        op.apply(&x, &mut y1, 0.85, &JumpVector::Uniform);
        op.apply_parallel(&x, &mut y2, 0.85, &JumpVector::Uniform, threads);
        prop_assert!(l1_distance(&y1, &y2) < 1e-12);
    }

    #[test]
    fn binary_roundtrip_identity((n, edges) in arb_graph()) {
        let g = GraphBuilder::from_weighted_edges(n, &edges);
        let mut buf = Vec::new();
        sgraph::io::write_binary(&g, &mut buf).unwrap();
        let g2 = sgraph::io::read_binary(&buf[..]).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn text_roundtrip_identity((n, edges) in arb_graph()) {
        let g = GraphBuilder::from_weighted_edges(n, &edges);
        let mut buf = Vec::new();
        sgraph::io::write_edge_list(&g, &mut buf).unwrap();
        let g2 = sgraph::io::read_edge_list(&buf[..], Some(n)).unwrap();
        // Text roundtrip goes through decimal printing; weights are exact
        // for the f64 display format Rust uses (shortest roundtrip repr).
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn scc_component_count_bounds((n, edges) in arb_graph()) {
        let g = GraphBuilder::from_weighted_edges(n, &edges);
        let scc = sgraph::scc::tarjan_scc(&g);
        prop_assert!(scc.num_components >= 1);
        prop_assert!(scc.num_components <= n);
        let sizes = scc.component_sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), n as usize);
        prop_assert!(sizes.iter().all(|&s| s > 0));
    }

    #[test]
    fn condensation_is_dag((n, edges) in arb_graph()) {
        let g = GraphBuilder::from_weighted_edges(n, &edges);
        let scc = sgraph::scc::tarjan_scc(&g);
        let dag = sgraph::scc::condensation(&g, &scc);
        prop_assert!(!sgraph::traversal::is_cyclic(&dag));
    }

    #[test]
    fn wcc_refines_scc((n, edges) in arb_graph()) {
        // Two nodes in the same SCC must be in the same WCC.
        let g = GraphBuilder::from_weighted_edges(n, &edges);
        let scc = sgraph::scc::tarjan_scc(&g);
        let wcc = sgraph::components::weakly_connected_components(&g);
        for a in 0..n as usize {
            for b in (a + 1)..n as usize {
                if scc.component[a] == scc.component[b] {
                    prop_assert_eq!(wcc.component[a], wcc.component[b]);
                }
            }
        }
    }

    #[test]
    fn subgraph_scores_scatter_gather((n, edges) in arb_graph(), keep_mod in 1u32..5) {
        let g = GraphBuilder::from_weighted_edges(n, &edges);
        let (sub, map) = sgraph::view::induced_subgraph(&g, |v| v.0 % keep_mod == 0);
        let sub_scores: Vec<f64> = (0..sub.len()).map(|i| i as f64).collect();
        let full = map.scatter(&sub_scores, -1.0);
        let back = map.gather(&full);
        prop_assert_eq!(back, sub_scores);
        // Dropped nodes keep the fill value.
        for v in g.nodes() {
            if v.0 % keep_mod != 0 {
                prop_assert_eq!(full[v.index()], -1.0);
            }
        }
    }

    #[test]
    fn bfs_distances_respect_edges((n, edges) in arb_graph()) {
        let g = GraphBuilder::from_weighted_edges(n, &edges);
        let dist = sgraph::traversal::bfs_distances(&g, NodeId(0));
        // Triangle inequality along each edge.
        for e in g.edges() {
            if let Some(ds) = dist[e.src.index()] {
                if let Some(dd) = dist[e.dst.index()] {
                    prop_assert!(dd <= ds + 1);
                } else {
                    prop_assert!(false, "dst unreachable but src reachable via edge");
                }
            }
        }
    }
}

proptest! {
    #[test]
    fn kcore_numbers_are_bounded_by_degree((n, edges) in arb_graph()) {
        let g = GraphBuilder::from_weighted_edges(n, &edges);
        let res = sgraph::kcore::k_core_decomposition(&g);
        for v in g.nodes() {
            let deg = g.in_degree(v) + g.out_degree(v);
            prop_assert!(res.core[v.index()] as usize <= deg,
                "core number exceeds total degree");
        }
        prop_assert_eq!(res.histogram().iter().sum::<usize>(), n as usize);
    }

    #[test]
    fn kcore_members_have_min_degree_within_core((n, edges) in arb_graph()) {
        // Defining property: inside the k-core subgraph, every member has
        // total degree >= k.
        let g = GraphBuilder::from_weighted_edges(n, &edges);
        let res = sgraph::kcore::k_core_decomposition(&g);
        let k = res.degeneracy;
        if k == 0 {
            return Ok(());
        }
        let members = res.members_of_core(k);
        let in_core = |v: NodeId| res.core[v.index()] >= k;
        for &v in &members {
            let deg: usize = g
                .out_neighbors(v)
                .iter()
                .chain(g.in_neighbors(v))
                .filter(|&&u| in_core(u))
                .count();
            prop_assert!(deg >= k as usize,
                "node {} has degree {} inside the {}-core", v, deg, k);
        }
    }

    #[test]
    fn edge_sampling_is_nested_and_bounded((n, edges) in arb_graph(), seed in 0u64..100) {
        let g = GraphBuilder::from_weighted_edges(n, &edges);
        let half = sgraph::sampling::sample_edges(&g, 0.5, seed);
        let most = sgraph::sampling::sample_edges(&g, 0.9, seed);
        prop_assert!(half.num_edges() <= most.num_edges());
        prop_assert!(most.num_edges() <= g.num_edges());
        for e in half.edges() {
            prop_assert!(most.has_edge(e.src, e.dst));
            prop_assert!(g.has_edge(e.src, e.dst));
        }
        half.validate().unwrap();
    }
}

proptest! {
    #[test]
    fn gauss_seidel_agrees_with_power_iteration((n, edges) in arb_graph()) {
        let g = GraphBuilder::from_weighted_edges(n, &edges);
        let power = RowStochastic::new(&g).stationary(&PowerIterationOpts {
            tol: 1e-13,
            max_iter: 3000,
            ..Default::default()
        });
        let gs = sgraph::solver::gauss_seidel(
            &g,
            &sgraph::solver::GaussSeidelOpts { tol: 1e-13, max_sweeps: 3000, ..Default::default() },
        );
        if power.converged && gs.converged {
            prop_assert!(
                l1_distance(&power.scores, &gs.scores) < 1e-7,
                "solvers disagree by {}",
                l1_distance(&power.scores, &gs.scores)
            );
        }
    }
}
