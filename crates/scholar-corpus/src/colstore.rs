//! Binary columnar corpus store for out-of-core ranking.
//!
//! The JSONL/AAN/MAG loaders and [`Corpus`](crate::Corpus) itself hold
//! every article — title strings, byline `Vec`s, reference `Vec`s — in
//! RAM, which tops out around a few million articles. The colstore is
//! the out-of-core alternative: a directory of flat column files that a
//! streaming writer produces one article at a time and that
//! [`ColStore::open`] serves back through read-only memory maps, so
//! neither producing nor ranking a 10M+-article corpus ever materializes
//! it.
//!
//! ## Layout (`SCOLv1`, little-endian)
//!
//! A store directory holds seven files:
//!
//! | file          | payload                                            |
//! |---------------|----------------------------------------------------|
//! | `meta.col`    | u64 × 4: num_articles, num_authors, num_venues, num_citations |
//! | `years.col`   | i32 × n — publication year per article             |
//! | `venues.col`  | u32 × n — venue id per article                     |
//! | `authors.idx` | u64 × (n+1) — byte offsets into `authors.dat`      |
//! | `authors.dat` | per article: varint count, then varint author ids in byline order |
//! | `refs.idx`    | u64 × (n+1) — byte offsets into `refs.dat`         |
//! | `refs.dat`    | per article: varint count, then delta-varint cited ids (strictly ascending) |
//!
//! Varints are LEB128. Reference lists are stored as deltas between
//! consecutive ids, which is what makes a MAG-scale citation column a
//! few bytes per edge.
//!
//! Every file ends in a 32-byte footer: magic `SCOLv1\0\0`, `rows: u64`
//! (= num_articles), `checksum: u64` (FNV-1a 64 of the payload bytes),
//! and `generation: u64`. The generation is *content-derived* — an
//! FNV-1a hash of the entity counts and the six data-file checksums —
//! so identical corpora always stamp identical generations (no clocks),
//! and derived caches keyed by generation (the mmap CSR shard files) can
//! detect staleness.
//!
//! ## Atomicity
//!
//! The writer streams every column to a `*.tmp` sibling, appends
//! footers once all checksums are known, fsyncs, and only then renames
//! the files into place — `meta.col` strictly last. Readers require
//! `meta.col`, so a crash anywhere mid-write leaves either the complete
//! old store or no visible store at all (all-or-nothing; exercised by
//! the kill-during-write chaos schedules via the `corpus.colstore.io`
//! failpoint).

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use sgraph::mmap::Mmap;

use crate::model::{Article, ArticleId, Author, AuthorId, Venue, VenueId, Year};
use crate::{Corpus, CorpusError, Result};

const MAGIC: &[u8; 8] = b"SCOLv1\0\0";
const FOOTER_BYTES: usize = 32;

/// The column files of a store directory, in footer-hash order.
const FILES: [&str; 7] =
    ["years.col", "venues.col", "authors.idx", "authors.dat", "refs.idx", "refs.dat", "meta.col"];

/// FNV-1a 64-bit streaming hasher (the workspace's standard content
/// hash; dependency-free and stable across platforms).
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf29ce484222325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Append `v` as a LEB128 varint.
fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            break;
        }
        buf.push(byte | 0x80);
    }
}

/// Decode a LEB128 varint at `*pos`, advancing it. Returns `None` on
/// truncated or oversized input.
fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = bytes.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// A column file being streamed out: buffered writes with a running
/// payload checksum and length.
struct HashedFile {
    w: BufWriter<File>,
    hash: Fnv,
    len: u64,
    path: PathBuf,
}

impl HashedFile {
    fn create(path: PathBuf) -> Result<HashedFile> {
        colstore_io_check()?;
        let file = File::create(&path)?;
        Ok(HashedFile { w: BufWriter::new(file), hash: Fnv::new(), len: 0, path })
    }

    fn write(&mut self, bytes: &[u8]) -> Result<()> {
        colstore_io_check()?;
        self.w.write_all(bytes)?;
        self.hash.update(bytes);
        self.len += bytes.len() as u64;
        Ok(())
    }

    /// Append the footer, flush, and fsync. Returns the payload checksum.
    fn seal(&mut self, rows: u64, generation: u64) -> Result<u64> {
        colstore_io_check()?;
        let checksum = self.hash.finish();
        let mut footer = [0u8; FOOTER_BYTES];
        footer[..8].copy_from_slice(MAGIC);
        footer[8..16].copy_from_slice(&rows.to_le_bytes());
        footer[16..24].copy_from_slice(&checksum.to_le_bytes());
        footer[24..32].copy_from_slice(&generation.to_le_bytes());
        self.w.write_all(&footer)?;
        self.w.flush()?;
        self.w.get_ref().sync_all()?;
        Ok(checksum)
    }
}

/// Chaos site: every write-path I/O step (create, buffered write, seal,
/// the per-file renames, and the final meta commit) funnels through this
/// one check, so a `fp::Script` over `corpus.colstore.io` can kill a
/// store build at any step and the all-or-nothing publish contract is
/// what the chaos suite exercises.
fn colstore_io_check() -> Result<()> {
    failpoint!(
        "corpus.colstore.io",
        return Err(CorpusError::Io(std::io::Error::other(
            "injected I/O fault at corpus.colstore.io",
        )))
    );
    Ok(())
}

/// Streaming writer for a colstore directory.
///
/// Feed articles in ascending id order via [`ColWriter::push`], then
/// call [`ColWriter::finish`]. Nothing is visible to readers until
/// `finish` returns `Ok`; a dropped or failed writer leaves only
/// `*.tmp` debris (cleaned up on drop), never a partial store.
pub struct ColWriter {
    dir: PathBuf,
    files: Vec<HashedFile>,
    scratch: Vec<u8>,
    n: u64,
    citations: u64,
    finished: bool,
}

/// Indices into `ColWriter::files` (same order as [`FILES`] minus meta,
/// which is produced at finish time).
const F_YEARS: usize = 0;
const F_VENUES: usize = 1;
const F_AUTHORS_IDX: usize = 2;
const F_AUTHORS_DAT: usize = 3;
const F_REFS_IDX: usize = 4;
const F_REFS_DAT: usize = 5;

impl ColWriter {
    /// Start writing a store into `dir` (created if missing).
    pub fn create(dir: &Path) -> Result<ColWriter> {
        std::fs::create_dir_all(dir)?;
        let mut files = Vec::with_capacity(6);
        for name in &FILES[..6] {
            files.push(HashedFile::create(dir.join(format!("{name}.tmp")))?);
        }
        Ok(ColWriter {
            dir: dir.to_path_buf(),
            files,
            scratch: Vec::new(),
            n: 0,
            citations: 0,
            finished: false,
        })
    }

    /// Append one article. `refs` must be strictly ascending and cite
    /// only already-pushed articles (`<` the current id) — the same
    /// DAG discipline the generator and [`Corpus`] enforce.
    pub fn push(&mut self, year: Year, venue: u32, authors: &[u32], refs: &[u32]) -> Result<()> {
        let id = self.n;
        for w in refs.windows(2) {
            if w[1] <= w[0] {
                return Err(CorpusError::Parse {
                    line: id as usize + 1,
                    message: format!("reference list not strictly ascending at article {id}"),
                });
            }
        }
        if let Some(&last) = refs.last() {
            if last as u64 >= id {
                return Err(CorpusError::Parse {
                    line: id as usize + 1,
                    message: format!("article {id} cites a not-yet-written article {last}"),
                });
            }
        }

        let (files, scratch) = (&mut self.files, &mut self.scratch);
        files[F_YEARS].write(&year.to_le_bytes())?;
        files[F_VENUES].write(&venue.to_le_bytes())?;

        let authors_off = files[F_AUTHORS_DAT].len;
        files[F_AUTHORS_IDX].write(&authors_off.to_le_bytes())?;
        scratch.clear();
        push_varint(scratch, authors.len() as u64);
        for &a in authors {
            push_varint(scratch, a as u64);
        }
        files[F_AUTHORS_DAT].write(scratch)?;

        let refs_off = files[F_REFS_DAT].len;
        files[F_REFS_IDX].write(&refs_off.to_le_bytes())?;
        scratch.clear();
        push_varint(scratch, refs.len() as u64);
        let mut prev = 0u64;
        for (k, &r) in refs.iter().enumerate() {
            let delta = if k == 0 { r as u64 } else { r as u64 - prev };
            push_varint(scratch, delta);
            prev = r as u64;
        }
        files[F_REFS_DAT].write(scratch)?;

        self.n += 1;
        self.citations += refs.len() as u64;
        Ok(())
    }

    /// Seal every column, stamp the content-derived generation, and
    /// atomically publish the store. Returns the generation.
    pub fn finish(mut self, num_authors: u64, num_venues: u64) -> Result<u64> {
        // Terminal index entries so every record is offset-delimited.
        let authors_end = self.files[F_AUTHORS_DAT].len;
        self.files[F_AUTHORS_IDX].write(&authors_end.to_le_bytes())?;
        let refs_end = self.files[F_REFS_DAT].len;
        self.files[F_REFS_IDX].write(&refs_end.to_le_bytes())?;

        // Meta column (written last, renamed last: the commit point).
        let mut meta = HashedFile::create(self.dir.join("meta.col.tmp"))?;
        for v in [self.n, num_authors, num_venues, self.citations] {
            meta.write(&v.to_le_bytes())?;
        }

        // Generation: FNV over the counts and the data-file checksums,
        // in FILES order. Content-derived — no clocks (the workspace
        // determinism rule), so equal corpora stamp equal generations.
        let mut gen = Fnv::new();
        for v in [self.n, num_authors, num_venues, self.citations] {
            gen.update(&v.to_le_bytes());
        }
        for f in &self.files {
            gen.update(&f.hash.finish().to_le_bytes());
        }
        let generation = gen.finish();

        for f in &mut self.files {
            f.seal(self.n, generation)?;
        }
        meta.seal(self.n, generation)?;

        // Publish: data files first, meta.col last. A reader needs
        // meta.col, so until the final rename the store does not exist.
        for (f, name) in self.files.iter().zip(&FILES[..6]) {
            colstore_io_check()?;
            std::fs::rename(&f.path, self.dir.join(name))?;
        }
        colstore_io_check()?;
        std::fs::rename(&meta.path, self.dir.join("meta.col"))?;
        // Make the publish durable: fsync the directory after the
        // renames, so a crash cannot roll back to a half-visible store.
        fsync_dir(&self.dir)?;
        self.finished = true;
        Ok(generation)
    }
}

/// Fsync a directory so renames into it survive a crash — the second
/// half of the tmp-then-rename publish protocol.
fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

impl Drop for ColWriter {
    fn drop(&mut self) {
        if !self.finished {
            for name in &FILES {
                let _ = std::fs::remove_file(self.dir.join(format!("{name}.tmp")));
            }
        }
    }
}

/// One mapped column file with its validated footer stripped off.
struct Column {
    map: Mmap,
    payload: usize,
    checksum: u64,
}

impl Column {
    fn open(dir: &Path, name: &str, generation: Option<u64>) -> Result<Column> {
        let path = dir.join(name);
        failpoint!("corpus.colstore.map", return Err(corrupt(name, "injected map failure")));
        let map = Mmap::map_file(&path).map_err(CorpusError::Io)?;
        if map.len() < FOOTER_BYTES {
            return Err(corrupt(name, "shorter than footer"));
        }
        let payload = map.len() - FOOTER_BYTES;
        let footer = &map.bytes()[payload..];
        if &footer[..8] != MAGIC {
            return Err(corrupt(name, "bad magic"));
        }
        let checksum = u64::from_le_bytes(footer[16..24].try_into().unwrap());
        let file_gen = u64::from_le_bytes(footer[24..32].try_into().unwrap());
        if let Some(want) = generation {
            if file_gen != want {
                return Err(corrupt(name, "generation disagrees with meta.col"));
            }
        }
        Ok(Column { map, payload, checksum })
    }

    fn rows(&self) -> u64 {
        let footer = &self.map.bytes()[self.payload..];
        u64::from_le_bytes(footer[8..16].try_into().unwrap())
    }

    fn generation(&self) -> u64 {
        let footer = &self.map.bytes()[self.payload..];
        u64::from_le_bytes(footer[24..32].try_into().unwrap())
    }

    fn payload_bytes(&self) -> &[u8] {
        &self.map.bytes()[..self.payload]
    }
}

fn corrupt(file: &str, message: &str) -> CorpusError {
    CorpusError::Corrupt { file: file.to_string(), message: message.to_string() }
}

/// An opened, mmap-backed columnar corpus.
///
/// All accessors are zero-copy over the maps except the varint-coded
/// byline/reference lists, which decode into a caller-supplied scratch
/// buffer so a full scan allocates nothing per article.
pub struct ColStore {
    dir: PathBuf,
    n: usize,
    num_authors: usize,
    num_venues: usize,
    num_citations: u64,
    generation: u64,
    years: Column,
    venues: Column,
    authors_idx: Column,
    authors_dat: Column,
    refs_idx: Column,
    refs_dat: Column,
}

impl ColStore {
    /// Open and validate the store in `dir`.
    ///
    /// Footers are checked for magic, row counts, and cross-file
    /// generation agreement; payload sizes are checked against the
    /// entity counts. Payload *checksums* are not recomputed here (that
    /// would fault in every page of a MAG-scale store) — run
    /// [`ColStore::verify`] for the full integrity pass.
    pub fn open(dir: &Path) -> Result<ColStore> {
        let meta = Column::open(dir, "meta.col", None)?;
        if meta.payload != 32 {
            return Err(corrupt("meta.col", "payload must be exactly four counters"));
        }
        let counts = meta.payload_bytes();
        let at = |i: usize| u64::from_le_bytes(counts[i * 8..i * 8 + 8].try_into().unwrap());
        let (n64, num_authors, num_venues, num_citations) = (at(0), at(1), at(2), at(3));
        let generation = meta.generation();
        let n = usize::try_from(n64).map_err(|_| corrupt("meta.col", "article count overflow"))?;

        let col = |name: &str| Column::open(dir, name, Some(generation));
        let years = col("years.col")?;
        let venues = col("venues.col")?;
        let authors_idx = col("authors.idx")?;
        let authors_dat = col("authors.dat")?;
        let refs_idx = col("refs.idx")?;
        let refs_dat = col("refs.dat")?;
        for (c, name) in [
            (&years, "years.col"),
            (&venues, "venues.col"),
            (&authors_idx, "authors.idx"),
            (&authors_dat, "authors.dat"),
            (&refs_idx, "refs.idx"),
            (&refs_dat, "refs.dat"),
        ] {
            if c.rows() != n64 {
                return Err(corrupt(name, "row count disagrees with meta.col"));
            }
        }
        if years.payload != n * 4 || venues.payload != n * 4 {
            return Err(corrupt("years.col", "fixed-width column has wrong size"));
        }
        if authors_idx.payload != (n + 1) * 8 || refs_idx.payload != (n + 1) * 8 {
            return Err(corrupt("authors.idx", "offset column has wrong size"));
        }
        let store = ColStore {
            dir: dir.to_path_buf(),
            n,
            num_authors: num_authors as usize,
            num_venues: num_venues as usize,
            num_citations,
            generation,
            years,
            venues,
            authors_idx,
            authors_dat,
            refs_idx,
            refs_dat,
        };
        let last = |c: &Column| c.map.as_u64s(n * 8, 1)[0] as usize;
        if last(&store.authors_idx) != store.authors_dat.payload
            || last(&store.refs_idx) != store.refs_dat.payload
        {
            return Err(corrupt("refs.idx", "terminal offset disagrees with data payload"));
        }
        Ok(store)
    }

    /// Recompute every payload checksum against the footers — the full
    /// (page-faulting) integrity check skipped by [`ColStore::open`].
    pub fn verify(&self) -> Result<()> {
        for (c, name) in [
            (&self.years, "years.col"),
            (&self.venues, "venues.col"),
            (&self.authors_idx, "authors.idx"),
            (&self.authors_dat, "authors.dat"),
            (&self.refs_idx, "refs.idx"),
            (&self.refs_dat, "refs.dat"),
        ] {
            let mut h = Fnv::new();
            h.update(c.payload_bytes());
            if h.finish() != c.checksum {
                return Err(corrupt(name, "payload checksum mismatch"));
            }
        }
        Ok(())
    }

    /// The store directory (derived caches, e.g. mmap CSR shard files,
    /// live alongside the columns).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of articles.
    pub fn num_articles(&self) -> usize {
        self.n
    }

    /// Number of distinct authors.
    pub fn num_authors(&self) -> usize {
        self.num_authors
    }

    /// Number of distinct venues.
    pub fn num_venues(&self) -> usize {
        self.num_venues
    }

    /// Total number of citation edges.
    pub fn num_citations(&self) -> u64 {
        self.num_citations
    }

    /// The content-derived generation stamp shared by every column.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// All publication years, zero-copy from the map.
    pub fn years(&self) -> &[i32] {
        self.years.map.as_i32s(0, self.n)
    }

    /// Publication year of article `i`.
    pub fn year_of(&self, i: usize) -> Year {
        self.years()[i]
    }

    /// Venue id of article `i`.
    pub fn venue_of(&self, i: usize) -> u32 {
        self.venues.map.as_u32s(0, self.n)[i]
    }

    /// `(earliest, latest)` publication year, or `None` when empty —
    /// the same contract as [`Corpus::year_range`].
    pub fn year_range(&self) -> Option<(Year, Year)> {
        let years = self.years();
        let first = *years.first()?;
        let (mut lo, mut hi) = (first, first);
        for &y in &years[1..] {
            lo = lo.min(y);
            hi = hi.max(y);
        }
        Some((lo, hi))
    }

    /// The byte range of record `i`, bounds-checked against the data
    /// payload. [`ColStore::open`] validates only the *terminal* index
    /// offset, so interior offsets are untrusted bytes here: a flipped
    /// bit must surface as [`CorpusError::Corrupt`], never a panic.
    fn record<'a>(
        &self,
        name: &'static str,
        idx: &Column,
        dat: &'a Column,
        i: usize,
    ) -> Result<&'a [u8]> {
        if i >= self.n {
            return Err(corrupt(
                name,
                &format!("record {i} out of range (store has {} rows)", self.n),
            ));
        }
        let offs = idx.map.as_u64s(i * 8, 2);
        let payload = dat.payload_bytes();
        let lo = usize::try_from(offs[0]).map_err(|_| corrupt(name, "record offset overflow"))?;
        let hi = usize::try_from(offs[1]).map_err(|_| corrupt(name, "record offset overflow"))?;
        if lo > hi || hi > payload.len() {
            return Err(corrupt(name, &format!("record {i} offsets {lo}..{hi} out of bounds")));
        }
        Ok(&payload[lo..hi])
    }

    /// Decode article `i`'s byline (author ids, byline order) into `out`.
    /// Truncated or malformed bytes come back as
    /// [`CorpusError::Corrupt`] — this path reads mmap-backed disk bytes
    /// whose checksums [`ColStore::open`] deliberately skipped.
    pub fn authors_of(&self, i: usize, out: &mut Vec<u32>) -> Result<()> {
        out.clear();
        let bytes = self.record("authors.dat", &self.authors_idx, &self.authors_dat, i)?;
        let mut pos = 0;
        let count = read_varint(bytes, &mut pos).ok_or_else(|| {
            corrupt("authors.dat", &format!("truncated byline count in record {i}"))
        })?;
        // Every author id is at least one byte, so a count beyond the
        // remaining bytes is corruption — checked before the reserve so
        // a corrupt count cannot drive a huge allocation.
        if count > (bytes.len() - pos) as u64 {
            return Err(corrupt(
                "authors.dat",
                &format!("byline count {count} exceeds record {i}"),
            ));
        }
        out.reserve(count as usize);
        for _ in 0..count {
            let v = read_varint(bytes, &mut pos).ok_or_else(|| {
                corrupt("authors.dat", &format!("truncated byline varint in record {i}"))
            })?;
            let a = u32::try_from(v).map_err(|_| {
                corrupt("authors.dat", &format!("author id {v} overflows u32 in record {i}"))
            })?;
            out.push(a);
        }
        Ok(())
    }

    /// Decode article `i`'s reference list (strictly ascending cited
    /// ids) into `out`. Corrupt bytes surface as
    /// [`CorpusError::Corrupt`], like [`ColStore::authors_of`].
    pub fn refs_of(&self, i: usize, out: &mut Vec<u32>) -> Result<()> {
        out.clear();
        let bytes = self.record("refs.dat", &self.refs_idx, &self.refs_dat, i)?;
        let mut pos = 0;
        let count = read_varint(bytes, &mut pos).ok_or_else(|| {
            corrupt("refs.dat", &format!("truncated reference count in record {i}"))
        })?;
        if count > (bytes.len() - pos) as u64 {
            return Err(corrupt(
                "refs.dat",
                &format!("reference count {count} exceeds record {i}"),
            ));
        }
        out.reserve(count as usize);
        let mut prev = 0u64;
        for k in 0..count {
            let delta = read_varint(bytes, &mut pos).ok_or_else(|| {
                corrupt("refs.dat", &format!("truncated reference varint in record {i}"))
            })?;
            let v = if k == 0 {
                delta
            } else {
                prev.checked_add(delta).ok_or_else(|| {
                    corrupt("refs.dat", &format!("reference delta overflow in record {i}"))
                })?
            };
            let r = u32::try_from(v).map_err(|_| {
                corrupt("refs.dat", &format!("cited id {v} overflows u32 in record {i}"))
            })?;
            out.push(r);
            prev = v;
        }
        Ok(())
    }

    /// Materialize the store as an in-RAM [`Corpus`] with synthetic
    /// entity names (the columnar format stores structure, not strings,
    /// and no planted merit). Intended for small stores — tests, chaos
    /// round-trips, and explain tooling — not for MAG scale.
    pub fn materialize(&self) -> Result<Corpus> {
        let mut articles = Vec::with_capacity(self.n);
        let mut byline = Vec::new();
        let mut refs = Vec::new();
        for i in 0..self.n {
            self.authors_of(i, &mut byline)?;
            self.refs_of(i, &mut refs)?;
            articles.push(Article {
                id: ArticleId(i as u32),
                title: format!("article-{i}"),
                year: self.year_of(i),
                venue: VenueId(self.venue_of(i)),
                authors: byline.iter().map(|&a| AuthorId(a)).collect(),
                references: refs.iter().map(|&r| ArticleId(r)).collect(),
                merit: None,
            });
        }
        let authors = (0..self.num_authors)
            .map(|i| Author { id: AuthorId(i as u32), name: format!("author-{i}") })
            .collect();
        let venues = (0..self.num_venues)
            .map(|i| Venue { id: VenueId(i as u32), name: format!("venue-{i}") })
            .collect();
        Ok(Corpus::from_parts(articles, authors, venues))
    }
}

impl Corpus {
    /// Write this corpus out as a columnar store (strings and planted
    /// merit are not representable and are dropped). Returns the
    /// store's generation stamp.
    pub fn write_colstore(&self, dir: &Path) -> Result<u64> {
        let mut w = ColWriter::create(dir)?;
        let mut byline = Vec::new();
        let mut refs = Vec::new();
        for a in self.articles() {
            byline.clear();
            byline.extend(a.authors.iter().map(|x| x.0));
            refs.clear();
            refs.extend(a.references.iter().map(|x| x.0));
            w.push(a.year, a.venue.0, &byline, &refs)?;
        }
        w.finish(self.authors().len() as u64, self.venues().len() as u64)
    }
}

#[cfg(all(test, not(miri)))]
mod tests {
    use super::*;
    use crate::generator::Preset;

    fn tmpdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("colstore-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let corpus = Preset::Tiny.generate(11);
        let dir = tmpdir("roundtrip");
        let generation = corpus.write_colstore(&dir).unwrap();
        let store = ColStore::open(&dir).unwrap();
        assert_eq!(store.generation(), generation);
        assert_eq!(store.num_articles(), corpus.articles().len());
        assert_eq!(store.num_authors(), corpus.authors().len());
        assert_eq!(store.num_venues(), corpus.venues().len());
        assert_eq!(store.num_citations() as usize, corpus.num_citations());
        assert_eq!(store.year_range(), corpus.year_range());
        store.verify().unwrap();

        let mut byline = Vec::new();
        let mut refs = Vec::new();
        for a in corpus.articles() {
            let i = a.id.0 as usize;
            assert_eq!(store.year_of(i), a.year);
            assert_eq!(store.venue_of(i), a.venue.0);
            store.authors_of(i, &mut byline).unwrap();
            assert_eq!(byline, a.authors.iter().map(|x| x.0).collect::<Vec<_>>());
            store.refs_of(i, &mut refs).unwrap();
            assert_eq!(refs, a.references.iter().map(|x| x.0).collect::<Vec<_>>());
        }

        let back = store.materialize().unwrap();
        assert_eq!(back.articles().len(), corpus.articles().len());
        for (a, b) in corpus.articles().iter().zip(back.articles()) {
            assert_eq!(
                (a.year, &a.venue, &a.authors, &a.references),
                (b.year, &b.venue, &b.authors, &b.references)
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn identical_corpora_stamp_identical_generations() {
        let corpus = Preset::Tiny.generate(3);
        let (d1, d2) = (tmpdir("gen1"), tmpdir("gen2"));
        let g1 = corpus.write_colstore(&d1).unwrap();
        let g2 = corpus.write_colstore(&d2).unwrap();
        assert_eq!(g1, g2, "generation must be content-derived");
        let other = Preset::Tiny.generate(4);
        let d3 = tmpdir("gen3");
        let g3 = other.write_colstore(&d3).unwrap();
        assert_ne!(g1, g3, "different corpora must stamp different generations");
        for d in [d1, d2, d3] {
            std::fs::remove_dir_all(&d).unwrap();
        }
    }

    #[test]
    fn empty_corpus_roundtrips() {
        let dir = tmpdir("empty");
        let w = ColWriter::create(&dir).unwrap();
        w.finish(0, 0).unwrap();
        let store = ColStore::open(&dir).unwrap();
        assert_eq!(store.num_articles(), 0);
        assert_eq!(store.year_range(), None);
        assert!(store.materialize().unwrap().articles().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unsorted_refs_rejected() {
        let dir = tmpdir("unsorted");
        let mut w = ColWriter::create(&dir).unwrap();
        w.push(2000, 0, &[0], &[]).unwrap();
        w.push(2001, 0, &[0], &[]).unwrap();
        assert!(w.push(2002, 0, &[0], &[1, 0]).is_err());
        let mut w2 = ColWriter::create(&dir).unwrap();
        w2.push(2000, 0, &[0], &[]).unwrap();
        assert!(w2.push(2001, 0, &[0], &[1]).is_err(), "forward citation must be rejected");
        drop(w2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_column_fails_open_or_verify() {
        let corpus = Preset::Tiny.generate(5);
        let dir = tmpdir("tamper");
        corpus.write_colstore(&dir).unwrap();

        // Flip a payload byte: open (footer-only) succeeds, verify fails.
        let path = dir.join("years.col");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let store = ColStore::open(&dir).unwrap();
        assert!(store.verify().is_err(), "checksum must catch payload tampering");
        drop(store);

        // Truncate a column below its footer: open fails.
        std::fs::write(&path, &bytes[..8]).unwrap();
        assert!(ColStore::open(&dir).is_err());

        // Remove the commit point: the store does not exist.
        std::fs::remove_file(dir.join("meta.col")).unwrap();
        assert!(ColStore::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_record_bytes_surface_as_typed_errors_not_panics() {
        let dir = tmpdir("corrupt-bytes");
        let mut w = ColWriter::create(&dir).unwrap();
        w.push(2000, 0, &[1, 2], &[]).unwrap();
        w.push(2001, 1, &[0], &[0]).unwrap();
        w.finish(3, 2).unwrap();
        let mut out = Vec::new();

        // Open skips payload checksums by design, so every tampered
        // store below opens fine — the *decode* must refuse, with a
        // typed Corrupt error, never a panic or a bogus huge reserve.

        // Record 0 of authors.dat is [count=2, 1, 2]. A count claiming
        // more entries than the record holds:
        let dat = dir.join("authors.dat");
        let good = std::fs::read(&dat).unwrap();
        let mut bytes = good.clone();
        bytes[0] = 0x7f;
        std::fs::write(&dat, &bytes).unwrap();
        let store = ColStore::open(&dir).unwrap();
        let err = store.authors_of(0, &mut out).unwrap_err();
        assert!(matches!(err, CorpusError::Corrupt { .. }), "{err}");

        // A varint truncated by the record boundary (continuation bit
        // set on the record's last byte):
        let mut bytes = good.clone();
        bytes[2] = 0x80;
        std::fs::write(&dat, &bytes).unwrap();
        let store = ColStore::open(&dir).unwrap();
        let err = store.authors_of(0, &mut out).unwrap_err();
        assert!(matches!(err, CorpusError::Corrupt { .. }), "{err}");
        std::fs::write(&dat, &good).unwrap();

        // An interior index offset pointing past the data payload —
        // open only validates the terminal offset:
        let idx = dir.join("refs.idx");
        let mut bytes = std::fs::read(&idx).unwrap();
        bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&idx, &bytes).unwrap();
        let store = ColStore::open(&dir).unwrap();
        let err = store.refs_of(0, &mut out).unwrap_err();
        assert!(matches!(err, CorpusError::Corrupt { .. }), "{err}");

        // A record id past the row count (a corrupt reference chased
        // into `authors_of`) is typed, not an index panic.
        let err = store.authors_of(99, &mut out).unwrap_err();
        assert!(matches!(err, CorpusError::Corrupt { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unfinished_writer_leaves_no_store() {
        let dir = tmpdir("unfinished");
        let mut w = ColWriter::create(&dir).unwrap();
        w.push(2000, 0, &[0], &[]).unwrap();
        drop(w);
        assert!(ColStore::open(&dir).is_err(), "unfinished write must not be visible");
        assert!(
            std::fs::read_dir(&dir).unwrap().next().is_none(),
            "dropped writer must clean up its temp files"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
