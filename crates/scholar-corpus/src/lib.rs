#![warn(missing_docs)]

//! # scholar-corpus — the scholarly data substrate
//!
//! This crate owns the *data* side of the `qrank` stack:
//!
//! * [`model`] — articles, authors, venues, and their dense ids.
//! * [`corpus`] — the [`Corpus`] container with its derived graphs
//!   (citation graph, authorship and publication bipartites) and indexes.
//! * [`generator`] — a time-evolving synthetic corpus generator that
//!   substitutes for the AAN / DBLP / MAG downloads (see DESIGN.md §5):
//!   preferential attachment with a recency kernel, planted article merit,
//!   Zipf venue prestige, and Lotka-style author productivity.
//! * [`loader`] — parsers for the real-world interchange formats (JSON
//!   lines, AAN-style paired metadata+citation files, MAG-style TSV), so
//!   genuine datasets drop in without code changes.
//! * [`snapshot`] — "the world as of year Y" corpus restriction, used by
//!   the robustness and cold-start experiments.
//! * [`stats`] / [`validate`] — corpus-level statistics (R-Table 1) and
//!   referential-integrity checking.
//!
//! ## Conventions
//!
//! * Citation edges run **citing → cited** (a reference list is the
//!   out-neighborhood). PageRank-family walks therefore flow importance
//!   from citing to cited articles, and in-degree = citation count.
//! * Years are plain `i32` ([`Year`]); the stack never needs finer
//!   granularity than the publication year.
//! * All ids are dense `u32` newtypes that double as indices into the
//!   corpus tables and into score vectors.

/// Named fault-injection site (see `scholar-testkit`). With the
/// `failpoints` feature on, evaluates the site in the testkit registry:
/// the unit form can delay or panic; the two-argument form additionally
/// runs its second argument (typically `return Err(..)`) when the site's
/// schedule says *trigger*. Without the feature the macro expands to
/// nothing at all — no branch, no registry, no dependency.
#[cfg(feature = "failpoints")]
macro_rules! failpoint {
    ($site:literal) => {
        let _ = ::scholar_testkit::fp::hit($site);
    };
    ($site:literal, $on_trigger:expr) => {
        if ::scholar_testkit::fp::hit($site) {
            $on_trigger
        }
    };
}
#[cfg(not(feature = "failpoints"))]
macro_rules! failpoint {
    ($site:literal) => {};
    ($site:literal, $on_trigger:expr) => {};
}

pub mod analysis;
pub mod colstore;
pub mod corpus;
pub mod generator;
pub mod loader;
pub mod model;
pub mod perturb;
pub mod snapshot;
pub mod stats;
pub mod validate;

pub use colstore::{ColStore, ColWriter};
pub use corpus::{Corpus, CorpusBuilder};
pub use generator::{CorpusGenerator, GeneratorConfig, Preset};
pub use model::{Article, ArticleId, Author, AuthorId, Venue, VenueId, Year};
pub use snapshot::{snapshot_until, Snapshot};
pub use stats::CorpusStats;

/// Errors produced while assembling or loading corpora.
#[derive(Debug)]
pub enum CorpusError {
    /// An article referenced an unknown article/author/venue id.
    DanglingReference {
        /// What kind of entity was referenced.
        kind: &'static str,
        /// The offending id value.
        id: u32,
        /// The article that made the reference.
        article: u32,
    },
    /// A citation points forward in time (cited article is newer than the
    /// citing one) and the builder was configured to reject that.
    TimeTravelCitation {
        /// Citing article id.
        citing: u32,
        /// Cited article id.
        cited: u32,
    },
    /// Parsing failure in a loader.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A columnar store file failed validation (bad magic, checksum,
    /// generation, or size).
    Corrupt {
        /// The offending column file name.
        file: String,
        /// Description of the problem.
        message: String,
    },
    /// Underlying IO failure.
    Io(std::io::Error),
    /// Underlying JSON failure.
    Json(sjson::Error),
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::DanglingReference { kind, id, article } => {
                write!(f, "article {article} references unknown {kind} id {id}")
            }
            CorpusError::TimeTravelCitation { citing, cited } => {
                write!(f, "article {citing} cites article {cited} published later")
            }
            CorpusError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            CorpusError::Corrupt { file, message } => {
                write!(f, "corrupt colstore file {file}: {message}")
            }
            CorpusError::Io(e) => write!(f, "io error: {e}"),
            CorpusError::Json(e) => write!(f, "json error: {e}"),
        }
    }
}

impl std::error::Error for CorpusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorpusError::Io(e) => Some(e),
            CorpusError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CorpusError {
    fn from(e: std::io::Error) -> Self {
        CorpusError::Io(e)
    }
}

impl From<sjson::Error> for CorpusError {
    fn from(e: sjson::Error) -> Self {
        CorpusError::Json(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CorpusError>;
