//! ACL Anthology Network (AAN) release format.
//!
//! The AAN distribution ships two files:
//!
//! * `acl-metadata.txt` — blank-line-separated blocks of
//!   `key = {value}` pairs:
//!
//!   ```text
//!   id = {P90-1001}
//!   author = {Ada Lovelace; Bob Kahn}
//!   title = {On Things}
//!   venue = {ACL}
//!   year = {1990}
//!   ```
//!
//! * `acl.txt` — one citation per line, `citing ==> cited`.
//!
//! This loader accepts exactly that shape. Citations that mention ids
//! absent from the metadata are handled per
//! [`LoadOptions::unknown_references`].

use super::{LoadOptions, UnknownReferencePolicy};
use crate::corpus::Corpus;
use crate::loader::jsonl::{build_from_records, JsonArticle};
use crate::{CorpusError, Result};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

/// Parse one `key = {value}` line; returns `None` for non-matching lines.
fn parse_kv(line: &str) -> Option<(&str, &str)> {
    let (key, rest) = line.split_once('=')?;
    let rest = rest.trim();
    let value = rest.strip_prefix('{')?.strip_suffix('}')?;
    Some((key.trim(), value.trim()))
}

/// Read the metadata blocks into wire records (no citations yet).
pub fn read_metadata<R: Read>(reader: R) -> Result<Vec<JsonArticle>> {
    let reader = BufReader::new(reader);
    let mut records = Vec::new();
    let mut current: Option<JsonArticle> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            if let Some(rec) = current.take() {
                records.push(rec);
            }
            continue;
        }
        let Some((key, value)) = parse_kv(trimmed) else {
            return Err(CorpusError::Parse {
                line: lineno + 1,
                message: format!("expected 'key = {{value}}', got '{trimmed}'"),
            });
        };
        let rec = current.get_or_insert_with(|| JsonArticle {
            id: String::new(),
            title: String::new(),
            year: None,
            venue: None,
            authors: Vec::new(),
            references: Vec::new(),
        });
        match key {
            "id" => rec.id = value.to_owned(),
            "title" => rec.title = value.to_owned(),
            "venue" => rec.venue = Some(value.to_owned()),
            "year" => {
                let y: i32 = value.parse().map_err(|e| CorpusError::Parse {
                    line: lineno + 1,
                    message: format!("bad year '{value}': {e}"),
                })?;
                rec.year = Some(y);
            }
            "author" => {
                rec.authors = value
                    .split(';')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect();
            }
            // AAN metadata contains additional keys (e.g. sessions); ignore.
            _ => {}
        }
    }
    if let Some(rec) = current.take() {
        records.push(rec);
    }
    for (i, rec) in records.iter().enumerate() {
        if rec.id.is_empty() {
            return Err(CorpusError::Parse {
                line: i + 1,
                message: format!("metadata block {i} has no id"),
            });
        }
    }
    Ok(records)
}

/// Read the `citing ==> cited` citation file into id pairs.
pub fn read_citations<R: Read>(reader: R) -> Result<Vec<(String, String)>> {
    let reader = BufReader::new(reader);
    let mut pairs = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let Some((citing, cited)) = trimmed.split_once("==>") else {
            return Err(CorpusError::Parse {
                line: lineno + 1,
                message: format!("expected 'citing ==> cited', got '{trimmed}'"),
            });
        };
        pairs.push((citing.trim().to_owned(), cited.trim().to_owned()));
    }
    Ok(pairs)
}

/// Load an AAN-style corpus from metadata + citation readers.
pub fn read_aan<R1: Read, R2: Read>(
    metadata: R1,
    citations: R2,
    opts: &LoadOptions,
) -> Result<Corpus> {
    // Chaos site: poisoned metadata stream. Must surface as a parse
    // error, never as an empty-but-Ok corpus.
    failpoint!(
        "corpus.aan.parse",
        return Err(CorpusError::Parse {
            line: 0,
            message: "injected parse fault at corpus.aan.parse".into(),
        })
    );
    // The missing-year policy is applied by `build_from_records`, but
    // `Drop` must also run here so the citation index below never
    // resolves an edge into a record that is about to vanish.
    let mut records = read_metadata(metadata)?;
    if opts.missing_year == super::MissingYearPolicy::Drop {
        records.retain(|r| r.year.is_some());
    }
    let index: HashMap<String, usize> =
        records.iter().enumerate().map(|(i, r)| (r.id.clone(), i)).collect();
    if index.len() != records.len() {
        return Err(CorpusError::Parse { line: 0, message: "duplicate ids in metadata".into() });
    }
    for (citing, cited) in read_citations(citations)? {
        match (index.get(&citing), index.get(&cited)) {
            (Some(&i), Some(_)) => records[i].references.push(cited),
            _ => {
                if opts.unknown_references == UnknownReferencePolicy::Error {
                    return Err(CorpusError::Parse {
                        line: 0,
                        message: format!("citation {citing} ==> {cited} mentions unknown id"),
                    });
                }
            }
        }
    }
    build_from_records(records, opts)
}

/// Load an AAN-style corpus from the two files on disk.
pub fn read_aan_files(metadata: &Path, citations: &Path, opts: &LoadOptions) -> Result<Corpus> {
    read_aan(std::fs::File::open(metadata)?, std::fs::File::open(citations)?, opts)
}

/// Render a corpus in the AAN metadata format (for fixtures and tests).
pub fn write_metadata(corpus: &Corpus) -> String {
    let mut out = String::new();
    for a in corpus.articles() {
        out.push_str(&format!("id = {{{}}}\n", a.id));
        let authors: Vec<&str> =
            a.authors.iter().map(|&u| corpus.author(u).name.as_str()).collect();
        out.push_str(&format!("author = {{{}}}\n", authors.join("; ")));
        out.push_str(&format!("title = {{{}}}\n", a.title));
        out.push_str(&format!("venue = {{{}}}\n", corpus.venue(a.venue).name));
        out.push_str(&format!("year = {{{}}}\n\n", a.year));
    }
    out
}

/// Render a corpus's citations in the AAN `==>` format.
pub fn write_citations(corpus: &Corpus) -> String {
    let mut out = String::new();
    for a in corpus.articles() {
        for &r in &a.references {
            out.push_str(&format!("{} ==> {}\n", a.id, r));
        }
    }
    out
}

/// Convenience used by tests: round-trip a corpus through the AAN format.
pub fn roundtrip(corpus: &Corpus) -> Result<Corpus> {
    read_aan(
        write_metadata(corpus).as_bytes(),
        write_citations(corpus).as_bytes(),
        &LoadOptions::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ArticleId;

    const META: &str = "\
id = {P90-1001}
author = {Ada Lovelace; Bob Kahn}
title = {On Things}
venue = {ACL}
year = {1990}

id = {P95-2002}
author = {Ada Lovelace}
title = {More Things}
venue = {EMNLP}
year = {1995}
";

    const CITES: &str = "\
# comment
P95-2002 ==> P90-1001
P95-2002 ==> X99-9999
";

    #[test]
    fn parses_metadata_blocks() {
        let recs = read_metadata(META.as_bytes()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, "P90-1001");
        assert_eq!(recs[0].authors, vec!["Ada Lovelace", "Bob Kahn"]);
        assert_eq!(recs[1].year, Some(1995));
        assert_eq!(recs[1].venue.as_deref(), Some("EMNLP"));
    }

    #[test]
    fn parses_citations_and_builds_corpus() {
        let c = read_aan(META.as_bytes(), CITES.as_bytes(), &LoadOptions::default()).unwrap();
        assert_eq!(c.num_articles(), 2);
        assert_eq!(c.article(ArticleId(1)).references, vec![ArticleId(0)]);
        assert_eq!(c.num_authors(), 2); // Ada interned once
    }

    #[test]
    fn unknown_citation_error_policy() {
        let opts =
            LoadOptions { unknown_references: UnknownReferencePolicy::Error, ..Default::default() };
        assert!(read_aan(META.as_bytes(), CITES.as_bytes(), &opts).is_err());
    }

    #[test]
    fn malformed_metadata_line() {
        let bad = "id = {A}\nnot a kv line\n";
        match read_metadata(bad.as_bytes()) {
            Err(CorpusError::Parse { line: 2, .. }) => {}
            other => panic!("expected parse error on line 2, got {other:?}"),
        }
    }

    #[test]
    fn malformed_citation_line() {
        assert!(read_citations("A -> B\n".as_bytes()).is_err());
    }

    #[test]
    fn block_without_id_rejected() {
        let bad = "title = {No Id Here}\nyear = {2000}\n";
        assert!(read_metadata(bad.as_bytes()).is_err());
    }

    #[test]
    fn bad_year_rejected() {
        let bad = "id = {A}\nyear = {MCMXC}\n";
        assert!(read_metadata(bad.as_bytes()).is_err());
    }

    #[test]
    fn unknown_keys_are_ignored() {
        let text = "id = {A}\nsession = {poster}\nyear = {2001}\n";
        let recs = read_metadata(text.as_bytes()).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].year, Some(2001));
    }

    #[test]
    fn missing_trailing_blank_line_ok() {
        let recs = read_metadata("id = {A}\nyear = {2000}".as_bytes()).unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn generated_corpus_roundtrips_through_aan_format() {
        let c = crate::generator::Preset::Tiny.generate(11);
        let c2 = roundtrip(&c).unwrap();
        assert_eq!(c.num_articles(), c2.num_articles());
        assert_eq!(c.num_citations(), c2.num_citations());
        assert_eq!(c.num_venues(), c2.num_venues());
        for (a, b) in c.articles().iter().zip(c2.articles()) {
            assert_eq!(a.year, b.year);
            assert_eq!(a.references, b.references);
        }
    }
}
