//! Loaders for real-world corpus interchange formats.
//!
//! Three formats are supported, covering the datasets the original
//! evaluation drew on:
//!
//! * [`jsonl`] — one JSON object per line (the format this crate also
//!   writes); the generic interchange path.
//! * [`aan`] — the ACL Anthology Network release format: a block-structured
//!   metadata file plus a `citing ==> cited` edge file.
//! * [`mag`] — the Microsoft-Academic-Graph-style TSV triple: a papers
//!   table, an authorship table, and a reference table.
//!
//! All loaders intern external string ids to dense [`crate::ArticleId`]s
//! and share [`LoadOptions`] for how to treat data defects (references to
//! unknown articles, missing years).

pub mod aan;
pub mod jsonl;
pub mod mag;

use crate::model::ArticleId;
use std::collections::HashMap;

/// How loaders treat records that reference unknown articles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnknownReferencePolicy {
    /// Silently drop references to ids that never appear as articles
    /// (the default — real citation dumps always contain such edges,
    /// pointing at articles outside the crawl).
    #[default]
    Drop,
    /// Fail loading.
    Error,
}

/// Options shared by all loaders.
#[derive(Debug, Clone, Default)]
pub struct LoadOptions {
    /// Unknown-reference handling.
    pub unknown_references: UnknownReferencePolicy,
    /// Records without a parseable year are dropped when `true`
    /// (default `false`: they get year 0 and survive, which keeps the
    /// article-id space aligned with the source).
    pub drop_yearless: bool,
}

/// Interns external string article ids to dense ids in first-seen order.
#[derive(Debug, Default)]
pub struct IdInterner {
    map: HashMap<String, ArticleId>,
}

impl IdInterner {
    /// Fresh interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Id for `key`, allocating the next dense id when unseen.
    pub fn intern(&mut self, key: &str) -> ArticleId {
        if let Some(&id) = self.map.get(key) {
            return id;
        }
        let id = ArticleId(self.map.len() as u32);
        self.map.insert(key.to_owned(), id);
        id
    }

    /// Id for `key` without allocating.
    pub fn get(&self, key: &str) -> Option<ArticleId> {
        self.map.get(key).copied()
    }

    /// Number of interned ids.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_is_stable_and_dense() {
        let mut i = IdInterner::new();
        assert!(i.is_empty());
        let a = i.intern("X");
        let b = i.intern("Y");
        let a2 = i.intern("X");
        assert_eq!(a, a2);
        assert_eq!(a, ArticleId(0));
        assert_eq!(b, ArticleId(1));
        assert_eq!(i.len(), 2);
        assert_eq!(i.get("Y"), Some(b));
        assert_eq!(i.get("Z"), None);
    }
}
