//! Loaders for real-world corpus interchange formats.
//!
//! Three formats are supported, covering the datasets the original
//! evaluation drew on:
//!
//! * [`jsonl`] — one JSON object per line (the format this crate also
//!   writes); the generic interchange path.
//! * [`aan`] — the ACL Anthology Network release format: a block-structured
//!   metadata file plus a `citing ==> cited` edge file.
//! * [`mag`] — the Microsoft-Academic-Graph-style TSV triple: a papers
//!   table, an authorship table, and a reference table.
//!
//! All loaders intern external string ids to dense [`crate::ArticleId`]s
//! and share [`LoadOptions`] for how to treat data defects (references to
//! unknown articles, missing years).

pub mod aan;
pub mod jsonl;
pub mod mag;

use crate::model::{ArticleId, Year};
use crate::{CorpusError, Result};
use std::collections::HashMap;

/// How loaders treat records that reference unknown articles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnknownReferencePolicy {
    /// Silently drop references to ids that never appear as articles
    /// (the default — real citation dumps always contain such edges,
    /// pointing at articles outside the crawl).
    #[default]
    Drop,
    /// Fail loading.
    Error,
}

/// How loaders treat records without a parseable publication year.
///
/// Every time-aware ranker in the stack reads `Article::year`, so a
/// sentinel value is never safe: an article silently mapped to year 0
/// looks ~2000 years old, time-decay kernels zero it out, and
/// age-normalized rankers treat it as ancient. The policy therefore
/// defaults to failing loudly; keeping or discarding yearless records is
/// an explicit caller decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MissingYearPolicy {
    /// Fail loading with a parse error naming the yearless record
    /// (the default).
    #[default]
    Error,
    /// Drop yearless records (and, transitively, references to them are
    /// treated per [`UnknownReferencePolicy`]). Note this renumbers dense
    /// article ids relative to the source file.
    Drop,
    /// Keep yearless records, assigning them this year. Callers choose
    /// the sentinel consciously (e.g. the corpus median year) instead of
    /// inheriting an implicit year 0.
    Impute(Year),
}

/// Options shared by all loaders.
#[derive(Debug, Clone, Default)]
pub struct LoadOptions {
    /// Unknown-reference handling.
    pub unknown_references: UnknownReferencePolicy,
    /// Missing-year handling (defaults to [`MissingYearPolicy::Error`]).
    pub missing_year: MissingYearPolicy,
}

/// Apply a [`MissingYearPolicy`] to a batch of loader records, each of
/// which carries an optional year. `year_of`/`impute` read and write the
/// record's year; `label` names a record for the error message. Must run
/// before external ids are interned/indexed, because `Drop` removes
/// records (renumbering dense ids).
pub(crate) fn apply_missing_year<T>(
    records: &mut Vec<T>,
    policy: MissingYearPolicy,
    year_of: impl Fn(&T) -> Option<Year>,
    impute: impl Fn(&mut T, Year),
    label: impl Fn(&T) -> String,
) -> Result<()> {
    match policy {
        MissingYearPolicy::Error => {
            if let Some((i, rec)) = records.iter().enumerate().find(|(_, r)| year_of(r).is_none()) {
                return Err(CorpusError::Parse {
                    line: i + 1,
                    message: format!(
                        "record {} has no publication year (choose a LoadOptions::missing_year \
                         policy — Drop or Impute — to accept yearless records)",
                        label(rec)
                    ),
                });
            }
        }
        MissingYearPolicy::Drop => records.retain(|r| year_of(r).is_some()),
        MissingYearPolicy::Impute(y) => {
            for r in records.iter_mut() {
                if year_of(r).is_none() {
                    impute(r, y);
                }
            }
        }
    }
    Ok(())
}

/// Interns external string article ids to dense ids in first-seen order.
#[derive(Debug, Default)]
pub struct IdInterner {
    map: HashMap<String, ArticleId>,
}

impl IdInterner {
    /// Fresh interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Id for `key`, allocating the next dense id when unseen.
    pub fn intern(&mut self, key: &str) -> ArticleId {
        if let Some(&id) = self.map.get(key) {
            return id;
        }
        let id = ArticleId(self.map.len() as u32);
        self.map.insert(key.to_owned(), id);
        id
    }

    /// Id for `key` without allocating.
    pub fn get(&self, key: &str) -> Option<ArticleId> {
        self.map.get(key).copied()
    }

    /// Number of interned ids.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_is_stable_and_dense() {
        let mut i = IdInterner::new();
        assert!(i.is_empty());
        let a = i.intern("X");
        let b = i.intern("Y");
        let a2 = i.intern("X");
        assert_eq!(a, a2);
        assert_eq!(a, ArticleId(0));
        assert_eq!(b, ArticleId(1));
        assert_eq!(i.len(), 2);
        assert_eq!(i.get("Y"), Some(b));
        assert_eq!(i.get("Z"), None);
    }
}
