//! JSON-lines corpus interchange.
//!
//! One object per line:
//!
//! ```json
//! {"id": "P90-1001", "title": "...", "year": 1990, "venue": "ACL",
//!  "authors": ["Ada L.", "Bob K."], "references": ["J89-2001"]}
//! ```
//!
//! `write_jsonl` emits exactly this shape, so a corpus round-trips. The
//! reader is two-pass (records may cite forward), tolerant of unknown
//! references per [`LoadOptions`].

use super::{IdInterner, LoadOptions, UnknownReferencePolicy};
use crate::corpus::{Corpus, CorpusBuilder};
use crate::model::Year;
use crate::{CorpusError, Result};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// The wire shape of one article record.
#[derive(Debug, Clone, Default)]
pub struct JsonArticle {
    /// External article id (any string).
    pub id: String,
    /// Title.
    pub title: String,
    /// Publication year (optional in the wild).
    pub year: Option<Year>,
    /// Venue name.
    pub venue: Option<String>,
    /// Author names in byline order.
    pub authors: Vec<String>,
    /// External ids of cited articles.
    pub references: Vec<String>,
}

impl JsonArticle {
    /// Decode one record from a parsed JSON object. Missing fields other
    /// than `id` take their defaults; wrongly-typed fields are an error.
    pub fn from_value(v: &sjson::Value) -> std::result::Result<Self, String> {
        let obj = v.as_object().ok_or("record must be a JSON object")?;
        let mut rec = JsonArticle::default();
        let mut has_id = false;
        for (key, val) in obj {
            match key.as_str() {
                "id" => {
                    rec.id = val.as_str().ok_or("'id' must be a string")?.to_string();
                    has_id = true;
                }
                "title" => {
                    rec.title = val.as_str().ok_or("'title' must be a string")?.to_string();
                }
                "year" if !val.is_null() => {
                    let y = val.as_i64().ok_or("'year' must be an integer")?;
                    let y = i32::try_from(y).map_err(|_| "'year' out of range")?;
                    rec.year = Some(y);
                }
                "venue" if !val.is_null() => {
                    rec.venue = Some(val.as_str().ok_or("'venue' must be a string")?.to_string());
                }
                "authors" => {
                    rec.authors = string_array(val, "authors")?;
                }
                "references" => {
                    rec.references = string_array(val, "references")?;
                }
                _ => {} // tolerate unknown fields from richer dumps
            }
        }
        if !has_id {
            return Err("missing field 'id'".into());
        }
        Ok(rec)
    }

    /// Encode this record as one compact JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let strings = |xs: &[String]| {
            sjson::Value::Array(xs.iter().map(|s| sjson::Value::from(s.as_str())).collect())
        };
        let mut b = sjson::ObjectBuilder::new()
            .field("id", self.id.as_str())
            .field("title", self.title.as_str());
        if let Some(y) = self.year {
            b = b.field("year", y);
        }
        if let Some(v) = &self.venue {
            b = b.field("venue", v.as_str());
        }
        b.field("authors", strings(&self.authors))
            .field("references", strings(&self.references))
            .build()
            .to_string_compact()
    }
}

fn string_array(v: &sjson::Value, field: &str) -> std::result::Result<Vec<String>, String> {
    let items = v.as_array().ok_or_else(|| format!("'{field}' must be an array"))?;
    items
        .iter()
        .map(|item| {
            item.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("'{field}' must contain strings"))
        })
        .collect()
}

/// Read a corpus from JSON-lines text.
pub fn read_jsonl<R: Read>(reader: R, opts: &LoadOptions) -> Result<Corpus> {
    let reader = BufReader::new(reader);
    let mut records: Vec<JsonArticle> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        // Chaos site: transient read failure mid-file. Must surface as a
        // clean CorpusError::Io, never a partial corpus.
        failpoint!(
            "corpus.jsonl.io",
            return Err(CorpusError::Io(std::io::Error::other(
                "injected I/O fault at corpus.jsonl.io",
            )))
        );
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        // Chaos site: corrupt record. Must surface as CorpusError::Parse
        // carrying the 1-based line number of the poisoned record.
        failpoint!(
            "corpus.jsonl.parse",
            return Err(CorpusError::Parse {
                line: lineno + 1,
                message: "injected parse fault at corpus.jsonl.parse".into(),
            })
        );
        let rec = sjson::parse(trimmed)
            .map_err(|e| e.to_string())
            .and_then(|v| JsonArticle::from_value(&v))
            .map_err(|e| CorpusError::Parse {
                line: lineno + 1,
                message: format!("bad json record: {e}"),
            })?;
        records.push(rec);
    }
    build_from_records(records, opts)
}

/// Assemble a corpus from parsed records (two-pass id resolution). The
/// [`LoadOptions::missing_year`] policy is applied first, so yearless
/// records error, vanish, or receive the imputed year before any dense
/// id is assigned.
pub fn build_from_records(mut records: Vec<JsonArticle>, opts: &LoadOptions) -> Result<Corpus> {
    super::apply_missing_year(
        &mut records,
        opts.missing_year,
        |r| r.year,
        |r, y| r.year = Some(y),
        |r| format!("'{}'", r.id),
    )?;
    let mut interner = IdInterner::new();
    for rec in &records {
        interner.intern(&rec.id);
    }
    let mut builder = CorpusBuilder::new();
    for (i, rec) in records.iter().enumerate() {
        let venue = match &rec.venue {
            Some(v) if !v.is_empty() => builder.venue(v),
            _ => builder.venue("(unknown venue)"),
        };
        let authors = rec.authors.iter().map(|a| builder.author(a)).collect();
        let mut references = Vec::with_capacity(rec.references.len());
        for r in &rec.references {
            match interner.get(r) {
                Some(id) => references.push(id),
                None => match opts.unknown_references {
                    UnknownReferencePolicy::Drop => {}
                    UnknownReferencePolicy::Error => {
                        return Err(CorpusError::Parse {
                            line: i + 1,
                            message: format!("record {} cites unknown article '{r}'", rec.id),
                        })
                    }
                },
            }
        }
        // Two-pass interning means the dense id of record i is exactly i
        // when external ids are unique. Enforce that so the builder's
        // dense assignment matches the reference resolution above.
        let expected = interner.get(&rec.id).expect("interned in first pass");
        if expected.index() != i {
            return Err(CorpusError::Parse {
                line: i + 1,
                message: format!("duplicate article id '{}'", rec.id),
            });
        }
        let year = rec.year.expect("missing-year policy applied above");
        builder.add_article(&rec.title, year, venue, authors, references, None);
    }
    builder.finish()
}

/// Write a corpus as JSON lines (the inverse of [`read_jsonl`], with
/// articles keyed by their dense id rendered in decimal).
pub fn write_jsonl<W: Write>(corpus: &Corpus, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    for a in corpus.articles() {
        let rec = JsonArticle {
            id: a.id.to_string(),
            title: a.title.clone(),
            year: Some(a.year),
            venue: Some(corpus.venue(a.venue).name.clone()),
            authors: a.authors.iter().map(|&u| corpus.author(u).name.clone()).collect(),
            references: a.references.iter().map(|r| r.to_string()).collect(),
        };
        w.write_all(rec.to_json_line().as_bytes())?;
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(())
}

/// Read a JSON-lines corpus from a file.
pub fn read_jsonl_file(path: &Path, opts: &LoadOptions) -> Result<Corpus> {
    read_jsonl(std::fs::File::open(path)?, opts)
}

/// Write a JSON-lines corpus to a file.
pub fn write_jsonl_file(corpus: &Corpus, path: &Path) -> Result<()> {
    write_jsonl(corpus, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::super::MissingYearPolicy;
    use super::*;
    use crate::model::ArticleId;

    const SAMPLE: &str = r#"
{"id": "A", "title": "First", "year": 1990, "venue": "VLDB", "authors": ["Ada"], "references": []}
{"id": "B", "title": "Second", "year": 1995, "venue": "ICDE", "authors": ["Ada", "Bob"], "references": ["A"]}
{"id": "C", "title": "Third", "year": 2000, "authors": [], "references": ["A", "B", "GHOST"]}
"#;

    #[test]
    fn reads_basic_corpus() {
        let c = read_jsonl(SAMPLE.as_bytes(), &LoadOptions::default()).unwrap();
        assert_eq!(c.num_articles(), 3);
        assert_eq!(c.article(ArticleId(1)).title, "Second");
        assert_eq!(c.article(ArticleId(1)).references, vec![ArticleId(0)]);
        // GHOST dropped by default.
        assert_eq!(c.article(ArticleId(2)).references, vec![ArticleId(0), ArticleId(1)]);
        // Missing venue maps to the sentinel.
        assert_eq!(c.venue(c.article(ArticleId(2)).venue).name, "(unknown venue)");
        assert_eq!(c.num_authors(), 2);
    }

    #[test]
    fn unknown_reference_error_policy() {
        let opts =
            LoadOptions { unknown_references: UnknownReferencePolicy::Error, ..Default::default() };
        let err = read_jsonl(SAMPLE.as_bytes(), &opts).unwrap_err();
        assert!(err.to_string().contains("GHOST"));
    }

    #[test]
    fn forward_references_resolve() {
        let text = r#"
{"id": "later-cites-earlier-reversed", "year": 2000, "references": ["Z"]}
{"id": "Z", "year": 1990, "references": []}
"#;
        let c = read_jsonl(text.as_bytes(), &LoadOptions::default()).unwrap();
        assert_eq!(c.article(ArticleId(0)).references, vec![ArticleId(1)]);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let text = "{\"id\": \"A\"}\n{\"id\": \"A\"}\n";
        assert!(read_jsonl(text.as_bytes(), &LoadOptions::default()).is_err());
    }

    #[test]
    fn bad_json_reports_line() {
        let text = "{\"id\": \"A\"}\nnot json\n";
        match read_jsonl(text.as_bytes(), &LoadOptions::default()) {
            Err(CorpusError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn missing_year_errors_by_default() {
        let text = "{\"id\": \"A\"}\n{\"id\": \"B\", \"year\": 2000}\n";
        let err = read_jsonl(text.as_bytes(), &LoadOptions::default()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("'A'"), "error names the yearless record: {msg}");
        assert!(msg.contains("no publication year"), "{msg}");
    }

    #[test]
    fn missing_year_drop_policy() {
        let text = "{\"id\": \"A\"}\n{\"id\": \"B\", \"year\": 2000, \"references\": [\"A\"]}\n";
        let opts = LoadOptions { missing_year: MissingYearPolicy::Drop, ..Default::default() };
        let c = read_jsonl(text.as_bytes(), &opts).unwrap();
        assert_eq!(c.num_articles(), 1);
        assert_eq!(c.article(ArticleId(0)).year, 2000);
        // The reference to the dropped record follows the
        // unknown-reference policy (default: dropped too).
        assert!(c.article(ArticleId(0)).references.is_empty());
    }

    #[test]
    fn missing_year_impute_policy() {
        let text = "{\"id\": \"A\"}\n{\"id\": \"B\", \"year\": 2000}\n";
        let opts =
            LoadOptions { missing_year: MissingYearPolicy::Impute(1997), ..Default::default() };
        let c = read_jsonl(text.as_bytes(), &opts).unwrap();
        assert_eq!(c.num_articles(), 2);
        assert_eq!(c.article(ArticleId(0)).year, 1997);
        assert_eq!(c.article(ArticleId(1)).year, 2000);
    }

    #[test]
    fn roundtrip_through_writer() {
        let c = read_jsonl(SAMPLE.as_bytes(), &LoadOptions::default()).unwrap();
        let mut buf = Vec::new();
        write_jsonl(&c, &mut buf).unwrap();
        let c2 = read_jsonl(&buf[..], &LoadOptions::default()).unwrap();
        assert_eq!(c.num_articles(), c2.num_articles());
        assert_eq!(c.num_citations(), c2.num_citations());
        for (a, b) in c.articles().iter().zip(c2.articles()) {
            assert_eq!(a.title, b.title);
            assert_eq!(a.year, b.year);
            assert_eq!(a.references, b.references);
        }
    }

    #[test]
    fn generated_corpus_roundtrips() {
        let c = crate::generator::Preset::Tiny.generate(3);
        let mut buf = Vec::new();
        write_jsonl(&c, &mut buf).unwrap();
        let c2 = read_jsonl(&buf[..], &LoadOptions::default()).unwrap();
        assert_eq!(c.num_articles(), c2.num_articles());
        assert_eq!(c.num_citations(), c2.num_citations());
        assert_eq!(c.num_authors(), c2.num_authors());
        assert_eq!(c.num_venues(), c2.num_venues());
    }

    #[test]
    fn empty_input() {
        let c = read_jsonl("".as_bytes(), &LoadOptions::default()).unwrap();
        assert_eq!(c.num_articles(), 0);
    }
}
