//! Microsoft-Academic-Graph-style TSV loader.
//!
//! MAG dumps arrive as a family of tab-separated tables. This loader
//! consumes the three needed here:
//!
//! * **papers**: `paper_id \t year \t venue_name \t title`
//! * **authorships**: `paper_id \t author_name \t byline_position` (the
//!   position column orders the byline; ties broken by file order)
//! * **references**: `citing_paper_id \t cited_paper_id`
//!
//! Column separators are hard tabs, as in the real dumps. Unknown paper
//! ids in the authorship/reference tables follow
//! [`LoadOptions::unknown_references`].

use super::{LoadOptions, UnknownReferencePolicy};
use crate::corpus::{Corpus, CorpusBuilder};
use crate::model::Year;
use crate::{CorpusError, Result};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

struct PaperRow {
    id: String,
    year: Option<Year>,
    venue: String,
    title: String,
}

fn read_papers<R: Read>(reader: R) -> Result<Vec<PaperRow>> {
    let reader = BufReader::new(reader);
    let mut rows = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut cols = line.split('\t');
        let id = cols
            .next()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| CorpusError::Parse {
                line: lineno + 1,
                message: "missing paper id".into(),
            })?
            .to_owned();
        let year_tok = cols.next().unwrap_or("");
        let year = if year_tok.is_empty() {
            None
        } else {
            Some(year_tok.parse().map_err(|e| CorpusError::Parse {
                line: lineno + 1,
                message: format!("bad year '{year_tok}': {e}"),
            })?)
        };
        let venue = cols.next().unwrap_or("").to_owned();
        let title = cols.next().unwrap_or("").to_owned();
        rows.push(PaperRow { id, year, venue, title });
    }
    Ok(rows)
}

/// Load a MAG-style corpus from the three table readers.
pub fn read_mag<R1: Read, R2: Read, R3: Read>(
    papers: R1,
    authorships: R2,
    references: R3,
    opts: &LoadOptions,
) -> Result<Corpus> {
    // Chaos site: poisoned papers table. Must surface as a parse error,
    // never as an empty-but-Ok corpus.
    failpoint!(
        "corpus.mag.parse",
        return Err(CorpusError::Parse {
            line: 0,
            message: "injected parse fault at corpus.mag.parse".into(),
        })
    );
    let mut rows = read_papers(papers)?;
    super::apply_missing_year(
        &mut rows,
        opts.missing_year,
        |r| r.year,
        |r, y| r.year = Some(y),
        |r| format!("'{}'", r.id),
    )?;
    let index: HashMap<String, usize> =
        rows.iter().enumerate().map(|(i, r)| (r.id.clone(), i)).collect();
    if index.len() != rows.len() {
        return Err(CorpusError::Parse { line: 0, message: "duplicate paper ids".into() });
    }

    // Authorships: collect (position, file order, name) per paper.
    let mut bylines: Vec<Vec<(i64, usize, String)>> = vec![Vec::new(); rows.len()];
    let reader = BufReader::new(authorships);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut cols = line.split('\t');
        let pid = cols.next().unwrap_or("");
        let name = cols.next().unwrap_or("");
        let pos_tok = cols.next().unwrap_or("");
        if name.is_empty() {
            return Err(CorpusError::Parse {
                line: lineno + 1,
                message: "authorship row missing author name".into(),
            });
        }
        let pos: i64 = if pos_tok.is_empty() {
            i64::MAX
        } else {
            pos_tok.parse().map_err(|e| CorpusError::Parse {
                line: lineno + 1,
                message: format!("bad byline position '{pos_tok}': {e}"),
            })?
        };
        match index.get(pid) {
            Some(&i) => bylines[i].push((pos, lineno, name.to_owned())),
            None => {
                if opts.unknown_references == UnknownReferencePolicy::Error {
                    return Err(CorpusError::Parse {
                        line: lineno + 1,
                        message: format!("authorship references unknown paper '{pid}'"),
                    });
                }
            }
        }
    }
    for b in &mut bylines {
        b.sort_by_key(|a| (a.0, a.1));
    }

    // References.
    let mut refs: Vec<Vec<usize>> = vec![Vec::new(); rows.len()];
    let reader = BufReader::new(references);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut cols = line.split('\t');
        let citing = cols.next().unwrap_or("");
        let cited = cols.next().unwrap_or("");
        match (index.get(citing), index.get(cited)) {
            (Some(&i), Some(&j)) => refs[i].push(j),
            _ => {
                if opts.unknown_references == UnknownReferencePolicy::Error {
                    return Err(CorpusError::Parse {
                        line: lineno + 1,
                        message: format!("reference {citing} -> {cited} mentions unknown paper"),
                    });
                }
            }
        }
    }

    let mut builder = CorpusBuilder::new();
    for (i, row) in rows.iter().enumerate() {
        let venue = if row.venue.is_empty() {
            builder.venue("(unknown venue)")
        } else {
            builder.venue(&row.venue)
        };
        let authors = bylines[i].iter().map(|(_, _, name)| builder.author(name)).collect();
        let references = refs[i].iter().map(|&j| crate::model::ArticleId(j as u32)).collect();
        let year = row.year.expect("missing-year policy applied above");
        builder.add_article(&row.title, year, venue, authors, references, None);
    }
    builder.finish()
}

/// Load a MAG-style corpus from the three files on disk.
pub fn read_mag_files(
    papers: &Path,
    authorships: &Path,
    references: &Path,
    opts: &LoadOptions,
) -> Result<Corpus> {
    read_mag(
        std::fs::File::open(papers)?,
        std::fs::File::open(authorships)?,
        std::fs::File::open(references)?,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::super::MissingYearPolicy;
    use super::*;
    use crate::model::ArticleId;

    fn impute_1992() -> LoadOptions {
        LoadOptions { missing_year: MissingYearPolicy::Impute(1992), ..Default::default() }
    }

    const PAPERS: &str =
        "P1\t1990\tVLDB\tFirst Paper\nP2\t1995\tICDE\tSecond Paper\nP3\t\t\tYearless\n";
    const AUTH: &str = "P1\tAda\t1\nP2\tBob\t2\nP2\tAda\t1\nP9\tGhost\t1\n";
    const REFS: &str = "P2\tP1\nP2\tP9\n";

    #[test]
    fn loads_three_tables() {
        let opts =
            LoadOptions { missing_year: MissingYearPolicy::Impute(1992), ..Default::default() };
        let c = read_mag(PAPERS.as_bytes(), AUTH.as_bytes(), REFS.as_bytes(), &opts).unwrap();
        assert_eq!(c.num_articles(), 3);
        assert_eq!(c.article(ArticleId(0)).title, "First Paper");
        assert_eq!(c.article(ArticleId(1)).references, vec![ArticleId(0)]);
        // Byline ordered by position column, not file order.
        let byline: Vec<&str> =
            c.article(ArticleId(1)).authors.iter().map(|&u| c.author(u).name.as_str()).collect();
        assert_eq!(byline, vec!["Ada", "Bob"]);
        // Yearless paper kept with the explicitly imputed year.
        assert_eq!(c.article(ArticleId(2)).year, 1992);
        assert_eq!(c.venue(c.article(ArticleId(2)).venue).name, "(unknown venue)");
    }

    #[test]
    fn missing_year_errors_by_default() {
        let err =
            read_mag(PAPERS.as_bytes(), AUTH.as_bytes(), REFS.as_bytes(), &LoadOptions::default())
                .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("'P3'"), "error names the yearless paper: {msg}");
        assert!(msg.contains("no publication year"), "{msg}");
    }

    #[test]
    fn missing_year_drop_policy() {
        let c = read_mag(
            PAPERS.as_bytes(),
            AUTH.as_bytes(),
            REFS.as_bytes(),
            &LoadOptions { missing_year: MissingYearPolicy::Drop, ..Default::default() },
        )
        .unwrap();
        assert_eq!(c.num_articles(), 2);
    }

    #[test]
    fn error_policy_on_unknown_ids() {
        let opts = LoadOptions {
            unknown_references: UnknownReferencePolicy::Error,
            missing_year: MissingYearPolicy::Impute(1992),
        };
        // Ghost authorship row P9 trips first.
        assert!(read_mag(PAPERS.as_bytes(), AUTH.as_bytes(), REFS.as_bytes(), &opts).is_err());
        // Without the ghost authorship, the ghost reference trips.
        let auth_ok = "P1\tAda\t1\n";
        assert!(read_mag(PAPERS.as_bytes(), auth_ok.as_bytes(), REFS.as_bytes(), &opts).is_err());
    }

    #[test]
    fn duplicate_paper_ids_rejected() {
        let dup = "P1\t1990\tV\tA\nP1\t1991\tV\tB\n";
        assert!(read_mag(dup.as_bytes(), "".as_bytes(), "".as_bytes(), &LoadOptions::default())
            .is_err());
    }

    #[test]
    fn bad_year_and_position_errors() {
        let bad_year = "P1\tnineteen\tV\tT\n";
        assert!(read_mag(
            bad_year.as_bytes(),
            "".as_bytes(),
            "".as_bytes(),
            &LoadOptions::default()
        )
        .is_err());
        let bad_pos = "P1\tAda\tfirst\n";
        assert!(
            read_mag(PAPERS.as_bytes(), bad_pos.as_bytes(), "".as_bytes(), &impute_1992()).is_err()
        );
    }

    #[test]
    fn missing_position_sorts_last() {
        let auth = "P1\tZed\t\nP1\tAda\t1\n";
        let c =
            read_mag(PAPERS.as_bytes(), auth.as_bytes(), "".as_bytes(), &impute_1992()).unwrap();
        let byline: Vec<&str> =
            c.article(ArticleId(0)).authors.iter().map(|&u| c.author(u).name.as_str()).collect();
        assert_eq!(byline, vec!["Ada", "Zed"]);
    }

    #[test]
    fn empty_tables() {
        let c =
            read_mag("".as_bytes(), "".as_bytes(), "".as_bytes(), &LoadOptions::default()).unwrap();
        assert_eq!(c.num_articles(), 0);
    }
}
