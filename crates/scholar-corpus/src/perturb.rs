//! Corpus perturbations for robustness experiments.
//!
//! * [`sample_citations`] — keep each citation independently with a given
//!   probability (the link-sparsity experiment, R-Fig 7): simulates an
//!   incomplete crawl.
//! * [`hide_citations_to_recent`] — hide most citations pointing at
//!   recently published articles (the "new page" simulation): measures
//!   how gracefully a ranker degrades for articles whose citation record
//!   is missing.
//!
//! Both are deterministic given the seed, and nested across fractions
//! (an edge dropped at keep = 0.8 is also dropped at keep = 0.5), which
//! makes degradation curves monotone by construction rather than noisy.

use crate::corpus::Corpus;
use crate::model::Year;
use sgraph::sampling::edge_unit;

/// Keep each citation independently with probability `keep_fraction`.
/// Articles, authors, and venues are untouched.
pub fn sample_citations(corpus: &Corpus, keep_fraction: f64, seed: u64) -> Corpus {
    assert!(
        (0.0..=1.0).contains(&keep_fraction),
        "keep fraction must be a probability, got {keep_fraction}"
    );
    let mut out = corpus.clone();
    for a in &mut out.articles {
        let src = a.id.0;
        a.references.retain(|r| edge_unit(seed, src, r.0) < keep_fraction);
    }
    out
}

/// Hide each citation pointing at an article published after
/// `recent_since` with probability `drop_fraction`.
pub fn hide_citations_to_recent(
    corpus: &Corpus,
    recent_since: Year,
    drop_fraction: f64,
    seed: u64,
) -> Corpus {
    assert!(
        (0.0..=1.0).contains(&drop_fraction),
        "drop fraction must be a probability, got {drop_fraction}"
    );
    let recent: Vec<bool> = corpus.articles().iter().map(|a| a.year >= recent_since).collect();
    let mut out = corpus.clone();
    for a in &mut out.articles {
        let src = a.id.0;
        a.references.retain(|r| !(recent[r.index()] && edge_unit(seed, src, r.0) < drop_fraction));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::Preset;
    use crate::validate::validate;

    #[test]
    fn keep_fraction_is_respected() {
        let c = Preset::Tiny.generate(30);
        let total = c.num_citations() as f64;
        for &f in &[0.3, 0.7] {
            let s = sample_citations(&c, f, 4);
            validate(&s).unwrap();
            let kept = s.num_citations() as f64 / total;
            assert!((kept - f).abs() < 0.05, "asked {f}, kept {kept}");
            assert_eq!(s.num_articles(), c.num_articles());
        }
        assert_eq!(sample_citations(&c, 1.0, 4), c);
        assert_eq!(sample_citations(&c, 0.0, 4).num_citations(), 0);
    }

    #[test]
    fn samples_are_nested() {
        let c = Preset::Tiny.generate(31);
        let small = sample_citations(&c, 0.3, 9);
        let large = sample_citations(&c, 0.7, 9);
        for (a_small, a_large) in small.articles().iter().zip(large.articles()) {
            for r in &a_small.references {
                assert!(a_large.references.contains(r), "nested sampling violated");
            }
        }
    }

    #[test]
    fn hiding_recent_targets_only_recent() {
        let c = Preset::Tiny.generate(32);
        let (_, last) = c.year_range().unwrap();
        let cut = last - 3;
        let hidden = hide_citations_to_recent(&c, cut, 1.0, 5);
        validate(&hidden).unwrap();
        let counts = hidden.citation_counts();
        for a in hidden.articles() {
            if a.year >= cut {
                assert_eq!(counts[a.id.index()], 0, "recent article still cited");
            }
        }
        // Old articles keep their citations.
        let old_before: u32 = c
            .citation_counts()
            .iter()
            .zip(c.articles())
            .filter(|(_, a)| a.year < cut)
            .map(|(&n, _)| n)
            .sum();
        let old_after: u32 = counts
            .iter()
            .zip(hidden.articles())
            .filter(|(_, a)| a.year < cut)
            .map(|(&n, _)| n)
            .sum();
        assert_eq!(old_before, old_after);
    }

    #[test]
    fn partial_hiding() {
        let c = Preset::Tiny.generate(33);
        let (_, last) = c.year_range().unwrap();
        let half = hide_citations_to_recent(&c, last - 5, 0.5, 6);
        assert!(half.num_citations() < c.num_citations());
        assert!(half.num_citations() > 0);
    }
}
