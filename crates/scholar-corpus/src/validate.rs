//! Referential-integrity validation for corpora from untrusted sources.

use crate::corpus::Corpus;
use crate::{CorpusError, Result};

/// A summary of soft (non-fatal) data-quality findings.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ValidationReport {
    /// Citations whose cited article is newer than the citing article.
    pub time_travel_citations: usize,
    /// Articles with an empty author list.
    pub articles_without_authors: usize,
    /// Articles with an empty reference list.
    pub articles_without_references: usize,
    /// Articles never cited by any other article.
    pub uncited_articles: usize,
}

/// Hard validation: every id in bounds, dense id assignment, no
/// self-citations, references sorted and deduplicated.
///
/// Corpora produced by [`crate::CorpusBuilder::finish`] always pass; this
/// is the check applied to deserialized / hand-constructed data.
pub fn validate(corpus: &Corpus) -> Result<()> {
    let n_articles = corpus.num_articles() as u32;
    let n_authors = corpus.num_authors() as u32;
    let n_venues = corpus.num_venues() as u32;
    for (i, a) in corpus.articles().iter().enumerate() {
        if a.id.0 != i as u32 {
            return Err(CorpusError::Parse {
                line: i + 1,
                message: format!("article id {} not dense at position {i}", a.id),
            });
        }
        if a.venue.0 >= n_venues {
            return Err(CorpusError::DanglingReference {
                kind: "venue",
                id: a.venue.0,
                article: a.id.0,
            });
        }
        for &u in &a.authors {
            if u.0 >= n_authors {
                return Err(CorpusError::DanglingReference {
                    kind: "author",
                    id: u.0,
                    article: a.id.0,
                });
            }
        }
        let mut prev: Option<u32> = None;
        for &r in &a.references {
            if r.0 >= n_articles {
                return Err(CorpusError::DanglingReference {
                    kind: "article",
                    id: r.0,
                    article: a.id.0,
                });
            }
            if r == a.id {
                return Err(CorpusError::Parse {
                    line: i + 1,
                    message: format!("article {} cites itself", a.id),
                });
            }
            if let Some(p) = prev {
                if r.0 <= p {
                    return Err(CorpusError::Parse {
                        line: i + 1,
                        message: format!("references of article {} not sorted/deduplicated", a.id),
                    });
                }
            }
            prev = Some(r.0);
        }
    }
    for (i, u) in corpus.authors().iter().enumerate() {
        if u.id.0 != i as u32 {
            return Err(CorpusError::Parse {
                line: i + 1,
                message: format!("author id {} not dense at position {i}", u.id),
            });
        }
    }
    for (i, v) in corpus.venues().iter().enumerate() {
        if v.id.0 != i as u32 {
            return Err(CorpusError::Parse {
                line: i + 1,
                message: format!("venue id {} not dense at position {i}", v.id),
            });
        }
    }
    Ok(())
}

/// Soft data-quality report (never fails).
pub fn quality_report(corpus: &Corpus) -> ValidationReport {
    let mut report = ValidationReport::default();
    let cited = corpus.citation_counts();
    for a in corpus.articles() {
        if a.authors.is_empty() {
            report.articles_without_authors += 1;
        }
        if a.references.is_empty() {
            report.articles_without_references += 1;
        }
        for &r in &a.references {
            if corpus.article(r).year > a.year {
                report.time_travel_citations += 1;
            }
        }
    }
    report.uncited_articles = cited.iter().filter(|&&c| c == 0).count();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;
    use crate::model::{Article, ArticleId, VenueId};

    fn good() -> Corpus {
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        let u = b.author("U");
        let a0 = b.add_article("a0", 1990, v, vec![u], vec![], None);
        b.add_article("a1", 1995, v, vec![], vec![a0], None);
        b.finish().unwrap()
    }

    #[test]
    fn builder_output_validates() {
        assert!(validate(&good()).is_ok());
    }

    #[test]
    fn detects_non_dense_article_ids() {
        let mut c = good();
        c.articles[1].id = ArticleId(7);
        assert!(validate(&c).is_err());
    }

    #[test]
    fn detects_self_citation() {
        let mut c = good();
        c.articles[1].references = vec![ArticleId(1)];
        assert!(validate(&c).is_err());
    }

    #[test]
    fn detects_unsorted_references() {
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        let a0 = b.add_article("a0", 1990, v, vec![], vec![], None);
        let a1 = b.add_article("a1", 1991, v, vec![], vec![], None);
        b.add_article("a2", 1995, v, vec![], vec![a0, a1], None);
        let mut c = b.finish().unwrap();
        c.articles[2].references = vec![a1, a0];
        assert!(validate(&c).is_err());
    }

    #[test]
    fn detects_out_of_bounds_everything() {
        let mut c = good();
        c.articles[0].venue = VenueId(5);
        assert!(matches!(validate(&c), Err(CorpusError::DanglingReference { kind: "venue", .. })));

        let mut c = good();
        c.articles[0].references = vec![ArticleId(99)];
        assert!(matches!(
            validate(&c),
            Err(CorpusError::DanglingReference { kind: "article", .. })
        ));
    }

    #[test]
    fn quality_report_counts() {
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        let u = b.author("U");
        let future = ArticleId(1);
        b.add_article("old", 1990, v, vec![], vec![future], None);
        b.add_article("new", 2010, v, vec![u], vec![], None);
        let c = b.finish().unwrap();
        let r = quality_report(&c);
        assert_eq!(r.time_travel_citations, 1);
        assert_eq!(r.articles_without_authors, 1);
        assert_eq!(r.articles_without_references, 1);
        assert_eq!(r.uncited_articles, 1); // article 0 is never cited
    }

    #[test]
    fn quality_report_clean_corpus() {
        let r = quality_report(&good());
        assert_eq!(r.time_travel_citations, 0);
        assert_eq!(r.uncited_articles, 1);
    }

    #[test]
    fn add_article_dense_ids_validate() {
        // Articles created via Article literal with correct density pass.
        let c = Corpus::from_parts(
            vec![Article {
                id: ArticleId(0),
                title: "x".into(),
                year: 2000,
                venue: VenueId(0),
                authors: vec![],
                references: vec![],
                merit: None,
            }],
            vec![],
            vec![crate::model::Venue { id: VenueId(0), name: "v".into() }],
        );
        assert!(validate(&c).is_ok());
    }
}
