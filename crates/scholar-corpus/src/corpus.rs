//! The [`Corpus`] container and its derived graphs.

use crate::model::{Article, ArticleId, Author, AuthorId, Venue, VenueId, Year};
use crate::{CorpusError, Result};
use sgraph::{Bipartite, BipartiteBuilder, CsrGraph, GraphBuilder, NodeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// An immutable scholarly corpus: articles, authors, venues, and the
/// citation structure. Build one with [`CorpusBuilder`], the synthetic
/// [`crate::generator`], or a [`crate::loader`].
#[derive(Debug)]
pub struct Corpus {
    pub(crate) articles: Vec<Article>,
    pub(crate) authors: Vec<Author>,
    pub(crate) venues: Vec<Venue>,
    /// How many times [`Corpus::citation_graph`] has materialized the CSR
    /// for this instance. Build-amortization probe: a prepared layer that
    /// shares one context leaves this at 1 after a full ranker sweep.
    citation_graph_builds: AtomicUsize,
}

impl Clone for Corpus {
    fn clone(&self) -> Self {
        // The build counter is per-instance instrumentation, not data:
        // a clone starts with a fresh count.
        Corpus::from_parts(self.articles.clone(), self.authors.clone(), self.venues.clone())
    }
}

impl PartialEq for Corpus {
    fn eq(&self, other: &Self) -> bool {
        self.articles == other.articles
            && self.authors == other.authors
            && self.venues == other.venues
    }
}

impl Corpus {
    /// Assemble a corpus from already-validated parts (crate-internal;
    /// public construction goes through [`CorpusBuilder`] and friends).
    pub(crate) fn from_parts(
        articles: Vec<Article>,
        authors: Vec<Author>,
        venues: Vec<Venue>,
    ) -> Self {
        Corpus { articles, authors, venues, citation_graph_builds: AtomicUsize::new(0) }
    }

    /// Reassemble a corpus from parts previously extracted from a live
    /// `Corpus` — the snapshot-restore path. Unlike [`CorpusBuilder`],
    /// this does **not** intern by name (two distinct authors may share a
    /// name; interning would silently merge them), but it re-runs the
    /// structural checks so corrupt or tampered inputs surface as typed
    /// errors instead of panics downstream: dense ids, in-bounds
    /// venue/author/reference ids, sorted deduplicated references, no
    /// self-citations.
    pub fn assemble(
        articles: Vec<Article>,
        authors: Vec<Author>,
        venues: Vec<Venue>,
    ) -> Result<Self> {
        let n_articles = articles.len() as u32;
        let n_authors = authors.len() as u32;
        let n_venues = venues.len() as u32;
        let dense = |what: &'static str, got: u32, want: usize| {
            Err(CorpusError::Corrupt {
                file: "<assemble>".to_owned(),
                message: format!("{what} id {got} at position {want} is not dense"),
            })
        };
        for (i, u) in authors.iter().enumerate() {
            if u.id.index() != i {
                return dense("author", u.id.0, i);
            }
        }
        for (i, v) in venues.iter().enumerate() {
            if v.id.index() != i {
                return dense("venue", v.id.0, i);
            }
        }
        for (i, art) in articles.iter().enumerate() {
            if art.id.index() != i {
                return dense("article", art.id.0, i);
            }
            if art.venue.0 >= n_venues {
                return Err(CorpusError::DanglingReference {
                    kind: "venue",
                    id: art.venue.0,
                    article: art.id.0,
                });
            }
            for &u in &art.authors {
                if u.0 >= n_authors {
                    return Err(CorpusError::DanglingReference {
                        kind: "author",
                        id: u.0,
                        article: art.id.0,
                    });
                }
            }
            let mut prev: Option<ArticleId> = None;
            for &r in &art.references {
                if r.0 >= n_articles {
                    return Err(CorpusError::DanglingReference {
                        kind: "article",
                        id: r.0,
                        article: art.id.0,
                    });
                }
                if r == art.id || prev.is_some_and(|p| p >= r) {
                    return Err(CorpusError::Corrupt {
                        file: "<assemble>".to_owned(),
                        message: format!(
                            "article {} has unsorted, duplicate, or self references",
                            art.id.0
                        ),
                    });
                }
                prev = Some(r);
            }
        }
        Ok(Corpus::from_parts(articles, authors, venues))
    }

    /// How many times [`Corpus::citation_graph`] has run for this
    /// instance. Used by tests and benches to assert that prepared layers
    /// (RankContext, QRankEngine) amortize the CSR build.
    pub fn citation_graph_builds(&self) -> usize {
        // ORDERING: a test/bench statistic — an independent monotone
        // counter that publishes no data.
        self.citation_graph_builds.load(Ordering::Relaxed)
    }
    /// All articles, indexed by [`ArticleId`].
    pub fn articles(&self) -> &[Article] {
        &self.articles
    }

    /// All authors, indexed by [`AuthorId`].
    pub fn authors(&self) -> &[Author] {
        &self.authors
    }

    /// All venues, indexed by [`VenueId`].
    pub fn venues(&self) -> &[Venue] {
        &self.venues
    }

    /// Number of articles.
    pub fn num_articles(&self) -> usize {
        self.articles.len()
    }

    /// Number of authors.
    pub fn num_authors(&self) -> usize {
        self.authors.len()
    }

    /// Number of venues.
    pub fn num_venues(&self) -> usize {
        self.venues.len()
    }

    /// Total number of citations (sum of reference-list lengths).
    pub fn num_citations(&self) -> usize {
        self.articles.iter().map(|a| a.references.len()).sum()
    }

    /// Article lookup.
    pub fn article(&self, id: ArticleId) -> &Article {
        &self.articles[id.index()]
    }

    /// Author lookup.
    pub fn author(&self, id: AuthorId) -> &Author {
        &self.authors[id.index()]
    }

    /// Venue lookup.
    pub fn venue(&self, id: VenueId) -> &Venue {
        &self.venues[id.index()]
    }

    /// `(min_year, max_year)` across all articles; `None` when empty.
    pub fn year_range(&self) -> Option<(Year, Year)> {
        let mut it = self.articles.iter().map(|a| a.year);
        let first = it.next()?;
        let mut lo = first;
        let mut hi = first;
        for y in it {
            lo = lo.min(y);
            hi = hi.max(y);
        }
        Some((lo, hi))
    }

    /// The citation graph: one node per article, edge **citing → cited**,
    /// unit weights. In-degree is citation count.
    pub fn citation_graph(&self) -> CsrGraph {
        // ORDERING: build counter for tests/benches only; the RMW gives
        // the count, and no reader infers visibility from it.
        self.citation_graph_builds.fetch_add(1, Ordering::Relaxed);
        let mut b = GraphBuilder::new(self.articles.len() as u32)
            .with_edge_capacity(self.num_citations())
            .self_loops(false);
        for a in &self.articles {
            for &r in &a.references {
                b.add_unweighted(NodeId(a.id.0), NodeId(r.0));
            }
        }
        b.build()
    }

    /// The citation graph with per-edge weights computed by
    /// `f(citing, cited)`; used for time-decayed variants.
    pub fn weighted_citation_graph<F>(&self, mut f: F) -> CsrGraph
    where
        F: FnMut(&Article, &Article) -> f64,
    {
        let mut b = GraphBuilder::new(self.articles.len() as u32)
            .with_edge_capacity(self.num_citations())
            .self_loops(false);
        for a in &self.articles {
            for &r in &a.references {
                let w = f(a, &self.articles[r.index()]);
                b.add_edge(NodeId(a.id.0), NodeId(r.0), w);
            }
        }
        b.build()
    }

    /// Authorship bipartite: left = authors, right = articles, weights =
    /// harmonic byline-position weights (first author heaviest).
    pub fn authorship_bipartite(&self) -> Bipartite {
        let mut b = BipartiteBuilder::new(self.authors.len() as u32, self.articles.len() as u32);
        for a in &self.articles {
            let w = crate::model::author_position_weights(a.authors.len());
            for (&author, &weight) in a.authors.iter().zip(&w) {
                b.add_edge(author.0, a.id.0, weight);
            }
        }
        b.build()
    }

    /// Publication bipartite: left = venues, right = articles, unit weight.
    pub fn publication_bipartite(&self) -> Bipartite {
        let mut b = BipartiteBuilder::new(self.venues.len() as u32, self.articles.len() as u32);
        for a in &self.articles {
            b.add_edge(a.venue.0, a.id.0, 1.0);
        }
        b.build()
    }

    /// Aggregated venue citation graph: edge `V(u) → V(v)` with weight
    /// `Σ f(citing, cited)` over article citations `u → v` whose venues
    /// differ or match; self-loops (within-venue citations) are dropped.
    pub fn venue_graph<F>(&self, mut f: F) -> CsrGraph
    where
        F: FnMut(&Article, &Article) -> f64,
    {
        let mut b = GraphBuilder::new(self.venues.len() as u32).self_loops(false);
        for a in &self.articles {
            for &r in &a.references {
                let cited = &self.articles[r.index()];
                let w = f(a, cited);
                b.add_edge(NodeId(a.venue.0), NodeId(cited.venue.0), w);
            }
        }
        b.build()
    }

    /// Aggregated author citation graph: edge `A(u) → A(v)` summed over
    /// article citations, with the citing article's byline weight times the
    /// cited article's byline weight, scaled by `f(citing, cited)`.
    /// Self-citations (same author both sides) are dropped when
    /// `drop_self_citations` is true.
    pub fn author_graph<F>(&self, mut f: F, drop_self_citations: bool) -> CsrGraph
    where
        F: FnMut(&Article, &Article) -> f64,
    {
        let mut b = GraphBuilder::new(self.authors.len() as u32).self_loops(!drop_self_citations);
        for a in &self.articles {
            if a.authors.is_empty() {
                continue;
            }
            let wa = crate::model::author_position_weights(a.authors.len());
            for &r in &a.references {
                let cited = &self.articles[r.index()];
                if cited.authors.is_empty() {
                    continue;
                }
                let wc = crate::model::author_position_weights(cited.authors.len());
                let base = f(a, cited);
                if base <= 0.0 {
                    continue;
                }
                for (&ua, &pa) in a.authors.iter().zip(&wa) {
                    for (&uc, &pc) in cited.authors.iter().zip(&wc) {
                        if drop_self_citations && ua == uc {
                            continue;
                        }
                        b.add_edge(NodeId(ua.0), NodeId(uc.0), base * pa * pc);
                    }
                }
            }
        }
        b.build()
    }

    /// Citation counts per article (in-degree of the citation graph,
    /// computed directly without building the graph).
    pub fn citation_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.articles.len()];
        for a in &self.articles {
            for &r in &a.references {
                counts[r.index()] += 1;
            }
        }
        counts
    }

    /// Articles grouped by venue: `by_venue[v]` lists the article ids
    /// published at venue `v`.
    pub fn articles_by_venue(&self) -> Vec<Vec<ArticleId>> {
        let mut by = vec![Vec::new(); self.venues.len()];
        for a in &self.articles {
            by[a.venue.index()].push(a.id);
        }
        by
    }

    /// Articles grouped by author.
    pub fn articles_by_author(&self) -> Vec<Vec<ArticleId>> {
        let mut by = vec![Vec::new(); self.authors.len()];
        for a in &self.articles {
            for &u in &a.authors {
                by[u.index()].push(a.id);
            }
        }
        by
    }
}

/// Incremental corpus assembly with name interning and integrity checks.
#[derive(Debug, Default)]
pub struct CorpusBuilder {
    articles: Vec<Article>,
    authors: Vec<Author>,
    venues: Vec<Venue>,
    author_by_name: HashMap<String, AuthorId>,
    venue_by_name: HashMap<String, VenueId>,
    reject_time_travel: bool,
}

impl CorpusBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// When enabled, [`CorpusBuilder::finish`] rejects citations whose
    /// cited article is newer than the citing article. Real datasets
    /// contain a few such edges (preprints, in-press citations), so the
    /// default is to allow them.
    pub fn reject_time_travel(mut self, reject: bool) -> Self {
        self.reject_time_travel = reject;
        self
    }

    /// Intern an author by name, returning a stable id.
    pub fn author(&mut self, name: &str) -> AuthorId {
        if let Some(&id) = self.author_by_name.get(name) {
            return id;
        }
        let id = AuthorId(self.authors.len() as u32);
        self.authors.push(Author { id, name: name.to_owned() });
        self.author_by_name.insert(name.to_owned(), id);
        id
    }

    /// Intern a venue by name, returning a stable id.
    pub fn venue(&mut self, name: &str) -> VenueId {
        if let Some(&id) = self.venue_by_name.get(name) {
            return id;
        }
        let id = VenueId(self.venues.len() as u32);
        self.venues.push(Venue { id, name: name.to_owned() });
        self.venue_by_name.insert(name.to_owned(), id);
        id
    }

    /// Number of articles added so far (the next article's id).
    pub fn next_article_id(&self) -> ArticleId {
        ArticleId(self.articles.len() as u32)
    }

    /// Add an article. Its id is assigned densely in insertion order and
    /// returned. References may point to not-yet-added articles; they are
    /// validated in [`CorpusBuilder::finish`].
    #[allow(clippy::too_many_arguments)]
    pub fn add_article(
        &mut self,
        title: &str,
        year: Year,
        venue: VenueId,
        authors: Vec<AuthorId>,
        references: Vec<ArticleId>,
        merit: Option<f64>,
    ) -> ArticleId {
        let id = self.next_article_id();
        self.articles.push(Article {
            id,
            title: title.to_owned(),
            year,
            venue,
            authors,
            references,
            merit,
        });
        id
    }

    /// Validate and produce the immutable [`Corpus`].
    ///
    /// Checks: venue/author/reference ids in bounds, no self-citations, no
    /// duplicate references (duplicates are silently deduplicated), and —
    /// if [`CorpusBuilder::reject_time_travel`] was set — citation
    /// chronology.
    pub fn finish(mut self) -> Result<Corpus> {
        let n_articles = self.articles.len() as u32;
        let n_authors = self.authors.len() as u32;
        let n_venues = self.venues.len() as u32;
        let years: Vec<Year> = self.articles.iter().map(|a| a.year).collect();
        for art in &mut self.articles {
            if art.venue.0 >= n_venues {
                return Err(CorpusError::DanglingReference {
                    kind: "venue",
                    id: art.venue.0,
                    article: art.id.0,
                });
            }
            for &u in &art.authors {
                if u.0 >= n_authors {
                    return Err(CorpusError::DanglingReference {
                        kind: "author",
                        id: u.0,
                        article: art.id.0,
                    });
                }
            }
            art.references.sort_unstable();
            art.references.dedup();
            // Drop self-citations silently (an article citing itself is
            // always data noise).
            let own = art.id;
            art.references.retain(|&r| r != own);
            for &r in &art.references {
                if r.0 >= n_articles {
                    return Err(CorpusError::DanglingReference {
                        kind: "article",
                        id: r.0,
                        article: art.id.0,
                    });
                }
                if self.reject_time_travel && years[r.index()] > art.year {
                    return Err(CorpusError::TimeTravelCitation { citing: art.id.0, cited: r.0 });
                }
            }
        }
        Ok(Corpus::from_parts(self.articles, self.authors, self.venues))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small hand-built corpus used across this crate's tests:
    /// 4 articles, 3 authors, 2 venues.
    ///
    /// a0 (1990, v0, [u0])      — cited by a1, a2, a3
    /// a1 (1995, v0, [u0, u1])  — cites a0; cited by a2
    /// a2 (2000, v1, [u1])      — cites a0, a1
    /// a3 (2005, v1, [u2, u0])  — cites a0
    pub(crate) fn tiny() -> Corpus {
        let mut b = CorpusBuilder::new();
        let v0 = b.venue("VLDB");
        let v1 = b.venue("ICDE");
        let u0 = b.author("Ada");
        let u1 = b.author("Bob");
        let u2 = b.author("Cyd");
        let a0 = b.add_article("Foundations", 1990, v0, vec![u0], vec![], Some(3.0));
        let a1 = b.add_article("Extensions", 1995, v0, vec![u0, u1], vec![a0], Some(2.0));
        b.add_article("Survey", 2000, v1, vec![u1], vec![a0, a1], Some(1.0));
        b.add_article("Modern", 2005, v1, vec![u2, u0], vec![a0], Some(1.5));
        b.finish().unwrap()
    }

    #[test]
    fn counts_and_lookups() {
        let c = tiny();
        assert_eq!(c.num_articles(), 4);
        assert_eq!(c.num_authors(), 3);
        assert_eq!(c.num_venues(), 2);
        assert_eq!(c.num_citations(), 4);
        assert_eq!(c.article(ArticleId(1)).title, "Extensions");
        assert_eq!(c.author(AuthorId(2)).name, "Cyd");
        assert_eq!(c.venue(VenueId(0)).name, "VLDB");
        assert_eq!(c.year_range(), Some((1990, 2005)));
    }

    #[test]
    fn interning_is_stable() {
        let mut b = CorpusBuilder::new();
        let u1 = b.author("X");
        let u2 = b.author("X");
        assert_eq!(u1, u2);
        let v1 = b.venue("V");
        let v2 = b.venue("V");
        assert_eq!(v1, v2);
    }

    #[test]
    fn citation_graph_direction() {
        let c = tiny();
        let g = c.citation_graph();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        // a2 cites a0: edge 2 -> 0.
        assert!(g.has_edge(NodeId(2), NodeId(0)));
        assert!(!g.has_edge(NodeId(0), NodeId(2)));
        // in-degree = citation count.
        assert_eq!(g.in_degree(NodeId(0)), 3);
        assert_eq!(c.citation_counts(), vec![3, 1, 0, 0]);
    }

    #[test]
    fn weighted_citation_graph_applies_f() {
        let c = tiny();
        let g = c.weighted_citation_graph(|citing, cited| (citing.year - cited.year) as f64);
        assert_eq!(g.edge_weight(NodeId(2), NodeId(0)), Some(10.0));
        assert_eq!(g.edge_weight(NodeId(3), NodeId(0)), Some(15.0));
    }

    #[test]
    fn authorship_bipartite_weights() {
        let c = tiny();
        let bp = c.authorship_bipartite();
        assert_eq!(bp.num_left(), 3);
        assert_eq!(bp.num_right(), 4);
        // Article 1 has two authors with harmonic weights 2/3, 1/3.
        let ws = bp.left_weights_of(1);
        assert!((ws[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((ws[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn publication_bipartite_shape() {
        let c = tiny();
        let bp = c.publication_bipartite();
        assert_eq!(bp.num_left(), 2);
        assert_eq!(bp.left_degree(0), 2); // v0 has a0, a1
        assert_eq!(bp.left_degree(1), 2); // v1 has a2, a3
    }

    #[test]
    fn venue_graph_aggregates_and_drops_self_loops() {
        let c = tiny();
        let g = c.venue_graph(|_, _| 1.0);
        // a2 (v1) cites a0, a1 (v0): weight 2. a3 (v1) cites a0 (v0): +1.
        assert_eq!(g.edge_weight(NodeId(1), NodeId(0)), Some(3.0));
        // a1 (v0) cites a0 (v0): self-loop dropped.
        assert!(!g.has_edge(NodeId(0), NodeId(0)));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn author_graph_self_citations() {
        let c = tiny();
        // a1 [u0,u1] cites a0 [u0]: u0 -> u0 is a self-citation.
        let with_self_dropped = c.author_graph(|_, _| 1.0, true);
        assert!(!with_self_dropped.has_edge(NodeId(0), NodeId(0)));
        assert!(with_self_dropped.has_edge(NodeId(1), NodeId(0))); // u1 cites u0
                                                                   // Total weight should be < 4 citations since self-edges were dropped.
        let with_self_kept = c.author_graph(|_, _| 1.0, false);
        // Self-loop u0->u0 appears when kept.
        assert!(with_self_kept.has_edge(NodeId(0), NodeId(0)));
        assert!(with_self_kept.total_weight() > with_self_dropped.total_weight());
    }

    #[test]
    fn groupings() {
        let c = tiny();
        let by_v = c.articles_by_venue();
        assert_eq!(by_v[0], vec![ArticleId(0), ArticleId(1)]);
        let by_a = c.articles_by_author();
        assert_eq!(by_a[0], vec![ArticleId(0), ArticleId(1), ArticleId(3)]);
        assert_eq!(by_a[2], vec![ArticleId(3)]);
    }

    #[test]
    fn finish_rejects_dangling_ids() {
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        b.add_article("t", 2000, v, vec![AuthorId(9)], vec![], None);
        assert!(matches!(b.finish(), Err(CorpusError::DanglingReference { kind: "author", .. })));

        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        b.add_article("t", 2000, v, vec![], vec![ArticleId(7)], None);
        assert!(matches!(b.finish(), Err(CorpusError::DanglingReference { kind: "article", .. })));

        let mut b = CorpusBuilder::new();
        b.add_article("t", 2000, VenueId(3), vec![], vec![], None);
        assert!(matches!(b.finish(), Err(CorpusError::DanglingReference { kind: "venue", .. })));
    }

    #[test]
    fn finish_dedups_references_and_drops_self_citation() {
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        let a0 = b.add_article("first", 2000, v, vec![], vec![], None);
        let next = b.next_article_id();
        b.add_article("second", 2001, v, vec![], vec![a0, a0, next], None);
        let c = b.finish().unwrap();
        assert_eq!(c.article(ArticleId(1)).references, vec![a0]);
    }

    #[test]
    fn time_travel_rejected_when_configured() {
        let mut b = CorpusBuilder::new().reject_time_travel(true);
        let v = b.venue("V");
        let future = ArticleId(1);
        b.add_article("old", 2000, v, vec![], vec![future], None);
        b.add_article("new", 2010, v, vec![], vec![], None);
        assert!(matches!(b.finish(), Err(CorpusError::TimeTravelCitation { citing: 0, cited: 1 })));

        // Allowed by default.
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        let future = ArticleId(1);
        b.add_article("old", 2000, v, vec![], vec![future], None);
        b.add_article("new", 2010, v, vec![], vec![], None);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn empty_corpus() {
        let c = CorpusBuilder::new().finish().unwrap();
        assert_eq!(c.num_articles(), 0);
        assert_eq!(c.year_range(), None);
        assert!(c.citation_graph().is_empty());
    }
}
