//! Core entity types: articles, authors, venues.

/// Publication year. The stack never needs finer time granularity.
pub type Year = i32;

macro_rules! dense_id {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The id as a `usize`, for indexing corpus tables and score
            /// vectors.
            #[inline(always)]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(v: u32) -> Self {
                $name(v)
            }
        }

        impl From<$name> for u32 {
            #[inline]
            fn from(v: $name) -> u32 {
                v.0
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

dense_id! {
    /// Dense article identifier; indexes [`crate::Corpus::articles`] and
    /// article-score vectors.
    ArticleId
}
dense_id! {
    /// Dense author identifier; indexes [`crate::Corpus::authors`] and
    /// author-score vectors.
    AuthorId
}
dense_id! {
    /// Dense venue identifier; indexes [`crate::Corpus::venues`] and
    /// venue-score vectors.
    VenueId
}

/// One scholarly article.
#[derive(Debug, Clone, PartialEq)]
pub struct Article {
    /// Dense id; always equals this article's position in the corpus table.
    pub id: ArticleId,
    /// Title (may be synthetic).
    pub title: String,
    /// Publication year.
    pub year: Year,
    /// Venue the article appeared in.
    pub venue: VenueId,
    /// Author list in byline order (first author first).
    pub authors: Vec<AuthorId>,
    /// Outgoing citations: the articles this one cites.
    pub references: Vec<ArticleId>,
    /// Latent intrinsic merit planted by the synthetic generator;
    /// `None` for articles loaded from real datasets. Used **only** by the
    /// evaluation crate to derive ground truth — no ranking algorithm may
    /// read it.
    pub merit: Option<f64>,
}

/// One author.
#[derive(Debug, Clone, PartialEq)]
pub struct Author {
    /// Dense id; equals the position in the corpus author table.
    pub id: AuthorId,
    /// Display name.
    pub name: String,
}

/// One publication venue (conference or journal).
#[derive(Debug, Clone, PartialEq)]
pub struct Venue {
    /// Dense id; equals the position in the corpus venue table.
    pub id: VenueId,
    /// Display name.
    pub name: String,
}

/// Byline-position weight used when aggregating article scores to authors:
/// harmonic weighting, first author weighted 1, k-th author 1/k, normalized
/// to sum 1 across the byline.
///
/// ```
/// use scholar_corpus::model::author_position_weights;
/// let w = author_position_weights(3);
/// assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// assert!(w[0] > w[1] && w[1] > w[2]);
/// ```
pub fn author_position_weights(num_authors: usize) -> Vec<f64> {
    if num_authors == 0 {
        return Vec::new();
    }
    let mut w: Vec<f64> = (1..=num_authors).map(|k| 1.0 / k as f64).collect();
    let sum: f64 = w.iter().sum();
    for v in &mut w {
        *v /= sum;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_conversions() {
        let a: ArticleId = 3u32.into();
        assert_eq!(a.index(), 3);
        assert_eq!(u32::from(a), 3);
        assert_eq!(a.to_string(), "3");
        assert!(ArticleId(1) < ArticleId(2));
    }

    #[test]
    fn ids_are_distinct_types() {
        // This is a compile-time property; here we just check sizes.
        assert_eq!(std::mem::size_of::<ArticleId>(), 4);
        assert_eq!(std::mem::size_of::<AuthorId>(), 4);
        assert_eq!(std::mem::size_of::<VenueId>(), 4);
    }

    #[test]
    fn position_weights_sum_to_one_and_decay() {
        for n in 1..10 {
            let w = author_position_weights(n);
            assert_eq!(w.len(), n);
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            for pair in w.windows(2) {
                assert!(pair[0] > pair[1]);
            }
        }
        assert!(author_position_weights(0).is_empty());
        assert_eq!(author_position_weights(1), vec![1.0]);
    }

    #[test]
    fn harmonic_ratios() {
        let w = author_position_weights(2);
        assert!((w[0] / w[1] - 2.0).abs() < 1e-12, "first author counts double in a pair");
    }
}
