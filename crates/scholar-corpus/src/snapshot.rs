//! Time-restricted corpus views.
//!
//! The robustness experiment (R-Table 4) ranks articles using only the
//! data available at a cutoff year and compares against the final ranking;
//! the ground-truth builders need the complement (citations arriving
//! *after* the cutoff). [`snapshot_until`] produces the restricted corpus
//! plus the id correspondence.

use crate::corpus::Corpus;
use crate::model::{ArticleId, Year};

/// A corpus restricted to articles published `<= cutoff`, with the id
/// correspondence back to the full corpus.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The restricted corpus. Article ids are renumbered densely; author
    /// and venue tables are kept whole (ids unchanged) so author/venue
    /// scores remain comparable across snapshots.
    pub corpus: Corpus,
    /// `full_of[snap]` = the full-corpus id of snapshot article `snap`.
    pub full_of: Vec<ArticleId>,
    /// `snap_of[full]` = snapshot id of a full-corpus article, or `None`
    /// if it post-dates the cutoff.
    pub snap_of: Vec<Option<ArticleId>>,
    /// The cutoff year used.
    pub cutoff: Year,
}

impl Snapshot {
    /// Map a snapshot article id to the full corpus.
    pub fn to_full(&self, snap: ArticleId) -> ArticleId {
        self.full_of[snap.index()]
    }

    /// Map a full-corpus article id into the snapshot, if present.
    pub fn to_snapshot(&self, full: ArticleId) -> Option<ArticleId> {
        self.snap_of[full.index()]
    }

    /// Scatter snapshot article scores back to full-corpus indexing,
    /// filling post-cutoff articles with `fill`.
    pub fn scatter_scores(&self, snap_scores: &[f64], fill: f64) -> Vec<f64> {
        assert_eq!(snap_scores.len(), self.full_of.len(), "score length mismatch");
        let mut out = vec![fill; self.snap_of.len()];
        for (i, &full) in self.full_of.iter().enumerate() {
            out[full.index()] = snap_scores[i];
        }
        out
    }
}

/// Restrict `corpus` to articles published in or before `cutoff`.
///
/// References to post-cutoff articles are dropped (they cannot occur in
/// chronological data, but loaders tolerate time-travel citations, so the
/// snapshot must too).
pub fn snapshot_until(corpus: &Corpus, cutoff: Year) -> Snapshot {
    let n = corpus.num_articles();
    let mut snap_of: Vec<Option<ArticleId>> = vec![None; n];
    let mut full_of: Vec<ArticleId> = Vec::new();
    for a in corpus.articles() {
        if a.year <= cutoff {
            snap_of[a.id.index()] = Some(ArticleId(full_of.len() as u32));
            full_of.push(a.id);
        }
    }
    let articles = full_of
        .iter()
        .map(|&fid| {
            let a = corpus.article(fid);
            let mut new = a.clone();
            new.id = snap_of[fid.index()].unwrap();
            new.references = a.references.iter().filter_map(|&r| snap_of[r.index()]).collect();
            new
        })
        .collect();
    Snapshot {
        corpus: Corpus::from_parts(articles, corpus.authors().to_vec(), corpus.venues().to_vec()),
        full_of,
        snap_of,
        cutoff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;

    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        let u = b.author("U");
        let a0 = b.add_article("a0", 1990, v, vec![u], vec![], None);
        let a1 = b.add_article("a1", 1995, v, vec![u], vec![a0], None);
        let a2 = b.add_article("a2", 2000, v, vec![u], vec![a0, a1], None);
        b.add_article("a3", 2005, v, vec![u], vec![a2], None);
        b.finish().unwrap()
    }

    #[test]
    fn cutoff_excludes_newer_articles() {
        let c = corpus();
        let s = snapshot_until(&c, 1999);
        assert_eq!(s.corpus.num_articles(), 2);
        assert_eq!(s.cutoff, 1999);
        assert_eq!(s.to_full(ArticleId(1)), ArticleId(1));
        assert_eq!(s.to_snapshot(ArticleId(2)), None);
        assert_eq!(s.to_snapshot(ArticleId(0)), Some(ArticleId(0)));
    }

    #[test]
    fn references_are_remapped_and_filtered() {
        let c = corpus();
        let s = snapshot_until(&c, 2000);
        assert_eq!(s.corpus.num_articles(), 3);
        let a2 = s.corpus.article(ArticleId(2));
        assert_eq!(a2.references, vec![ArticleId(0), ArticleId(1)]);
        // Snapshot corpus passes its own integrity invariants.
        assert!(crate::validate::validate(&s.corpus).is_ok());
    }

    #[test]
    fn authors_and_venues_survive_whole() {
        let c = corpus();
        let s = snapshot_until(&c, 1990);
        assert_eq!(s.corpus.num_authors(), c.num_authors());
        assert_eq!(s.corpus.num_venues(), c.num_venues());
    }

    #[test]
    fn snapshot_of_everything_is_identity() {
        let c = corpus();
        let s = snapshot_until(&c, 3000);
        assert_eq!(s.corpus, c);
        for a in c.articles() {
            assert_eq!(s.to_snapshot(a.id), Some(a.id));
        }
    }

    #[test]
    fn snapshot_before_everything_is_empty() {
        let c = corpus();
        let s = snapshot_until(&c, 1000);
        assert_eq!(s.corpus.num_articles(), 0);
    }

    #[test]
    fn scatter_scores_roundtrip() {
        let c = corpus();
        let s = snapshot_until(&c, 2000);
        let scores = vec![0.5, 0.3, 0.2];
        let full = s.scatter_scores(&scores, 0.0);
        assert_eq!(full, vec![0.5, 0.3, 0.2, 0.0]);
    }

    #[test]
    fn time_travel_citations_are_dropped_by_snapshot() {
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        let future = ArticleId(1);
        b.add_article("old", 1990, v, vec![], vec![future], None);
        b.add_article("new", 2010, v, vec![], vec![], None);
        let c = b.finish().unwrap();
        let s = snapshot_until(&c, 2000);
        assert_eq!(s.corpus.num_articles(), 1);
        assert!(s.corpus.article(ArticleId(0)).references.is_empty());
    }
}
