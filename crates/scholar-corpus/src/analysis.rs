//! Bibliometric corpus analytics beyond raw counts.
//!
//! These are the domain-specific diagnostics a scholarly-search operator
//! monitors: self-citation behavior, venue insularity, and the citation-
//! age profile. They also validate the synthetic generator against the
//! qualitative facts of real corpora (most citations are recent; venues
//! cite themselves heavily; self-citation is common but a minority).

use crate::corpus::Corpus;
use crate::model::author_position_weights;

/// Citation-age distribution: `histogram[d]` = number of citations whose
/// citing and cited articles are `d` years apart (time-travel citations
/// count at age 0).
pub fn citation_age_histogram(corpus: &Corpus) -> Vec<usize> {
    let mut hist = Vec::new();
    for a in corpus.articles() {
        for &r in &a.references {
            let age = (a.year - corpus.article(r).year).max(0) as usize;
            if age >= hist.len() {
                hist.resize(age + 1, 0);
            }
            hist[age] += 1;
        }
    }
    hist
}

/// Mean citation age in years (`None` for citation-free corpora).
pub fn mean_citation_age(corpus: &Corpus) -> Option<f64> {
    let hist = citation_age_histogram(corpus);
    let total: usize = hist.iter().sum();
    if total == 0 {
        return None;
    }
    let weighted: usize = hist.iter().enumerate().map(|(age, &n)| age * n).sum();
    Some(weighted as f64 / total as f64)
}

/// Fraction of citations that are author self-citations (citing and cited
/// articles share at least one author). `None` for citation-free corpora.
pub fn self_citation_rate(corpus: &Corpus) -> Option<f64> {
    let mut total = 0usize;
    let mut selfy = 0usize;
    for a in corpus.articles() {
        for &r in &a.references {
            total += 1;
            let cited = corpus.article(r);
            if a.authors.iter().any(|u| cited.authors.contains(u)) {
                selfy += 1;
            }
        }
    }
    if total == 0 {
        None
    } else {
        Some(selfy as f64 / total as f64)
    }
}

/// Venue insularity: per venue, the fraction of its articles' outgoing
/// citations that stay within the venue (0 for venues that cite nothing).
pub fn venue_insularity(corpus: &Corpus) -> Vec<f64> {
    let mut total = vec![0usize; corpus.num_venues()];
    let mut intra = vec![0usize; corpus.num_venues()];
    for a in corpus.articles() {
        for &r in &a.references {
            total[a.venue.index()] += 1;
            if corpus.article(r).venue == a.venue {
                intra[a.venue.index()] += 1;
            }
        }
    }
    intra.iter().zip(&total).map(|(&i, &t)| if t > 0 { i as f64 / t as f64 } else { 0.0 }).collect()
}

/// Per-author h-index computed from within-corpus citations.
pub fn h_index(corpus: &Corpus) -> Vec<u32> {
    let counts = corpus.citation_counts();
    corpus
        .articles_by_author()
        .into_iter()
        .map(|articles| {
            let mut cs: Vec<u32> = articles.iter().map(|&a| counts[a.index()]).collect();
            cs.sort_unstable_by(|a, b| b.cmp(a));
            let mut h = 0u32;
            for (i, &c) in cs.iter().enumerate() {
                if c as usize > i {
                    h = (i + 1) as u32;
                } else {
                    break;
                }
            }
            h
        })
        .collect()
}

/// Byline-position-weighted productivity per author (fractional article
/// counts: an author's credit for a paper is their harmonic byline
/// weight).
pub fn fractional_productivity(corpus: &Corpus) -> Vec<f64> {
    let mut credit = vec![0.0f64; corpus.num_authors()];
    for a in corpus.articles() {
        let w = author_position_weights(a.authors.len());
        for (&u, &pw) in a.authors.iter().zip(&w) {
            credit[u.index()] += pw;
        }
    }
    credit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;
    use crate::generator::Preset;

    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        let v0 = b.venue("v0");
        let v1 = b.venue("v1");
        let ada = b.author("Ada");
        let bob = b.author("Bob");
        let a0 = b.add_article("a0", 1990, v0, vec![ada], vec![], None);
        let a1 = b.add_article("a1", 1995, v0, vec![ada, bob], vec![a0], None);
        let a2 = b.add_article("a2", 2000, v1, vec![bob], vec![a0, a1], None);
        b.add_article("a3", 2002, v1, vec![], vec![a2], None);
        b.finish().unwrap()
    }

    #[test]
    fn citation_ages() {
        let c = corpus();
        // Ages: a1->a0 = 5; a2->a0 = 10; a2->a1 = 5; a3->a2 = 2.
        let hist = citation_age_histogram(&c);
        assert_eq!(hist[5], 2);
        assert_eq!(hist[10], 1);
        assert_eq!(hist[2], 1);
        assert!((mean_citation_age(&c).unwrap() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn self_citations() {
        let c = corpus();
        // a1 (Ada,Bob) cites a0 (Ada): self. a2 (Bob) cites a0 (Ada): no.
        // a2 (Bob) cites a1 (Ada,Bob): self. a3 () cites a2: no.
        assert!((self_citation_rate(&c).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn insularity() {
        let c = corpus();
        // v0: a1 cites a0 (v0): 1/1 intra. v1: a2 cites a0,a1 (v0) and a3
        // cites a2 (v1): 1/3 intra.
        let ins = venue_insularity(&c);
        assert!((ins[0] - 1.0).abs() < 1e-12);
        assert!((ins[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn h_index_basics() {
        let c = corpus();
        // Citation counts: a0=2, a1=1, a2=1, a3=0.
        // Ada: articles a0(2), a1(1) -> h = 1? sorted [2,1]: i=0 c=2>0 h=1;
        // i=1 c=1 !> 1? 1 > 1 false -> stop. Hmm h=1... Actually h=1 means
        // 1 paper with >=1 citations; with [2,1] h should be... paper1 has
        // 2>=1, paper2 has 1>=2? no. So h=1? No: h-index of [2,1] is 1?
        // Classic definition: largest h with h papers having >= h cites.
        // h=2 needs 2 papers with >=2: [2,1] fails. h=1 works. Yes, 1.
        let h = h_index(&c);
        assert_eq!(h[0], 1, "Ada");
        // Bob: a1(1), a2(1): h=1.
        assert_eq!(h[1], 1, "Bob");
    }

    #[test]
    fn h_index_larger_case() {
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        let star = b.author("Star");
        // Three articles by Star, cited 3, 2, 2 times.
        let mut stars = Vec::new();
        for i in 0..3 {
            stars.push(b.add_article(&format!("s{i}"), 1990 + i, v, vec![star], vec![], None));
        }
        let citers = vec![(stars[0], 3), (stars[1], 2), (stars[2], 2)];
        let mut year = 2000;
        for (target, count) in citers {
            for _ in 0..count {
                b.add_article("c", year, v, vec![], vec![target], None);
                year += 1;
            }
        }
        let c = b.finish().unwrap();
        // [3,2,2]: h=2 (two papers with >=2 citations; not 3 with >=3).
        assert_eq!(h_index(&c)[0], 2);
    }

    #[test]
    fn fractional_credit_sums_to_article_count() {
        let c = corpus();
        let credit = fractional_productivity(&c);
        // Total credit = number of articles with at least one author.
        let authored = c.articles().iter().filter(|a| !a.authors.is_empty()).count();
        assert!((credit.iter().sum::<f64>() - authored as f64).abs() < 1e-9);
        // Ada: 1.0 (solo a0) + 2/3 (first of a1) = 5/3.
        assert!((credit[0] - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn generator_matches_qualitative_facts() {
        let c = Preset::Tiny.generate(44);
        let mean_age = mean_citation_age(&c).unwrap();
        assert!(mean_age > 1.0 && mean_age < 15.0, "mean citation age {mean_age}");
        let self_rate = self_citation_rate(&c).unwrap();
        assert!(self_rate < 0.5, "self-citation should be a minority, got {self_rate}");
        let ins = venue_insularity(&c);
        assert!(ins.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn empty_corpus() {
        let c = CorpusBuilder::new().finish().unwrap();
        assert!(mean_citation_age(&c).is_none());
        assert!(self_citation_rate(&c).is_none());
        assert!(citation_age_histogram(&c).is_empty());
        assert!(h_index(&c).is_empty());
    }
}
