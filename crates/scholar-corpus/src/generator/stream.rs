//! Streaming MAG-scale corpus synthesis.
//!
//! The regular [`CorpusGenerator`](super::CorpusGenerator) builds a full
//! in-RAM [`Corpus`](crate::Corpus) and keeps per-article citation
//! tallies, which is exactly what an out-of-core pipeline must not do.
//! This module generates the `mag-scale` preset — tens of millions of
//! articles — straight into a [`ColWriter`](crate::colstore::ColWriter),
//! holding only O(bounded) sampling state:
//!
//! * **Chronology**: years 1970–2020 with exponential per-year growth,
//!   so article ids are nondecreasing in time and every reference points
//!   strictly backwards (the colstore's DAG discipline for free).
//! * **Preferential attachment** via a fixed-size *citation ticket ring*:
//!   every emitted citation pushes its target into a bounded ring
//!   buffer, and PA-flavored references sample uniformly from the ring —
//!   rich-get-richer without per-article in-degree arrays.
//! * **Recency** references sample an exponential-ish lookback window,
//!   and a uniform tail keeps the graph connected across decades.
//! * **Zipf venues** by inverse-CDF over precomputed cumulative weights.
//! * **Skewed authorship** with O(1) memory: author ids are drawn with
//!   a quadratic low-id bias (`⌊A·u²⌋`), a cheap stand-in for Lotka-style
//!   productivity that needs no ticket urn.
//!
//! Determinism: one [`SmallRng`] stream seeded by the caller drives
//! everything, so equal `(articles, seed)` inputs produce byte-identical
//! stores (and therefore identical generation stamps).

use std::path::Path;

use srand::{rngs::SmallRng, Rng, SeedableRng};

use crate::colstore::ColWriter;
use crate::Result;

/// Entity counts produced by a streaming generation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Articles written.
    pub articles: usize,
    /// Citation edges written.
    pub citations: u64,
    /// Distinct authors.
    pub authors: usize,
    /// Distinct venues.
    pub venues: usize,
    /// The store's content-derived generation stamp.
    pub generation: u64,
}

const START_YEAR: i32 = 1970;
const END_YEAR: i32 = 2020;
const GROWTH_RATE: f64 = 1.09;
const MEAN_REFERENCES: f64 = 8.0;
const MAX_REFERENCES: usize = 48;
const RECENCY_YEARS_SCALE: f64 = 0.35;
/// Bounded rich-get-richer memory: recently-cited article ids.
const TICKET_RING: usize = 1 << 20;

/// Stream a `mag-scale` synthetic corpus of `num_articles` articles
/// into a colstore at `dir`. Memory use is O([`TICKET_RING`]) regardless
/// of corpus size.
pub fn generate_mag_scale(dir: &Path, num_articles: usize, seed: u64) -> Result<StreamStats> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6d61675f7363616c); // "mag_scal"
    let mut writer = ColWriter::create(dir)?;

    // Exponential growth schedule: cumulative article counts per year,
    // scaled to hit num_articles exactly; year(i) by binary search.
    let num_years = (END_YEAR - START_YEAR + 1) as usize;
    let mut weights = Vec::with_capacity(num_years);
    let mut w = 1.0f64;
    for _ in 0..num_years {
        weights.push(w);
        w *= GROWTH_RATE;
    }
    let total: f64 = weights.iter().sum();
    let mut cum = Vec::with_capacity(num_years);
    let mut acc = 0.0;
    for w in &weights {
        acc += w;
        cum.push(((acc / total) * num_articles as f64).round() as usize);
    }
    *cum.last_mut().expect("at least one year") = num_articles;
    let year_of = |i: usize| -> i32 {
        let idx = cum.partition_point(|&c| c <= i);
        START_YEAR + idx as i32
    };

    // Zipf venue prestige, sampled by inverse CDF over the cumulative
    // weight table.
    let num_venues = (num_articles / 2_000).clamp(8, 20_000);
    let mut venue_cum = Vec::with_capacity(num_venues);
    let mut vacc = 0.0;
    for v in 0..num_venues {
        vacc += 1.0 / (v as f64 + 1.0).powf(1.1);
        venue_cum.push(vacc);
    }
    let venue_total = vacc;

    let num_authors = (num_articles / 2).max(1);

    let mut ring: Vec<u32> = Vec::with_capacity(TICKET_RING);
    let mut ring_next = 0usize;
    let mut authors_scratch: Vec<u32> = Vec::with_capacity(8);
    let mut refs_scratch: Vec<u32> = Vec::with_capacity(MAX_REFERENCES);
    let mut citations = 0u64;

    for i in 0..num_articles {
        let year = year_of(i);

        // Venue: inverse-CDF Zipf.
        let r = rng.gen::<f64>() * venue_total;
        let venue = venue_cum.partition_point(|&c| c < r).min(num_venues - 1) as u32;

        // Byline: 1–5 authors, quadratically biased toward low ids
        // (prolific authors), deduplicated preserving byline order.
        let team = 1 + (rng.gen::<f64>() * 4.0 * rng.gen::<f64>()) as usize;
        authors_scratch.clear();
        for _ in 0..team {
            let u = rng.gen::<f64>();
            let a = ((num_authors as f64) * u * u) as usize;
            let a = a.min(num_authors - 1) as u32;
            if !authors_scratch.contains(&a) {
                authors_scratch.push(a);
            }
        }

        // References: geometric-ish count around MEAN_REFERENCES, then a
        // PA / recency / uniform candidate mix, sorted + deduplicated.
        refs_scratch.clear();
        if i > 0 {
            let mut want = 0usize;
            while want < MAX_REFERENCES
                && rng.gen::<f64>() < MEAN_REFERENCES / (MEAN_REFERENCES + 1.0)
            {
                want += 1;
            }
            for _ in 0..want {
                let pick = rng.gen::<f64>();
                let cand = if pick < 0.5 && !ring.is_empty() {
                    // Preferential attachment from the citation ring.
                    ring[rng.gen_range(0..ring.len())]
                } else if pick < 0.85 {
                    // Recency: exponential-ish lookback from i.
                    let u = rng.gen::<f64>();
                    let span = ((i as f64) * RECENCY_YEARS_SCALE).max(1.0);
                    let back = (-u.max(1e-12).ln() * span * 0.2) as usize;
                    i.saturating_sub(1 + back.min(i - 1)) as u32
                } else {
                    rng.gen_range(0..i as u64) as u32
                };
                if (cand as usize) < i {
                    refs_scratch.push(cand);
                }
            }
            refs_scratch.sort_unstable();
            refs_scratch.dedup();
        }

        for &r in &refs_scratch {
            if ring.len() < TICKET_RING {
                ring.push(r);
            } else {
                ring[ring_next] = r;
                ring_next = (ring_next + 1) % TICKET_RING;
            }
        }
        citations += refs_scratch.len() as u64;

        writer.push(year, venue, &authors_scratch, &refs_scratch)?;
    }

    let generation = writer.finish(num_authors as u64, num_venues as u64)?;
    Ok(StreamStats {
        articles: num_articles,
        citations,
        authors: num_authors,
        venues: num_venues,
        generation,
    })
}

#[cfg(all(test, not(miri)))]
mod tests {
    use super::*;
    use crate::colstore::ColStore;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("magscale-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn deterministic_and_well_formed() {
        let (d1, d2) = (tmpdir("det1"), tmpdir("det2"));
        let s1 = generate_mag_scale(&d1, 5_000, 42).unwrap();
        let s2 = generate_mag_scale(&d2, 5_000, 42).unwrap();
        assert_eq!(s1, s2, "same (articles, seed) must produce identical stores");

        let store = ColStore::open(&d1).unwrap();
        store.verify().unwrap();
        assert_eq!(store.num_articles(), 5_000);
        assert_eq!(store.num_citations(), s1.citations);
        assert!(s1.citations > 5_000, "mean reference count should exceed 1");
        let (lo, hi) = store.year_range().unwrap();
        assert_eq!(lo, START_YEAR);
        assert_eq!(hi, END_YEAR);
        // Chronology: years nondecreasing in id order.
        let years = store.years();
        assert!(years.windows(2).all(|w| w[0] <= w[1]));
        // The materialized corpus passes full referential validation.
        let corpus = store.materialize().unwrap();
        crate::validate::validate(&corpus).unwrap();
        for d in [d1, d2] {
            std::fs::remove_dir_all(&d).unwrap();
        }
    }

    #[test]
    fn different_seeds_differ() {
        let (d1, d2) = (tmpdir("seed1"), tmpdir("seed2"));
        let s1 = generate_mag_scale(&d1, 2_000, 1).unwrap();
        let s2 = generate_mag_scale(&d2, 2_000, 2).unwrap();
        assert_ne!(s1.generation, s2.generation);
        for d in [d1, d2] {
            std::fs::remove_dir_all(&d).unwrap();
        }
    }
}
