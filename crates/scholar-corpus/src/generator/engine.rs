//! The chronological corpus-generation engine.

use super::config::GeneratorConfig;
use crate::corpus::{Corpus, CorpusBuilder};
use crate::model::{ArticleId, AuthorId, VenueId, Year};
use srand::rngs::SmallRng;
use srand::{Rng, SeedableRng};

/// Runs the generative process described in [`crate::generator`].
///
/// ```
/// use scholar_corpus::{CorpusGenerator, GeneratorConfig};
/// let corpus = CorpusGenerator::new(GeneratorConfig::default()).generate();
/// assert!(corpus.num_articles() > 500);
/// // Deterministic given the seed:
/// let again = CorpusGenerator::new(GeneratorConfig::default()).generate();
/// assert_eq!(corpus.num_articles(), again.num_articles());
/// ```
#[derive(Debug)]
pub struct CorpusGenerator {
    cfg: GeneratorConfig,
    rng: SmallRng,
}

/// Per-article working state kept outside the builder.
struct ArticleState {
    year: Year,
    merit: f64,
    in_degree: u32,
}

impl CorpusGenerator {
    /// Create a generator; panics if the configuration is invalid.
    pub fn new(cfg: GeneratorConfig) -> Self {
        cfg.assert_valid();
        let rng = SmallRng::seed_from_u64(cfg.seed);
        CorpusGenerator { cfg, rng }
    }

    /// Run the process and return the corpus.
    pub fn generate(mut self) -> Corpus {
        let cfg = self.cfg.clone();
        let mut builder = CorpusBuilder::new();

        // ---- Venues: Zipf prestige, normalized selectivity in [0, 1]. ----
        let venue_prestige: Vec<f64> = (0..cfg.num_venues)
            .map(|k| 1.0 / ((k + 1) as f64).powf(cfg.venue_zipf_exponent))
            .collect();
        let max_prestige = venue_prestige[0];
        let selectivity: Vec<f64> = venue_prestige.iter().map(|&p| p / max_prestige).collect();
        let venue_ids: Vec<VenueId> =
            (0..cfg.num_venues).map(|k| builder.venue(&format!("Venue-{k:04}"))).collect();

        // ---- Author pool (grows lazily). ----
        let mut author_ability: Vec<f64> = Vec::new();
        let mut author_pubs: Vec<u32> = Vec::new();
        let mut author_ids: Vec<AuthorId> = Vec::new();

        // ---- Article working state. ----
        let mut articles: Vec<ArticleState> = Vec::new();

        // Citation-kernel weights, recomputed once per year.
        let mut cum_weights: Vec<f64> = Vec::new();

        for year in cfg.start_year..=cfg.end_year {
            // Poisson-distributed yearly output around the schedule.
            let expected = cfg.expected_articles_in(year);
            let count = self.poisson(expected).max(1);

            // Recompute the citation kernel over all *existing* articles.
            cum_weights.clear();
            cum_weights.reserve(articles.len());
            let mut acc = 0.0f64;
            for st in &articles {
                let age = (year - st.year) as f64;
                let w = (st.in_degree as f64 + 1.0).powf(cfg.pa_strength)
                    * st.merit.powf(cfg.merit_strength)
                    * (-age / cfg.recency_tau).exp();
                acc += w;
                cum_weights.push(acc);
            }
            let total_weight = acc;

            for _ in 0..count {
                // ---- Team. ----
                let team_size = self.team_size();
                let mut team: Vec<AuthorId> = Vec::with_capacity(team_size);
                let mut ability_sum = 0.0;
                for _ in 0..team_size {
                    let idx = if author_ability.is_empty()
                        || self.rng.gen::<f64>() < cfg.new_author_prob
                    {
                        let k = author_ability.len();
                        author_ability.push(self.lognormal(0.0, cfg.author_ability_sigma));
                        author_pubs.push(0);
                        author_ids.push(builder.author(&format!("Author-{k:06}")));
                        k
                    } else {
                        self.pick_author(&author_pubs)
                    };
                    if !team.contains(&author_ids[idx]) {
                        team.push(author_ids[idx]);
                        ability_sum += author_ability[idx];
                    }
                }
                for &a in &team {
                    author_pubs[a.index()] += 1;
                }
                let mean_ability = ability_sum / team.len() as f64;

                // ---- Merit. ----
                let base_merit = self.lognormal(cfg.merit_mu, cfg.merit_sigma)
                    * mean_ability.powf(cfg.author_merit_coupling);

                // ---- Venue: prestige raised to a merit-dependent power. ----
                // The article's standing within the merit distribution is
                // known analytically for the log-normal base (before the
                // ability boost we use the combined value's log directly).
                let merit_z =
                    ((base_merit.ln() - cfg.merit_mu) / cfg.merit_sigma.max(1e-9)).clamp(-3.0, 3.0);
                let percentile = 0.5 * (1.0 + erf(merit_z / std::f64::consts::SQRT_2));
                let exponent = 1.0 + cfg.venue_merit_coupling * percentile;
                let venue_idx = self.pick_venue(&venue_prestige, exponent);
                let venue = venue_ids[venue_idx];
                let merit = base_merit * (1.0 + cfg.venue_merit_boost * selectivity[venue_idx]);

                // ---- References (strictly older articles). ----
                let refs = self.pick_references(
                    &cum_weights,
                    total_weight,
                    articles.len(),
                    cfg.mean_references,
                    cfg.max_references,
                );
                for &r in &refs {
                    articles[r.index()].in_degree += 1;
                }

                let id = builder.add_article(
                    &format!("Article #{:06} ({year})", articles.len()),
                    year,
                    venue,
                    team,
                    refs,
                    Some(merit),
                );
                debug_assert_eq!(id.index(), articles.len());
                articles.push(ArticleState { year, merit, in_degree: 0 });
            }
        }

        builder.finish().expect("generator produced an inconsistent corpus")
    }

    /// Poisson sample via Knuth's method (fine for the λ ranges used here)
    /// with a normal approximation above λ = 64.
    fn poisson(&mut self, lambda: f64) -> usize {
        if lambda <= 0.0 {
            return 0;
        }
        if lambda > 64.0 {
            // Normal approximation with continuity correction.
            let z = self.standard_normal();
            return (lambda + lambda.sqrt() * z).round().max(0.0) as usize;
        }
        let l = (-lambda).exp();
        let mut k = 0usize;
        let mut p = 1.0;
        loop {
            p *= self.rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Shifted-geometric team size with the configured mean, capped.
    fn team_size(&mut self) -> usize {
        let mean = self.cfg.mean_team_size;
        if mean <= 1.0 {
            return 1;
        }
        // Geometric on {1, 2, ...} with success prob 1/mean has mean `mean`.
        let p = 1.0 / mean;
        let mut k = 1usize;
        while k < self.cfg.max_team_size && self.rng.gen::<f64>() >= p {
            k += 1;
        }
        k
    }

    /// Existing author ∝ publications + 1 (Lotka-style rich-get-richer).
    fn pick_author(&mut self, pubs: &[u32]) -> usize {
        let total: u64 = pubs.iter().map(|&p| p as u64 + 1).sum();
        let mut target = self.rng.gen_range(0..total);
        for (i, &p) in pubs.iter().enumerate() {
            let w = p as u64 + 1;
            if target < w {
                return i;
            }
            target -= w;
        }
        pubs.len() - 1
    }

    /// Venue ∝ prestige^exponent.
    fn pick_venue(&mut self, prestige: &[f64], exponent: f64) -> usize {
        let weights: Vec<f64> = prestige.iter().map(|&p| p.powf(exponent)).collect();
        let total: f64 = weights.iter().sum();
        let mut target = self.rng.gen::<f64>() * total;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Sample a reference list from the cumulative citation kernel.
    fn pick_references(
        &mut self,
        cum_weights: &[f64],
        total_weight: f64,
        num_existing: usize,
        mean_refs: f64,
        max_refs: usize,
    ) -> Vec<ArticleId> {
        if num_existing == 0 || total_weight <= 0.0 {
            return Vec::new();
        }
        let want = self.poisson(mean_refs).min(max_refs).min(num_existing);
        let mut refs: Vec<ArticleId> = Vec::with_capacity(want);
        // Rejection on duplicates; cap attempts to stay O(want) expected.
        let mut attempts = 0usize;
        while refs.len() < want && attempts < want * 8 + 16 {
            attempts += 1;
            let target = self.rng.gen::<f64>() * total_weight;
            let idx = cum_weights.partition_point(|&c| c <= target).min(num_existing - 1);
            let id = ArticleId(idx as u32);
            if !refs.contains(&id) {
                refs.push(id);
            }
        }
        refs
    }

    fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Box–Muller standard normal.
    fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Abramowitz–Stegun rational approximation of erf (|error| < 1.5e-7),
/// plenty for mapping merit to a venue-choice percentile.
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::Preset;
    use crate::validate::validate;

    fn small() -> Corpus {
        CorpusGenerator::new(GeneratorConfig::default()).generate()
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small();
        let b = small();
        assert_eq!(a, b);
        let c = CorpusGenerator::new(GeneratorConfig { seed: 7, ..Default::default() }).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn output_is_valid_and_chronological() {
        let c = small();
        validate(&c).unwrap();
        for a in c.articles() {
            for &r in &a.references {
                assert!(
                    c.article(r).year < a.year,
                    "generated citation must point strictly backwards in time"
                );
            }
        }
        // Chronological process ⇒ DAG.
        assert!(!sgraph::traversal::is_cyclic(&c.citation_graph()));
    }

    #[test]
    fn scale_matches_schedule() {
        let c = small();
        let expected = GeneratorConfig::default().expected_total_articles();
        let n = c.num_articles() as f64;
        assert!(
            (n - expected).abs() < expected * 0.2,
            "generated {n} articles, expected ~{expected}"
        );
    }

    #[test]
    fn merit_is_planted_and_positive() {
        let c = small();
        for a in c.articles() {
            let m = a.merit.expect("generator must plant merit");
            assert!(m > 0.0 && m.is_finite());
        }
    }

    #[test]
    fn citations_correlate_with_merit() {
        // The whole evaluation design rests on this: articles with higher
        // planted merit accrue more citations. Check rank correlation on
        // the older half (which had time to accrue).
        let c = small();
        let counts = c.citation_counts();
        let (lo, hi) = c.year_range().unwrap();
        let mid = (lo + hi) / 2;
        let mut pairs: Vec<(f64, u32)> = c
            .articles()
            .iter()
            .filter(|a| a.year <= mid)
            .map(|a| (a.merit.unwrap(), counts[a.id.index()]))
            .collect();
        assert!(pairs.len() > 100);
        // Split by merit median; compare mean citations.
        pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
        let half = pairs.len() / 2;
        let low_mean: f64 = pairs[..half].iter().map(|p| p.1 as f64).sum::<f64>() / half as f64;
        let high_mean: f64 =
            pairs[half..].iter().map(|p| p.1 as f64).sum::<f64>() / (pairs.len() - half) as f64;
        assert!(
            high_mean > 1.5 * low_mean,
            "high-merit articles should be cited clearly more ({high_mean:.2} vs {low_mean:.2})"
        );
    }

    #[test]
    fn venue_prestige_correlates_with_merit() {
        let c = small();
        // Venue 0 is the most prestigious; its mean article merit should
        // exceed the mean of the bottom half of venues.
        let by_venue = c.articles_by_venue();
        let mean_merit = |ids: &[ArticleId]| -> f64 {
            if ids.is_empty() {
                return 0.0;
            }
            ids.iter().map(|&i| c.article(i).merit.unwrap()).sum::<f64>() / ids.len() as f64
        };
        let top = mean_merit(&by_venue[0]);
        let tail_ids: Vec<ArticleId> =
            by_venue[by_venue.len() / 2..].iter().flatten().copied().collect();
        let tail = mean_merit(&tail_ids);
        assert!(
            top > tail,
            "prestigious venue should host higher-merit articles ({top:.3} vs {tail:.3})"
        );
    }

    #[test]
    fn citation_counts_are_heavy_tailed() {
        let c = CorpusGenerator::new(GeneratorConfig {
            initial_articles_per_year: 150.0,
            ..Default::default()
        })
        .generate();
        let g = c.citation_graph();
        let stats = sgraph::stats::in_degree_stats(&g);
        assert!(
            stats.gini > 0.5,
            "citation distribution should be concentrated, gini = {}",
            stats.gini
        );
        assert!(stats.max as f64 > 10.0 * stats.mean.max(0.5));
    }

    #[test]
    fn references_prefer_recent_articles() {
        let c = small();
        // Mean citation age should be within a few multiples of the kernel
        // time constant, far below the corpus age span.
        let mut total_age = 0f64;
        let mut count = 0usize;
        for a in c.articles() {
            for &r in &a.references {
                total_age += (a.year - c.article(r).year) as f64;
                count += 1;
            }
        }
        let mean_age = total_age / count as f64;
        let cfg = GeneratorConfig::default();
        assert!(
            mean_age < 3.0 * cfg.recency_tau,
            "mean citation age {mean_age:.1} should reflect the recency kernel"
        );
    }

    #[test]
    fn tiny_preset_is_fast_and_valid() {
        let c = Preset::Tiny.generate(1);
        validate(&c).unwrap();
        assert!(c.num_articles() > 300, "tiny preset too small: {}", c.num_articles());
        assert!(c.num_articles() < 3000);
    }

    #[test]
    fn no_duplicate_references() {
        let c = small();
        for a in c.articles() {
            let mut sorted = a.references.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), a.references.len());
        }
    }

    #[test]
    fn erf_sanity() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007).abs() < 1e-5);
        assert!((erf(-1.0) + 0.8427007).abs() < 1e-5);
        assert!(erf(5.0) > 0.99999);
    }

    #[test]
    fn zero_mean_references_gives_no_citations() {
        let c = CorpusGenerator::new(GeneratorConfig {
            mean_references: 0.0,
            initial_articles_per_year: 10.0,
            end_year: 1995,
            ..Default::default()
        })
        .generate();
        assert_eq!(c.num_citations(), 0);
    }
}
