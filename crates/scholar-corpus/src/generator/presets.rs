//! Dataset-scale generator presets.
//!
//! Each preset is calibrated to the corpus-level statistics published for
//! the real dataset it substitutes (article count, citation density, year
//! span, venue/author pool size). Absolute sizes for the larger presets
//! are scaled down ~5-10× so the full evaluation suite runs on one
//! machine; the structural exponents (citation tail, recency kernel,
//! venue skew) are kept, which is what the algorithms actually see.

use super::config::GeneratorConfig;
use super::engine::CorpusGenerator;
use crate::corpus::Corpus;

/// Named dataset-scale configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preset {
    /// ~700 articles — fast unit-test corpus.
    Tiny,
    /// AAN-like: ~17k articles, ~100k citations, 1980–2010, ~30 venues.
    /// (ACL Anthology Network: 21k articles / 110k citations.)
    AanLike,
    /// DBLP-like: ~90k articles, ~700k citations, 1970–2015, ~1200 venues.
    /// (Scaled ~10× down from the ArnetMiner DBLP citation dump.)
    DblpLike,
    /// MAG-like: ~145k articles, ~1.4M citations, 1950–2015, ~4000 venues.
    /// (Scaled far down from Microsoft Academic Graph; used for the
    /// scalability experiments.)
    MagLike,
}

impl Preset {
    /// The configuration behind this preset (with the given seed).
    pub fn config(self, seed: u64) -> GeneratorConfig {
        match self {
            Preset::Tiny => GeneratorConfig {
                seed,
                start_year: 1995,
                end_year: 2010,
                initial_articles_per_year: 30.0,
                growth_rate: 0.05,
                num_venues: 10,
                mean_references: 5.0,
                ..Default::default()
            },
            Preset::AanLike => GeneratorConfig {
                seed,
                start_year: 1980,
                end_year: 2010,
                initial_articles_per_year: 200.0,
                growth_rate: 0.06,
                num_venues: 30,
                venue_zipf_exponent: 0.9,
                mean_references: 6.0,
                max_references: 50,
                recency_tau: 6.0,
                mean_team_size: 2.2,
                ..Default::default()
            },
            Preset::DblpLike => GeneratorConfig {
                seed,
                start_year: 1970,
                end_year: 2015,
                initial_articles_per_year: 400.0,
                growth_rate: 0.06,
                num_venues: 1200,
                venue_zipf_exponent: 1.05,
                mean_references: 8.0,
                max_references: 60,
                recency_tau: 7.0,
                mean_team_size: 2.6,
                new_author_prob: 0.35,
                ..Default::default()
            },
            Preset::MagLike => GeneratorConfig {
                seed,
                start_year: 1950,
                end_year: 2015,
                initial_articles_per_year: 300.0,
                growth_rate: 0.05,
                num_venues: 4000,
                venue_zipf_exponent: 1.1,
                mean_references: 10.0,
                max_references: 80,
                recency_tau: 8.0,
                mean_team_size: 3.0,
                new_author_prob: 0.4,
                ..Default::default()
            },
        }
    }

    /// Generate the corpus for this preset.
    pub fn generate(self, seed: u64) -> Corpus {
        CorpusGenerator::new(self.config(seed)).generate()
    }

    /// Short display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Preset::Tiny => "Tiny",
            Preset::AanLike => "AAN-like",
            Preset::DblpLike => "DBLP-like",
            Preset::MagLike => "MAG-like",
        }
    }

    /// The three dataset-scale presets used in the evaluation tables.
    pub fn evaluation_suite() -> [Preset; 3] {
        [Preset::AanLike, Preset::DblpLike, Preset::MagLike]
    }
}

impl std::fmt::Display for Preset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_have_valid_configs() {
        for p in [Preset::Tiny, Preset::AanLike, Preset::DblpLike, Preset::MagLike] {
            p.config(1).assert_valid();
            assert!(!p.name().is_empty());
            assert_eq!(p.to_string(), p.name());
        }
    }

    #[test]
    fn aan_like_scale() {
        let cfg = Preset::AanLike.config(1);
        let total = cfg.expected_total_articles();
        assert!((12_000.0..25_000.0).contains(&total), "AAN-like total {total}");
    }

    #[test]
    fn preset_sizes_are_ordered() {
        let t = Preset::Tiny.config(1).expected_total_articles();
        let a = Preset::AanLike.config(1).expected_total_articles();
        let d = Preset::DblpLike.config(1).expected_total_articles();
        let m = Preset::MagLike.config(1).expected_total_articles();
        assert!(t < a && a < d && d < m);
    }

    #[test]
    fn evaluation_suite_names() {
        let names: Vec<&str> = Preset::evaluation_suite().iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["AAN-like", "DBLP-like", "MAG-like"]);
    }
}
