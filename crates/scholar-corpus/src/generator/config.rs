//! Generator configuration.

use crate::model::Year;

/// All knobs of the synthetic corpus process. Defaults produce a small
/// (~2k article) corpus suitable for unit tests; use
/// [`crate::generator::Preset`] for the dataset-scale configurations.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// RNG seed; equal seeds produce identical corpora.
    pub seed: u64,
    /// First publication year.
    pub start_year: Year,
    /// Last publication year (inclusive).
    pub end_year: Year,
    /// Expected number of articles in the first year.
    pub initial_articles_per_year: f64,
    /// Exponential growth of yearly output: year `t` produces
    /// `initial · (1 + growth_rate)^(t − start)` articles.
    pub growth_rate: f64,

    /// Number of venues.
    pub num_venues: u32,
    /// Venue prestige follows Zipf: prestige of the k-th venue ∝
    /// `1 / k^venue_zipf_exponent`.
    pub venue_zipf_exponent: f64,
    /// How strongly high-merit articles concentrate in high-prestige
    /// venues (0 = venue choice independent of merit).
    pub venue_merit_coupling: f64,
    /// Multiplicative merit boost from venue prestige: final merit is
    /// `base · (1 + venue_merit_boost · selectivity)` where selectivity ∈
    /// [0, 1] is the venue's normalized prestige.
    pub venue_merit_boost: f64,

    /// Mean reference-list length (Poisson).
    pub mean_references: f64,
    /// Hard cap on reference-list length.
    pub max_references: usize,
    /// Preferential-attachment exponent on `(indeg + 1)`.
    pub pa_strength: f64,
    /// Exponent on cited-article merit in the citation kernel.
    pub merit_strength: f64,
    /// Time constant (years) of the exponential recency kernel
    /// `exp(-age / recency_tau)` in the citation kernel.
    pub recency_tau: f64,

    /// Log-mean of the base-merit log-normal.
    pub merit_mu: f64,
    /// Log-std of the base-merit log-normal.
    pub merit_sigma: f64,
    /// Exponent coupling mean team ability into article merit.
    pub author_merit_coupling: f64,
    /// Log-std of the per-author ability log-normal (log-mean 0).
    pub author_ability_sigma: f64,

    /// Mean team size (shifted-geometric; always >= 1).
    pub mean_team_size: f64,
    /// Hard cap on team size.
    pub max_team_size: usize,
    /// Probability that a byline slot is filled by a brand-new author
    /// (otherwise an existing author is drawn ∝ publications + 1).
    pub new_author_prob: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 42,
            start_year: 1990,
            end_year: 2010,
            initial_articles_per_year: 60.0,
            growth_rate: 0.05,
            num_venues: 25,
            venue_zipf_exponent: 1.0,
            venue_merit_coupling: 2.0,
            venue_merit_boost: 0.8,
            mean_references: 6.0,
            max_references: 40,
            pa_strength: 0.9,
            merit_strength: 1.0,
            recency_tau: 6.0,
            merit_mu: 0.0,
            merit_sigma: 0.8,
            author_merit_coupling: 0.6,
            author_ability_sigma: 0.6,
            mean_team_size: 2.4,
            max_team_size: 8,
            new_author_prob: 0.3,
        }
    }
}

impl GeneratorConfig {
    /// Expected article count in `year` under the growth schedule.
    pub fn expected_articles_in(&self, year: Year) -> f64 {
        let t = (year - self.start_year) as f64;
        self.initial_articles_per_year * (1.0 + self.growth_rate).powf(t)
    }

    /// Rough total article count across all years.
    pub fn expected_total_articles(&self) -> f64 {
        (self.start_year..=self.end_year).map(|y| self.expected_articles_in(y)).sum()
    }

    /// Panic with a clear message if the configuration is nonsensical.
    pub fn assert_valid(&self) {
        assert!(self.start_year <= self.end_year, "start_year must be <= end_year");
        assert!(self.initial_articles_per_year > 0.0, "need positive article rate");
        assert!(self.growth_rate > -1.0, "growth rate must exceed -100%");
        assert!(self.num_venues >= 1, "need at least one venue");
        assert!(self.mean_references >= 0.0, "mean_references must be >= 0");
        assert!(self.max_references >= 1, "max_references must be >= 1");
        assert!(self.recency_tau > 0.0, "recency_tau must be positive");
        assert!(self.merit_sigma >= 0.0, "merit_sigma must be >= 0");
        assert!(self.mean_team_size >= 1.0, "teams have at least one author");
        assert!(self.max_team_size >= 1, "max_team_size must be >= 1");
        assert!(
            (0.0..=1.0).contains(&self.new_author_prob),
            "new_author_prob must be a probability"
        );
        assert!(self.pa_strength >= 0.0, "pa_strength must be >= 0");
        assert!(self.merit_strength >= 0.0, "merit_strength must be >= 0");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        GeneratorConfig::default().assert_valid();
    }

    #[test]
    fn growth_schedule() {
        let cfg = GeneratorConfig {
            initial_articles_per_year: 100.0,
            growth_rate: 0.1,
            start_year: 2000,
            end_year: 2002,
            ..Default::default()
        };
        assert!((cfg.expected_articles_in(2000) - 100.0).abs() < 1e-9);
        assert!((cfg.expected_articles_in(2002) - 121.0).abs() < 1e-9);
        assert!((cfg.expected_total_articles() - 331.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "start_year")]
    fn invalid_years_panic() {
        GeneratorConfig { start_year: 2010, end_year: 2000, ..Default::default() }.assert_valid();
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        GeneratorConfig { new_author_prob: 1.5, ..Default::default() }.assert_valid();
    }
}
