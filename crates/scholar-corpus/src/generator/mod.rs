//! Synthetic scholarly-corpus generation.
//!
//! This module substitutes for the dataset downloads the original
//! evaluation relied on (AAN, DBLP, MAG). It produces corpora whose
//! *structural* properties match what the ranking algorithms exploit:
//!
//! * **Heavy-tailed citation counts** via preferential attachment
//!   (`(indeg + 1)^pa_strength` in the citation kernel).
//! * **Recency of citation** via an exponential age kernel
//!   (`exp(-age / recency_tau)`), matching the empirical observation that
//!   most references point a few years back.
//! * **Planted intrinsic merit** per article (log-normal), which drives
//!   citation accrual and later serves as noise-controlled ground truth
//!   (see `scholar-eval`). No ranking algorithm ever reads it.
//! * **Venue prestige** (Zipf) correlated with article merit in both
//!   directions: strong articles preferentially land in strong venues, and
//!   strong venues boost visibility. This is the signal QRank's venue
//!   component exploits.
//! * **Author ability and productivity** (log-normal ability, Lotka-style
//!   rich-get-richer productivity), the signal behind QRank's author
//!   component.
//!
//! The process is chronological — articles are created year by year and
//! cite only strictly older articles — so generated citation graphs are
//! DAGs. (Real corpora contain a small number of same-year and
//! time-travel citations; the loaders and algorithms tolerate them, which
//! is tested against hand-built fixtures instead.)

mod config;
mod engine;
mod presets;
mod stream;

pub use config::GeneratorConfig;
pub use engine::CorpusGenerator;
pub use presets::Preset;
pub use stream::{generate_mag_scale, StreamStats};
