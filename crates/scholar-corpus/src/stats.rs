//! Corpus-level statistics (R-Table 1).

use crate::corpus::Corpus;
use crate::model::Year;
use sgraph::stats as gstats;

/// Summary statistics of a corpus, comparable to the dataset tables
/// published alongside scholarly-ranking papers.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusStats {
    /// Number of articles.
    pub articles: usize,
    /// Number of citation edges.
    pub citations: usize,
    /// Number of distinct authors.
    pub authors: usize,
    /// Number of distinct venues.
    pub venues: usize,
    /// First publication year (0 when empty).
    pub first_year: Year,
    /// Last publication year (0 when empty).
    pub last_year: Year,
    /// Mean reference-list length.
    pub mean_references: f64,
    /// Mean byline length.
    pub mean_authors_per_article: f64,
    /// Mean citations received per article.
    pub mean_citations_received: f64,
    /// Maximum citations received by one article.
    pub max_citations_received: usize,
    /// Fraction of articles never cited.
    pub uncited_fraction: f64,
    /// MLE power-law exponent of the citation-count tail (x_min = 5), if
    /// the tail is large enough to estimate.
    pub citation_alpha: Option<f64>,
    /// Gini coefficient of citations received.
    pub citation_gini: f64,
}

/// Compute [`CorpusStats`] for `corpus`.
pub fn corpus_stats(corpus: &Corpus) -> CorpusStats {
    let n = corpus.num_articles();
    let g = corpus.citation_graph();
    let in_stats = gstats::in_degree_stats(&g);
    let (first_year, last_year) = corpus.year_range().unwrap_or((0, 0));
    let total_refs = corpus.num_citations();
    let total_authors: usize = corpus.articles().iter().map(|a| a.authors.len()).sum();
    CorpusStats {
        articles: n,
        citations: total_refs,
        authors: corpus.num_authors(),
        venues: corpus.num_venues(),
        first_year,
        last_year,
        mean_references: if n == 0 { 0.0 } else { total_refs as f64 / n as f64 },
        mean_authors_per_article: if n == 0 { 0.0 } else { total_authors as f64 / n as f64 },
        mean_citations_received: in_stats.mean,
        max_citations_received: in_stats.max,
        uncited_fraction: in_stats.zero_fraction,
        citation_alpha: gstats::in_degree_power_law_alpha(&g, 5),
        citation_gini: in_stats.gini,
    }
}

impl std::fmt::Display for CorpusStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "articles                {:>12}", self.articles)?;
        writeln!(f, "citations               {:>12}", self.citations)?;
        writeln!(f, "authors                 {:>12}", self.authors)?;
        writeln!(f, "venues                  {:>12}", self.venues)?;
        writeln!(f, "years                   {:>7} - {:<4}", self.first_year, self.last_year)?;
        writeln!(f, "mean references         {:>12.2}", self.mean_references)?;
        writeln!(f, "mean authors/article    {:>12.2}", self.mean_authors_per_article)?;
        writeln!(f, "mean citations recv     {:>12.2}", self.mean_citations_received)?;
        writeln!(f, "max citations recv      {:>12}", self.max_citations_received)?;
        writeln!(f, "uncited fraction        {:>12.3}", self.uncited_fraction)?;
        match self.citation_alpha {
            Some(a) => writeln!(f, "citation tail alpha     {:>12.2}", a)?,
            None => writeln!(f, "citation tail alpha     {:>12}", "n/a")?,
        }
        write!(f, "citation gini           {:>12.3}", self.citation_gini)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;

    #[test]
    fn stats_of_small_corpus() {
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        let u0 = b.author("A");
        let u1 = b.author("B");
        let a0 = b.add_article("a0", 1990, v, vec![u0], vec![], None);
        let a1 = b.add_article("a1", 1995, v, vec![u0, u1], vec![a0], None);
        b.add_article("a2", 2000, v, vec![u1], vec![a0, a1], None);
        let c = b.finish().unwrap();
        let s = corpus_stats(&c);
        assert_eq!(s.articles, 3);
        assert_eq!(s.citations, 3);
        assert_eq!(s.authors, 2);
        assert_eq!(s.venues, 1);
        assert_eq!(s.first_year, 1990);
        assert_eq!(s.last_year, 2000);
        assert!((s.mean_references - 1.0).abs() < 1e-12);
        assert!((s.mean_authors_per_article - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.max_citations_received, 2);
        assert!((s.uncited_fraction - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.citation_alpha, None); // tail far too small
    }

    #[test]
    fn stats_of_empty_corpus() {
        let c = CorpusBuilder::new().finish().unwrap();
        let s = corpus_stats(&c);
        assert_eq!(s.articles, 0);
        assert_eq!(s.mean_references, 0.0);
        assert_eq!(s.first_year, 0);
    }

    #[test]
    fn display_renders() {
        let c = CorpusBuilder::new().finish().unwrap();
        let text = corpus_stats(&c).to_string();
        assert!(text.contains("articles"));
        assert!(text.contains("citation gini"));
    }
}
