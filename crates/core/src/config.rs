//! QRank configuration.

use scholar_rank::TwprConfig;

/// All parameters of the QRank framework.
///
/// Defaults are the values tuned on the synthetic AAN-like validation
/// corpus (see EXPERIMENTS.md R-Fig 1/2/6); `TwprConfig`'s defaults carry
/// the citation-walk parameters (damping 0.85, ρ = 0.15/yr, τ = 0.05/yr).
#[derive(Debug, Clone, PartialEq)]
pub struct QRankConfig {
    /// Parameters of the article-level time-weighted walk; its `rho` also
    /// drives the decay used when aggregating the venue/author graphs.
    pub twpr: TwprConfig,
    /// Weight of the citation (TWPR) signal, λ_P.
    pub lambda_article: f64,
    /// Weight of the venue signal, λ_V.
    pub lambda_venue: f64,
    /// Weight of the author signal, λ_U.
    pub lambda_author: f64,
    /// Mix between the *structural* venue score (walk on the venue
    /// citation graph) and the *aggregated* venue score (mean member
    /// article score): `V = μ·structural + (1-μ)·aggregated`.
    pub mu_venue: f64,
    /// Same mix for authors.
    pub mu_author: f64,
    /// Citation-evidence maturity time constant σ (years). When positive,
    /// the citation signal of an article of age `a` carries weight
    /// `λ_P · (1 − exp(−a/σ))` and the un-matured remainder spills to the
    /// venue/author priors in proportion to λ_V : λ_U, so brand-new
    /// articles lean harder on prestige priors.
    ///
    /// Default `0` (disabled): the configuration sweep recorded in
    /// EXPERIMENTS.md found the *fixed* small-prior mix strictly better on
    /// this corpus family — the fixed prior already acts as the
    /// cold-start tiebreaker, and shifting scores of young articles onto
    /// the flatter prior distribution distorts cross-age comparisons. The
    /// mechanism is kept as a configurable variant (R-Table 5's
    /// "+ age-adaptive mix" row).
    pub maturity_years: f64,
    /// Drop author self-citations when building the author graph.
    pub drop_self_citations: bool,
    /// L1 tolerance of the outer mutual-reinforcement fixpoint.
    pub outer_tol: f64,
    /// Iteration cap of the outer fixpoint.
    pub outer_max_iter: usize,
}

impl Default for QRankConfig {
    fn default() -> Self {
        QRankConfig {
            twpr: TwprConfig::default(),
            lambda_article: 0.85,
            lambda_venue: 0.10,
            lambda_author: 0.05,
            mu_venue: 0.5,
            mu_author: 0.5,
            maturity_years: 0.0,
            drop_self_citations: true,
            outer_tol: 1e-10,
            outer_max_iter: 100,
        }
    }
}

impl QRankConfig {
    /// Panics on an invalid configuration.
    pub fn assert_valid(&self) {
        if let Err(msg) = self.validate() {
            panic!("{msg}");
        }
    }

    /// Non-panicking validation, for configurations read from files.
    pub fn validate(&self) -> Result<(), String> {
        let pr = &self.twpr.pagerank;
        if !(0.0..1.0).contains(&pr.damping) {
            return Err("damping must be in [0, 1)".into());
        }
        if pr.tol < 0.0 {
            return Err("tolerance must be >= 0".into());
        }
        if pr.max_iter == 0 {
            return Err("need at least one iteration".into());
        }
        if !(self.twpr.rho >= 0.0 && self.twpr.rho.is_finite()) {
            return Err("rho must be finite and >= 0".into());
        }
        if !(self.twpr.tau >= 0.0 && self.twpr.tau.is_finite()) {
            return Err("tau must be finite and >= 0".into());
        }
        let (lp, lv, lu) = (self.lambda_article, self.lambda_venue, self.lambda_author);
        if !(lp >= 0.0 && lv >= 0.0 && lu >= 0.0) {
            return Err("lambda weights must be >= 0".into());
        }
        if (lp + lv + lu - 1.0).abs() >= 1e-9 {
            return Err(format!("lambda weights must sum to 1 (got {})", lp + lv + lu));
        }
        if !(0.0..=1.0).contains(&self.mu_venue) {
            return Err("mu_venue must be in [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.mu_author) {
            return Err("mu_author must be in [0, 1]".into());
        }
        if !(self.maturity_years >= 0.0 && self.maturity_years.is_finite()) {
            return Err("maturity_years must be finite and >= 0".into());
        }
        if self.outer_max_iter == 0 {
            return Err("need at least one outer iteration".into());
        }
        if self.outer_tol < 0.0 {
            return Err("outer tolerance must be >= 0".into());
        }
        Ok(())
    }

    /// Set the λ mixture (must sum to 1).
    pub fn with_lambdas(mut self, article: f64, venue: f64, author: f64) -> Self {
        self.lambda_article = article;
        self.lambda_venue = venue;
        self.lambda_author = author;
        self.assert_valid();
        self
    }

    /// Set the edge-decay rate ρ.
    pub fn with_rho(mut self, rho: f64) -> Self {
        self.twpr.rho = rho;
        self.assert_valid();
        self
    }

    /// Set the jump-recency rate τ.
    pub fn with_tau(mut self, tau: f64) -> Self {
        self.twpr.tau = tau;
        self.assert_valid();
        self
    }

    /// Set the damping factor of every walk in the framework.
    pub fn with_damping(mut self, damping: f64) -> Self {
        self.twpr.pagerank.damping = damping;
        self.assert_valid();
        self
    }

    /// Set worker threads for the article-level SpMV.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.twpr.pagerank.threads = threads;
        self
    }

    /// Set the citation-evidence maturity constant σ (0 disables
    /// age-adaptive weighting).
    pub fn with_maturity(mut self, years: f64) -> Self {
        self.maturity_years = years;
        self.assert_valid();
        self
    }

    /// Parse a (possibly partial) JSON config: fields present in the text
    /// override the tuned defaults, including inside the nested `twpr` /
    /// `twpr.pagerank` objects; unknown keys are ignored. The result is
    /// *not* validated — call [`Self::validate`] on it.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let v = sjson::parse(text).map_err(|e| e.to_string())?;
        let obj = v.as_object().ok_or("config must be a JSON object")?;
        let mut cfg = QRankConfig::default();
        for (key, val) in obj {
            let num = |name: &str| val.as_f64().ok_or_else(|| format!("'{name}' must be a number"));
            match key.as_str() {
                "twpr" => cfg.twpr.merge_json(val)?,
                "lambda_article" => cfg.lambda_article = num("lambda_article")?,
                "lambda_venue" => cfg.lambda_venue = num("lambda_venue")?,
                "lambda_author" => cfg.lambda_author = num("lambda_author")?,
                "mu_venue" => cfg.mu_venue = num("mu_venue")?,
                "mu_author" => cfg.mu_author = num("mu_author")?,
                "maturity_years" => cfg.maturity_years = num("maturity_years")?,
                "drop_self_citations" => {
                    cfg.drop_self_citations =
                        val.as_bool().ok_or("'drop_self_citations' must be a bool")?
                }
                "outer_tol" => cfg.outer_tol = num("outer_tol")?,
                "outer_max_iter" => {
                    cfg.outer_max_iter =
                        val.as_usize().ok_or("'outer_max_iter' must be an integer")?
                }
                _ => {}
            }
        }
        Ok(cfg)
    }

    /// Serialize the full configuration as a JSON object.
    pub fn to_json(&self) -> sjson::Value {
        sjson::ObjectBuilder::new()
            .field("twpr", self.twpr.to_json())
            .field("lambda_article", self.lambda_article)
            .field("lambda_venue", self.lambda_venue)
            .field("lambda_author", self.lambda_author)
            .field("mu_venue", self.mu_venue)
            .field("mu_author", self.mu_author)
            .field("maturity_years", self.maturity_years)
            .field("drop_self_citations", self.drop_self_citations)
            .field("outer_tol", self.outer_tol)
            .field("outer_max_iter", self.outer_max_iter)
            .build()
    }

    /// `true` when `other` shares every *structural* parameter with
    /// `self` — the parameters that determine the derived graphs, the
    /// row-stochastic operators, and the three structural stationary
    /// distributions a [`crate::QRankEngine`] caches (everything in
    /// `twpr` plus `drop_self_citations`). Configs that agree here can
    /// share one prepared engine and differ only in mix parameters.
    pub fn same_structure(&self, other: &QRankConfig) -> bool {
        self.twpr == other.twpr && self.drop_self_citations == other.drop_self_citations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        QRankConfig::default().assert_valid();
    }

    #[test]
    fn json_roundtrip() {
        let cfg = QRankConfig::default().with_lambdas(0.7, 0.2, 0.1).with_rho(0.3);
        let json = cfg.to_json().to_string_compact();
        let back = QRankConfig::from_json_str(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn partial_json_fills_defaults() {
        // Users can override a subset of knobs in a config file.
        let cfg = QRankConfig::from_json_str(
            r#"{"lambda_article": 0.9, "lambda_venue": 0.1, "lambda_author": 0.0, "twpr": {"tau": 0.2}}"#,
        )
        .unwrap();
        cfg.assert_valid();
        assert_eq!(cfg.lambda_article, 0.9);
        assert_eq!(cfg.twpr.tau, 0.2);
        // Untouched knobs keep their defaults.
        assert_eq!(cfg.twpr.rho, QRankConfig::default().twpr.rho);
        assert_eq!(cfg.outer_max_iter, QRankConfig::default().outer_max_iter);
    }

    #[test]
    fn builder_methods() {
        let cfg = QRankConfig::default()
            .with_lambdas(0.5, 0.3, 0.2)
            .with_rho(0.2)
            .with_tau(0.1)
            .with_damping(0.9)
            .with_threads(4);
        assert_eq!(cfg.lambda_venue, 0.3);
        assert_eq!(cfg.twpr.rho, 0.2);
        assert_eq!(cfg.twpr.pagerank.damping, 0.9);
        assert_eq!(cfg.twpr.pagerank.threads, 4);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn lambdas_must_sum_to_one() {
        QRankConfig::default().with_lambdas(0.5, 0.5, 0.5);
    }

    #[test]
    #[should_panic(expected = "mu_venue")]
    fn mu_out_of_range_panics() {
        let cfg = QRankConfig { mu_venue: 1.5, ..Default::default() };
        cfg.assert_valid();
    }
}
