//! The prepared QRank execution plan: build once, solve many.
//!
//! [`QRank::run`](crate::QRank::run) does two very different kinds of
//! work. The *structural* part — deriving the five-graph [`HetNet`],
//! normalizing the three row-stochastic operators, and running the three
//! structural walks to their stationary distributions — depends only on
//! the corpus and the structural half of the configuration (everything in
//! `twpr` plus `drop_self_citations`; see
//! [`QRankConfig::same_structure`]). The *mixture* part — the outer
//! mutual-reinforcement fixpoint over λ/μ/σ — is cheap, and it is the
//! only thing parameter sweeps, ablations, and tuning grids vary.
//!
//! [`QRankEngine`] splits the two phases. `build` pays the structural
//! cost once; [`QRankEngine::solve`] answers any mixture of
//! [`MixParams`] against the cached plan, running only the outer
//! fixpoint. The outer loop is allocation-free at steady state (all
//! buffers live in a reusable [`SolveScratch`] and are ping-ponged) and
//! parallel (aggregations and the combine step partition their output
//! index space exactly like `RowStochastic::apply_parallel`, so results
//! are bitwise identical at any thread count).
//!
//! An engine is invalidated by — and must be rebuilt after — any change
//! to the corpus or to a structural parameter; [`QRankEngine::supports`]
//! tells whether a config can reuse this plan.

use crate::config::QRankConfig;
use crate::hetnet::HetNet;
use crate::qrank::QRankResult;
use scholar_corpus::Corpus;
use scholar_rank::diagnostics::Diagnostics;
use scholar_rank::{RankContext, TimeWeightedPageRank};
use sgraph::stochastic::{blend_into, l1_distance, normalize_l1, PowerIterationOpts};
use sgraph::{JumpVector, RowStochastic};
use std::ops::Range;
use std::sync::OnceLock;

/// Work threshold below which the parallel kernels stay sequential
/// (same rationale and value as `RowStochastic::apply_parallel`).
const PAR_THRESHOLD: usize = 4096;

/// The mixture-side parameters of one QRank solve: everything a
/// [`QRankEngine`] does *not* bake into its cached plan.
#[derive(Debug, Clone, PartialEq)]
pub struct MixParams {
    /// Weight of the citation (TWPR) signal, λ_P.
    pub lambda_article: f64,
    /// Weight of the venue signal, λ_V.
    pub lambda_venue: f64,
    /// Weight of the author signal, λ_U.
    pub lambda_author: f64,
    /// Structural-vs-aggregated venue blend μ_V.
    pub mu_venue: f64,
    /// Structural-vs-aggregated author blend μ_U.
    pub mu_author: f64,
    /// Citation-evidence maturity constant σ (years, 0 = disabled).
    pub maturity_years: f64,
    /// L1 tolerance of the outer fixpoint.
    pub outer_tol: f64,
    /// Iteration cap of the outer fixpoint.
    pub outer_max_iter: usize,
}

impl MixParams {
    /// Extract the mixture parameters of a full configuration.
    pub fn from_config(cfg: &QRankConfig) -> Self {
        MixParams {
            lambda_article: cfg.lambda_article,
            lambda_venue: cfg.lambda_venue,
            lambda_author: cfg.lambda_author,
            mu_venue: cfg.mu_venue,
            mu_author: cfg.mu_author,
            maturity_years: cfg.maturity_years,
            outer_tol: cfg.outer_tol,
            outer_max_iter: cfg.outer_max_iter,
        }
    }

    /// Panics on invalid mixture parameters (same rules as
    /// [`QRankConfig::validate`]).
    pub fn assert_valid(&self) {
        let (lp, lv, lu) = (self.lambda_article, self.lambda_venue, self.lambda_author);
        assert!(lp >= 0.0 && lv >= 0.0 && lu >= 0.0, "lambda weights must be >= 0");
        assert!(
            (lp + lv + lu - 1.0).abs() < 1e-9,
            "lambda weights must sum to 1 (got {})",
            lp + lv + lu
        );
        assert!((0.0..=1.0).contains(&self.mu_venue), "mu_venue must be in [0, 1]");
        assert!((0.0..=1.0).contains(&self.mu_author), "mu_author must be in [0, 1]");
        assert!(
            self.maturity_years >= 0.0 && self.maturity_years.is_finite(),
            "maturity_years must be finite and >= 0"
        );
        assert!(self.outer_max_iter > 0, "need at least one outer iteration");
        assert!(self.outer_tol >= 0.0, "outer tolerance must be >= 0");
    }
}

impl From<&QRankConfig> for MixParams {
    fn from(cfg: &QRankConfig) -> Self {
        MixParams::from_config(cfg)
    }
}

/// Reusable per-solve buffers; hand the same scratch to repeated
/// [`QRankEngine::solve_with`] calls and the outer fixpoint allocates
/// nothing after the first solve.
#[derive(Debug, Clone, Default)]
pub struct SolveScratch {
    f: Vec<f64>,
    next: Vec<f64>,
    av: Vec<f64>,
    au: Vec<f64>,
    venue_scores: Vec<f64>,
    author_scores: Vec<f64>,
    venue_term: Vec<f64>,
    author_term: Vec<f64>,
    weights: Vec<(f64, f64, f64)>,
    warm_twpr: Vec<f64>,
}

impl SolveScratch {
    /// Empty scratch; buffers grow to fit on first use.
    pub fn new() -> Self {
        SolveScratch::default()
    }

    fn resize_for(&mut self, n: usize, nv: usize, nu: usize) {
        self.f.resize(n, 0.0);
        self.next.resize(n, 0.0);
        self.av.resize(nv, 0.0);
        self.au.resize(nu, 0.0);
        self.venue_scores.resize(nv, 0.0);
        self.author_scores.resize(nu, 0.0);
        self.venue_term.resize(n, 0.0);
        self.author_term.resize(n, 0.0);
    }
}

/// A prepared, immutable QRank execution plan for one
/// `(corpus, structural-config)` pair.
///
/// Caches the heterogeneous network, the three row-stochastic operators,
/// the recency jump vector, the per-article ages, the structural
/// venue/author stationary distributions, and (lazily, on the first cold
/// solve) the TWPR stationary distribution. `solve` then runs only the
/// outer mutual-reinforcement fixpoint. Shared-reference solves are safe
/// from multiple threads.
#[derive(Debug)]
pub struct QRankEngine {
    config: QRankConfig,
    now: i32,
    net: HetNet,
    citation_op: RowStochastic,
    venue_op: RowStochastic,
    author_op: RowStochastic,
    jump: JumpVector,
    /// Cold TWPR stationary + diagnostics; computed on first use so a
    /// purely warm-started engine (incremental re-ranking) never pays for
    /// the cold walk.
    twpr_cold: OnceLock<(Vec<f64>, Diagnostics)>,
    /// Normalized structural venue stationary.
    sv: Vec<f64>,
    /// Normalized structural author stationary.
    su: Vec<f64>,
    /// Per-article age in years, clamped at 0.
    ages: Vec<f64>,
    threads: usize,
    pub_left_ranges: Vec<Range<usize>>,
    pub_right_ranges: Vec<Range<usize>>,
    auth_left_ranges: Vec<Range<usize>>,
    auth_right_ranges: Vec<Range<usize>>,
    article_ranges: Vec<Range<usize>>,
}

/// One full output range when the work is too small (or the config too
/// sequential) to be worth fanning out.
fn gated_ranges(
    len: usize,
    work: usize,
    threads: usize,
    make: impl FnOnce() -> Vec<Range<usize>>,
) -> Vec<Range<usize>> {
    if threads <= 1 || work < PAR_THRESHOLD {
        std::iter::once(0..len).collect()
    } else {
        make()
    }
}

impl QRankEngine {
    /// Build the plan: derive the heterogeneous network, normalize the
    /// three operators, run the structural venue/author walks, and
    /// precompute the balanced parallel partitions. O(corpus) — this is
    /// the expensive phase; amortize it across solves.
    pub fn build(corpus: &Corpus, config: &QRankConfig) -> Self {
        config.assert_valid();
        let now =
            config.twpr.now.or_else(|| corpus.year_range().map(|(_, last)| last)).unwrap_or(0);
        let net = HetNet::build(corpus, config);
        let jump = TimeWeightedPageRank::recency_jump(corpus, config.twpr.tau, now);
        let ages: Vec<f64> =
            corpus.articles().iter().map(|a| (now - a.year).max(0) as f64).collect();
        Self::assemble(config, net, now, jump, ages)
    }

    /// [`QRankEngine::build`] against a prepared [`RankContext`]: the
    /// decayed citation graph and the bipartites come from the context's
    /// caches (see [`HetNet::build_from_ctx`]); the structural walks and
    /// partitions are still computed here. Works on any context backend
    /// (in-RAM or colstore) — the engine only needs derived structures
    /// and the year vector, never article strings.
    pub fn build_from_ctx(ctx: &RankContext, config: &QRankConfig) -> Self {
        config.assert_valid();
        let now = config.twpr.now.or_else(|| ctx.try_now()).unwrap_or(0);
        let net = HetNet::build_from_ctx(ctx, config);
        let jump = ctx.recency_jump(config.twpr.tau, now);
        let ages = ctx.ages(now);
        Self::assemble(config, net, now, jump, ages)
    }

    fn assemble(
        config: &QRankConfig,
        net: HetNet,
        now: i32,
        jump: JumpVector,
        ages: Vec<f64>,
    ) -> Self {
        let n = net.num_articles();

        let citation_op = RowStochastic::new(&net.citation);
        let venue_op = RowStochastic::new(&net.venue_graph);
        let author_op = RowStochastic::new(&net.author_graph);

        let pr = &config.twpr.pagerank;
        let structural_opts = || PowerIterationOpts {
            damping: pr.damping,
            jump: JumpVector::Uniform,
            tol: pr.tol,
            max_iter: pr.max_iter,
            threads: pr.threads,
            warm_start: None,
        };
        let mut sv = venue_op.stationary(&structural_opts()).scores;
        let mut su = author_op.stationary(&structural_opts()).scores;
        normalize_l1(&mut sv);
        normalize_l1(&mut su);

        let threads = pr.threads;
        let nv = net.num_venues();
        let nu = net.num_authors();
        let pub_edges = net.publication.num_edges();
        let auth_edges = net.authorship.num_edges();
        let pub_left_ranges =
            gated_ranges(nv, pub_edges, threads, || net.publication.left_ranges(threads));
        let pub_right_ranges =
            gated_ranges(n, pub_edges, threads, || net.publication.right_ranges(threads));
        let auth_left_ranges =
            gated_ranges(nu, auth_edges, threads, || net.authorship.left_ranges(threads));
        let auth_right_ranges =
            gated_ranges(n, auth_edges, threads, || net.authorship.right_ranges(threads));
        let article_ranges =
            gated_ranges(n, n, threads, || sgraph::par::uniform_ranges(n, threads));

        QRankEngine {
            config: config.clone(),
            now,
            net,
            citation_op,
            venue_op,
            author_op,
            jump,
            twpr_cold: OnceLock::new(),
            sv,
            su,
            ages,
            threads,
            pub_left_ranges,
            pub_right_ranges,
            auth_left_ranges,
            auth_right_ranges,
            article_ranges,
        }
    }

    /// The configuration the plan was built from (its mixture half is
    /// only a default — any [`MixParams`] can be solved against the
    /// plan).
    pub fn config(&self) -> &QRankConfig {
        &self.config
    }

    /// `true` when `cfg` can be answered by this plan, i.e. it agrees
    /// with the build config on every structural parameter.
    pub fn supports(&self, cfg: &QRankConfig) -> bool {
        self.config.same_structure(cfg)
    }

    /// The cached heterogeneous network.
    pub fn net(&self) -> &HetNet {
        &self.net
    }

    /// The cached row-stochastic operators, in (citation, venue, author)
    /// order.
    pub fn operators(&self) -> (&RowStochastic, &RowStochastic, &RowStochastic) {
        (&self.citation_op, &self.venue_op, &self.author_op)
    }

    /// Worker threads the plan partitions its kernels for.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The reference year used for ages and recency.
    pub fn now(&self) -> i32 {
        self.now
    }

    /// Number of articles in the prepared corpus.
    pub fn num_articles(&self) -> usize {
        self.net.num_articles()
    }

    /// The cold TWPR stationary distribution (computing it on first
    /// call), with its convergence diagnostics.
    pub fn twpr(&self) -> (&[f64], &Diagnostics) {
        let (scores, diag) = self.twpr_cold.get_or_init(|| self.run_inner_walk(None));
        (scores, diag)
    }

    /// Install a precomputed cold TWPR stationary (e.g. a context-memoized
    /// TWPR solve with identical parameters) so [`Self::twpr`] and cold
    /// solves skip the inner walk. No-op if the walk already ran; the
    /// caller must guarantee the scores match what [`Self::twpr`] would
    /// compute.
    pub fn prime_twpr(&self, scores: Vec<f64>, diagnostics: Diagnostics) {
        let _ = self.twpr_cold.set((scores, diagnostics));
    }

    fn run_inner_walk(&self, warm_start: Option<Vec<f64>>) -> (Vec<f64>, Diagnostics) {
        let pr = &self.config.twpr.pagerank;
        let res = self.citation_op.stationary(&PowerIterationOpts {
            damping: pr.damping,
            jump: self.jump.clone(),
            tol: pr.tol,
            max_iter: pr.max_iter,
            threads: pr.threads,
            warm_start,
        });
        let scores = res.scores.clone();
        (scores, res.into())
    }

    /// Solve one mixture against the plan (cold inner walk, cached after
    /// the first solve).
    pub fn solve(&self, mix: &MixParams) -> QRankResult {
        self.solve_warm(mix, None)
    }

    /// [`Self::solve`] with an optional warm start for the inner citation
    /// walk (scores aligned with this corpus's article ids; zero-mass or
    /// wrong-length vectors are ignored, matching
    /// [`QRank::run_warm`](crate::QRank::run_warm)).
    pub fn solve_warm(&self, mix: &MixParams, warm_start: Option<&[f64]>) -> QRankResult {
        let mut scratch = SolveScratch::new();
        self.solve_with(mix, warm_start, &mut scratch)
    }

    /// [`Self::solve_warm`] against caller-owned scratch buffers: repeated
    /// calls with the same scratch run the outer fixpoint without
    /// allocating.
    pub fn solve_with(
        &self,
        mix: &MixParams,
        warm_start: Option<&[f64]>,
        scratch: &mut SolveScratch,
    ) -> QRankResult {
        mix.assert_valid();
        let n = self.net.num_articles();
        if n == 0 {
            return QRankResult {
                article_scores: Vec::new(),
                venue_scores: vec![0.0; self.net.num_venues()],
                author_scores: vec![0.0; self.net.num_authors()],
                twpr_scores: Vec::new(),
                twpr_diagnostics: Diagnostics::closed_form(),
                outer: Diagnostics::closed_form(),
            };
        }
        scratch.resize_for(n, self.net.num_venues(), self.net.num_authors());
        let SolveScratch {
            ref mut f,
            ref mut next,
            ref mut av,
            ref mut au,
            ref mut venue_scores,
            ref mut author_scores,
            ref mut venue_term,
            ref mut author_term,
            ref mut weights,
            ref mut warm_twpr,
        } = *scratch;

        // ---- Inner citation walk: cached cold, or re-run warm. ----
        // A zero-mass warm start (e.g. every score fell outside the new
        // corpus) would be rejected by the power iteration; drop it.
        let warm = warm_start.filter(|w| w.len() == n && w.iter().sum::<f64>() > 0.0);
        let (twpr, twpr_diagnostics): (&[f64], Diagnostics) = match warm {
            None => {
                let (scores, diag) = self.twpr();
                (scores, diag.clone())
            }
            Some(w) => {
                let (scores, diag) = self.run_inner_walk(Some(w.to_vec()));
                *warm_twpr = scores;
                (warm_twpr, diag)
            }
        };

        // ---- Age-adaptive per-article weights (see QRankConfig docs). ----
        let sigma = mix.maturity_years;
        let prior_total = mix.lambda_venue + mix.lambda_author;
        weights.clear();
        weights.extend(self.ages.iter().map(|&age| {
            let g = if sigma > 0.0 { 1.0 - (-age / sigma).exp() } else { 1.0 };
            let spill = (1.0 - g) * mix.lambda_article;
            if prior_total > 0.0 {
                (
                    mix.lambda_article * g,
                    mix.lambda_venue + spill * (mix.lambda_venue / prior_total),
                    mix.lambda_author + spill * (mix.lambda_author / prior_total),
                )
            } else {
                // No priors configured: nothing to spill into.
                (mix.lambda_article, 0.0, 0.0)
            }
        }));

        // ---- Outer mutual-reinforcement fixpoint, zero-alloc. ----
        f.clear();
        f.extend_from_slice(twpr);
        let mut residuals = Vec::with_capacity(mix.outer_max_iter.min(64));
        let mut converged = false;
        let mut iterations = 0;

        while iterations < mix.outer_max_iter {
            // Aggregated venue/author scores from current article scores.
            self.net.publication.aggregate_to_left_into_par(f, av, &self.pub_left_ranges);
            normalize_l1(av);
            self.net.authorship.aggregate_to_left_into_par(f, au, &self.auth_left_ranges);
            normalize_l1(au);

            // Blend structural and aggregated prestige.
            blend_into(&self.sv, av, mix.mu_venue, venue_scores);
            blend_into(&self.su, au, mix.mu_author, author_scores);

            // Push venue/author prestige back down to articles.
            self.net.publication.aggregate_to_right_into_par(
                venue_scores,
                venue_term,
                &self.pub_right_ranges,
            );
            normalize_l1(venue_term);
            self.net.authorship.aggregate_to_right_into_par(
                author_scores,
                author_term,
                &self.auth_right_ranges,
            );
            normalize_l1(author_term);

            // Combine the three signals per article.
            {
                let vt: &[f64] = venue_term;
                let at: &[f64] = author_term;
                let w: &[(f64, f64, f64)] = weights;
                sgraph::par::for_each_range_mut(next, &self.article_ranges, |range, chunk| {
                    for (i, slot) in range.zip(chunk.iter_mut()) {
                        let (wp, wv, wu) = w[i];
                        *slot = wp * twpr[i] + wv * vt[i] + wu * at[i];
                    }
                });
            }
            normalize_l1(next);

            iterations += 1;
            let r = l1_distance(f, next);
            residuals.push(r);
            std::mem::swap(f, next);
            if r < mix.outer_tol {
                converged = true;
                break;
            }
        }

        QRankResult {
            article_scores: f.clone(),
            venue_scores: venue_scores.clone(),
            author_scores: author_scores.clone(),
            twpr_scores: twpr.to_vec(),
            twpr_diagnostics,
            outer: Diagnostics { iterations, converged, residuals },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scholar_corpus::generator::Preset;

    #[test]
    fn worker_count_used_for_partitions_is_the_configured_one() {
        let c = Preset::Tiny.generate(1);
        let engine = QRankEngine::build(&c, &QRankConfig::default().with_threads(3));
        assert_eq!(engine.threads, 3);
        // Tiny corpus: everything below the parallel threshold collapses
        // to a single sequential range.
        assert_eq!(engine.article_ranges.len(), 1);
    }

    #[test]
    fn structural_stationaries_are_distributions() {
        let c = Preset::Tiny.generate(2);
        let engine = QRankEngine::build(&c, &QRankConfig::default());
        assert!((engine.sv.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((engine.su.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let (tw, diag) = engine.twpr();
        assert!(diag.converged);
        assert!((tw.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn supports_follows_structural_equality() {
        let c = Preset::Tiny.generate(3);
        let base = QRankConfig::default();
        let engine = QRankEngine::build(&c, &base);
        assert!(engine.supports(&base));
        assert!(engine.supports(&base.clone().with_lambdas(0.5, 0.3, 0.2)));
        assert!(engine.supports(&base.clone().with_maturity(3.0)));
        assert!(!engine.supports(&base.clone().with_rho(0.0)));
        assert!(!engine.supports(&base.clone().with_tau(0.0)));
        assert!(!engine.supports(&QRankConfig { drop_self_citations: false, ..base }));
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        let c = Preset::Tiny.generate(4);
        let cfg = QRankConfig::default();
        let engine = QRankEngine::build(&c, &cfg);
        let mut scratch = SolveScratch::new();
        let mixes = [
            MixParams::from_config(&cfg),
            MixParams::from_config(&cfg.clone().with_lambdas(0.5, 0.25, 0.25)),
            MixParams::from_config(&cfg.clone().with_maturity(2.0)),
        ];
        for mix in &mixes {
            let reused = engine.solve_with(mix, None, &mut scratch);
            let fresh = engine.solve(mix);
            assert_eq!(reused.article_scores, fresh.article_scores);
            assert_eq!(reused.venue_scores, fresh.venue_scores);
            assert_eq!(reused.author_scores, fresh.author_scores);
        }
    }

    #[test]
    fn empty_corpus_solve() {
        let c = scholar_corpus::CorpusBuilder::new().finish().unwrap();
        let engine = QRankEngine::build(&c, &QRankConfig::default());
        let res = engine.solve(&MixParams::from_config(&QRankConfig::default()));
        assert!(res.article_scores.is_empty());
        assert!(res.outer.converged);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn invalid_mix_panics() {
        let mix = MixParams {
            lambda_article: 0.5,
            lambda_venue: 0.5,
            lambda_author: 0.5,
            mu_venue: 0.5,
            mu_author: 0.5,
            maturity_years: 0.0,
            outer_tol: 1e-10,
            outer_max_iter: 100,
        };
        mix.assert_valid();
    }
}
