//! Cold-start scoring of brand-new articles.
//!
//! A submission that is not yet in the corpus has no citations, but it
//! *does* have a venue and an author list — and QRank's final venue and
//! author score vectors price those immediately. [`ColdStartScorer`]
//! freezes one QRank run and scores hypothetical new articles against it,
//! which is how a production search system would rank just-published work
//! between reindexing runs.

use crate::qrank::QRankResult;
use scholar_corpus::model::{author_position_weights, AuthorId, VenueId};
use scholar_corpus::Corpus;

/// Scores not-yet-indexed articles from a frozen [`QRankResult`].
#[derive(Debug, Clone)]
pub struct ColdStartScorer {
    venue_scores: Vec<f64>,
    author_scores: Vec<f64>,
    /// λ_V / (λ_V + λ_U): how venue and author signal split for an article
    /// with no citation signal at all.
    venue_share: f64,
    /// Mean article score, used to express results on the same scale as
    /// indexed articles.
    mean_article_score: f64,
}

impl ColdStartScorer {
    /// Build a scorer from a finished QRank run.
    ///
    /// `lambda_venue` / `lambda_author` are the weights the run used (the
    /// citation share is dropped and the remaining weights renormalized,
    /// since a cold article has no citation signal).
    pub fn new(result: &QRankResult, lambda_venue: f64, lambda_author: f64) -> Self {
        assert!(lambda_venue >= 0.0 && lambda_author >= 0.0, "weights must be >= 0");
        let total = lambda_venue + lambda_author;
        let venue_share = if total > 0.0 { lambda_venue / total } else { 0.5 };
        let n = result.article_scores.len();
        ColdStartScorer {
            venue_scores: result.venue_scores.clone(),
            author_scores: result.author_scores.clone(),
            venue_share,
            mean_article_score: if n == 0 {
                0.0
            } else {
                result.article_scores.iter().sum::<f64>() / n as f64
            },
        }
    }

    /// [`Self::new`] with the weights taken from the [`MixParams`]
    /// (`crate::engine::MixParams`) the result was solved under.
    pub fn from_mix(result: &QRankResult, mix: &crate::engine::MixParams) -> Self {
        Self::new(result, mix.lambda_venue, mix.lambda_author)
    }

    /// Score a hypothetical new article by venue and byline.
    ///
    /// Returned on the article-score scale of the underlying run (so it is
    /// directly comparable with `QRankResult::article_scores`): the
    /// venue/author mix is expressed relative to the *mean* venue/author
    /// prestige and multiplied by the mean indexed-article score.
    pub fn score(&self, venue: VenueId, authors: &[AuthorId]) -> f64 {
        let nv = self.venue_scores.len();
        let na = self.author_scores.len();
        assert!(venue.index() < nv, "venue {venue} out of bounds");
        let mean_v = if nv == 0 { 0.0 } else { 1.0 / nv as f64 };
        let mean_u = if na == 0 { 0.0 } else { 1.0 / na as f64 };

        let v_rel = if mean_v > 0.0 { self.venue_scores[venue.index()] / mean_v } else { 0.0 };
        let u_rel = if authors.is_empty() || mean_u == 0.0 {
            0.0
        } else {
            let w = author_position_weights(authors.len());
            let mixed: f64 = authors
                .iter()
                .zip(&w)
                .map(|(&u, &pw)| {
                    assert!(u.index() < na, "author {u} out of bounds");
                    pw * self.author_scores[u.index()]
                })
                .sum();
            mixed / mean_u
        };
        let rel = self.venue_share * v_rel + (1.0 - self.venue_share) * u_rel;
        rel * self.mean_article_score
    }

    /// Rank several hypothetical submissions, best first. Returns indices
    /// into `candidates` with their scores.
    pub fn rank_candidates(&self, candidates: &[(VenueId, Vec<AuthorId>)]) -> Vec<(usize, f64)> {
        let mut scored: Vec<(usize, f64)> =
            candidates.iter().enumerate().map(|(i, (v, us))| (i, self.score(*v, us))).collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        scored
    }

    /// The percentile (0 = worst, 1 = best) a cold score would take among
    /// the indexed articles of `corpus` under `result`'s article scores.
    pub fn percentile_among(&self, score: f64, result: &QRankResult, corpus: &Corpus) -> f64 {
        let n = corpus.num_articles();
        if n == 0 {
            return 0.0;
        }
        let below = result.article_scores.iter().filter(|&&s| s < score).count();
        below as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::QRankConfig;
    use crate::qrank::QRank;
    use scholar_corpus::CorpusBuilder;

    fn setup() -> (Corpus, QRankResult, ColdStartScorer) {
        let mut b = CorpusBuilder::new();
        let good = b.venue("Good");
        let dull = b.venue("Dull");
        let star = b.author("Star");
        let newbie = b.author("Newbie");
        let hit = b.add_article("hit", 1990, good, vec![star], vec![], None);
        for i in 0..6 {
            let citer = b.author(&format!("c{i}"));
            b.add_article(&format!("c{i}"), 1995 + i, dull, vec![citer], vec![hit], None);
        }
        b.add_article("n", 2010, dull, vec![newbie], vec![hit], None);
        let c = b.finish().unwrap();
        let cfg = QRankConfig::default();
        let res = QRank::new(cfg.clone()).run(&c);
        let scorer = ColdStartScorer::new(&res, cfg.lambda_venue, cfg.lambda_author);
        (c, res, scorer)
    }

    #[test]
    fn strong_venue_and_author_beat_weak_ones() {
        let (_, _, scorer) = setup();
        let strong = scorer.score(VenueId(0), &[AuthorId(0)]); // Good venue, Star
        let weak = scorer.score(VenueId(1), &[AuthorId(1)]); // Dull venue, Newbie
        assert!(strong > weak, "{strong} vs {weak}");
    }

    #[test]
    fn venue_only_and_author_only_contributions() {
        let (_, _, scorer) = setup();
        let no_authors = scorer.score(VenueId(0), &[]);
        assert!(no_authors > 0.0, "venue signal alone must produce a score");
        let weak_venue_strong_author = scorer.score(VenueId(1), &[AuthorId(0)]);
        let weak_both = scorer.score(VenueId(1), &[AuthorId(1)]);
        assert!(weak_venue_strong_author > weak_both);
    }

    #[test]
    fn rank_candidates_orders_descending() {
        let (_, _, scorer) = setup();
        let cands = vec![
            (VenueId(1), vec![AuthorId(1)]),
            (VenueId(0), vec![AuthorId(0)]),
            (VenueId(0), vec![AuthorId(1)]),
        ];
        let ranked = scorer.rank_candidates(&cands);
        assert_eq!(ranked[0].0, 1, "strongest candidate first");
        assert!(ranked[0].1 >= ranked[1].1 && ranked[1].1 >= ranked[2].1);
    }

    #[test]
    fn percentile_is_monotone() {
        let (c, res, scorer) = setup();
        let strong = scorer.score(VenueId(0), &[AuthorId(0)]);
        let weak = scorer.score(VenueId(1), &[AuthorId(1)]);
        let ps = scorer.percentile_among(strong, &res, &c);
        let pw = scorer.percentile_among(weak, &res, &c);
        assert!(ps >= pw);
        assert!((0.0..=1.0).contains(&ps));
    }

    #[test]
    fn byline_order_matters() {
        let (_, _, scorer) = setup();
        let star_first = scorer.score(VenueId(1), &[AuthorId(0), AuthorId(1)]);
        let star_last = scorer.score(VenueId(1), &[AuthorId(1), AuthorId(0)]);
        assert!(
            star_first > star_last,
            "first-author weighting must matter ({star_first} vs {star_last})"
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn unknown_venue_panics() {
        let (_, _, scorer) = setup();
        scorer.score(VenueId(99), &[]);
    }
}
