//! Incremental re-ranking when the corpus grows.
//!
//! A production index re-ranks after every crawl. Recomputing from
//! scratch wastes the fact that yesterday's scores are an excellent
//! starting point: power iteration contracts at rate ≈ damping, so a warm
//! start that is already within ε' of the answer needs only
//! `log(ε/ε') / log(d)` iterations. [`IncrementalRanker`] owns the
//! current corpus + result and folds in batches of new articles, mapping
//! old scores into the grown id space as the warm start.

use crate::config::QRankConfig;
use crate::engine::{MixParams, QRankEngine};
use crate::qrank::QRankResult;
use scholar_corpus::model::Article;
use scholar_corpus::Corpus;
use std::sync::OnceLock;

/// Maintains a QRank ranking across corpus updates.
///
/// Holds the prepared [`QRankEngine`] for the current corpus, so
/// mixture-only re-solves (and score explanations via
/// [`crate::Explainer::from_engine`]) come free between updates; each
/// [`IncrementalRanker::extend`] rebuilds the plan for the grown corpus
/// and warm-starts the inner walk from the previous scores — the warm
/// path never pays for the cold citation walk.
#[derive(Debug)]
pub struct IncrementalRanker {
    config: QRankConfig,
    corpus: Corpus,
    /// Lazily built so [`IncrementalRanker::restore`] is O(corpus): a
    /// ranker resurrected from a snapshot only pays for the engine plan
    /// when the first update (or explanation) actually needs it.
    engine: OnceLock<QRankEngine>,
    result: QRankResult,
}

/// What one incremental update did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateStats {
    /// Articles added in this batch.
    pub added_articles: usize,
    /// Inner (TWPR) iterations the warm-started run needed.
    pub warm_iterations: usize,
}

impl IncrementalRanker {
    /// Rank `corpus` from scratch and start tracking it.
    pub fn new(config: QRankConfig, corpus: Corpus) -> Self {
        config.assert_valid();
        let engine = QRankEngine::build(&corpus, &config);
        let result = engine.solve(&MixParams::from_config(&config));
        let cell = OnceLock::new();
        let _ = cell.set(engine);
        IncrementalRanker { config, corpus, engine: cell, result }
    }

    /// Resume tracking a corpus whose ranking was already computed — the
    /// crash-safe restart path. No solve happens and no engine plan is
    /// built; the caller asserts that `result` is the fixpoint for
    /// `corpus` under `config` (e.g. it was decoded from a checksummed
    /// snapshot that was written from a live ranker). Scores must match
    /// the corpus dimensions or this panics.
    pub fn restore(config: QRankConfig, corpus: Corpus, result: QRankResult) -> Self {
        config.assert_valid();
        assert_eq!(
            result.article_scores.len(),
            corpus.num_articles(),
            "restored article scores must match the corpus"
        );
        assert_eq!(
            result.venue_scores.len(),
            corpus.num_venues(),
            "restored venue scores must match the corpus"
        );
        assert_eq!(
            result.author_scores.len(),
            corpus.num_authors(),
            "restored author scores must match the corpus"
        );
        assert_eq!(
            result.twpr_scores.len(),
            corpus.num_articles(),
            "restored walk scores must match the corpus"
        );
        IncrementalRanker { config, corpus, engine: OnceLock::new(), result }
    }

    /// The current corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The prepared engine for the current corpus, built on first use
    /// after a [`IncrementalRanker::restore`].
    pub fn engine(&self) -> &QRankEngine {
        self.engine.get_or_init(|| QRankEngine::build(&self.corpus, &self.config))
    }

    /// The current ranking.
    pub fn result(&self) -> &QRankResult {
        &self.result
    }

    /// Fold in a batch of new articles (appended to the corpus; their ids
    /// must be dense continuations, their references may point anywhere in
    /// the grown corpus, and any new authors/venues must already have been
    /// appended via [`Corpus`] growth — in practice callers construct the
    /// grown corpus with [`grow_corpus`]).
    ///
    /// # Append-only contract
    ///
    /// The warm start is only a valid accelerant when the retained prefix
    /// is **identical** to the tracked corpus: an edit to an old article's
    /// references, year, venue, or byline changes the fixpoint, and a
    /// warm-started solve would silently converge to scores for a corpus
    /// the caller never declared. `extend` therefore verifies the whole
    /// prefix — id, year, venue, authors, and references of every retained
    /// article — and panics on the first mutation. The check is O(old
    /// articles + old references) per update, which is linear in the data
    /// the solver is about to traverse many times over, so it is noise
    /// next to the solve itself.
    pub fn extend(&mut self, grown: Corpus) -> UpdateStats {
        // Chaos site: a slow or dying solve inside the reindex pipeline.
        // A panic here must stay contained to the reindexer thread and
        // leave the previously published index serving.
        failpoint!("incremental.extend");
        let old_n = self.corpus.num_articles();
        let new_n = grown.num_articles();
        assert!(new_n >= old_n, "corpus can only grow");
        for (old, new) in self.corpus.articles().iter().zip(grown.articles()) {
            assert_eq!(old.id, new.id, "existing article ids must be stable");
            assert_eq!(
                old.year, new.year,
                "append-only contract violated: article {} changed year",
                old.id
            );
            assert_eq!(
                old.venue, new.venue,
                "append-only contract violated: article {} changed venue",
                old.id
            );
            assert_eq!(
                old.authors, new.authors,
                "append-only contract violated: article {} changed its byline",
                old.id
            );
            assert_eq!(
                old.references, new.references,
                "append-only contract violated: article {} changed its references",
                old.id
            );
        }
        // Old scores as warm start, zero for the newcomers.
        let mut warm = vec![0.0f64; new_n];
        warm[..old_n].copy_from_slice(&self.result.article_scores);
        let engine = QRankEngine::build(&grown, &self.config);
        let result = engine.solve_warm(&MixParams::from_config(&self.config), Some(&warm));
        let stats = UpdateStats {
            added_articles: new_n - old_n,
            warm_iterations: result.twpr_diagnostics.iterations,
        };
        self.corpus = grown;
        self.engine = OnceLock::new();
        let _ = self.engine.set(engine);
        self.result = result;
        stats
    }
}

/// Append a batch of articles to a corpus, producing the grown corpus.
/// New articles get the next dense ids; their references may cite both old
/// and new articles. Venue/author tables are reused (the batch must only
/// use existing [`scholar_corpus::VenueId`]s / [`scholar_corpus::AuthorId`]s).
pub fn grow_corpus(base: &Corpus, batch: Vec<Article>) -> Corpus {
    let mut b = scholar_corpus::CorpusBuilder::new();
    for v in base.venues() {
        b.venue(&v.name);
    }
    for u in base.authors() {
        b.author(&u.name);
    }
    for a in base.articles() {
        b.add_article(&a.title, a.year, a.venue, a.authors.clone(), a.references.clone(), a.merit);
    }
    for a in batch {
        b.add_article(&a.title, a.year, a.venue, a.authors, a.references, a.merit);
    }
    b.finish().expect("grown corpus must be consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qrank::QRank;
    use scholar_corpus::generator::Preset;
    use scholar_corpus::model::{ArticleId, AuthorId, VenueId};
    use scholar_corpus::snapshot_until;

    fn batch_article(id_hint: usize, year: i32, refs: Vec<ArticleId>) -> Article {
        Article {
            id: ArticleId(0), // reassigned by grow_corpus
            title: format!("new-{id_hint}"),
            year,
            venue: VenueId(0),
            authors: vec![AuthorId(0)],
            references: refs,
            merit: None,
        }
    }

    #[test]
    fn grow_preserves_base() {
        let base = Preset::Tiny.generate(40);
        let n = base.num_articles();
        let grown =
            grow_corpus(&base, vec![batch_article(0, 2011, vec![ArticleId(0), ArticleId(5)])]);
        assert_eq!(grown.num_articles(), n + 1);
        assert_eq!(grown.num_venues(), base.num_venues());
        assert_eq!(grown.num_authors(), base.num_authors());
        for (a, b) in base.articles().iter().zip(grown.articles()) {
            assert_eq!(a.references, b.references);
            assert_eq!(a.year, b.year);
        }
        assert_eq!(grown.articles()[n].references, vec![ArticleId(0), ArticleId(5)]);
    }

    #[test]
    fn warm_update_matches_cold_recompute() {
        let base = Preset::Tiny.generate(41);
        let mut inc = IncrementalRanker::new(QRankConfig::default(), base.clone());
        let grown = grow_corpus(
            &base,
            (0..20).map(|i| batch_article(i, 2011, vec![ArticleId((i * 7 % 50) as u32)])).collect(),
        );
        let stats = inc.extend(grown.clone());
        assert_eq!(stats.added_articles, 20);

        let cold = QRank::default().run(&grown);
        let l1: f64 = inc
            .result()
            .article_scores
            .iter()
            .zip(&cold.article_scores)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(l1 < 1e-6, "warm and cold results must agree, L1 = {l1}");
    }

    #[test]
    fn warm_start_saves_iterations() {
        // Grow a snapshot by one year; the warm run must converge in fewer
        // inner iterations than the cold run.
        let full = Preset::Tiny.generate(42);
        let (_, last) = full.year_range().unwrap();
        let snap = snapshot_until(&full, last - 1);

        let mut inc = IncrementalRanker::new(QRankConfig::default(), snap.corpus.clone());
        let cold_iters = inc.result().twpr_diagnostics.iterations;

        // The batch: the final year's articles, references remapped.
        let batch: Vec<Article> = full
            .articles()
            .iter()
            .filter(|a| a.year == last)
            .map(|a| Article {
                id: ArticleId(0),
                title: a.title.clone(),
                year: a.year,
                venue: a.venue,
                authors: a.authors.clone(),
                references: a.references.iter().filter_map(|&r| snap.to_snapshot(r)).collect(),
                merit: a.merit,
            })
            .collect();
        assert!(!batch.is_empty());
        let grown = grow_corpus(&snap.corpus, batch);
        let stats = inc.extend(grown);
        assert!(
            stats.warm_iterations < cold_iters,
            "warm ({}) should converge faster than cold ({})",
            stats.warm_iterations,
            cold_iters
        );
    }

    /// Build a grown corpus whose retained prefix has been tampered with
    /// by `mutate`, then feed it to `extend`.
    fn extend_with_mutated_prefix(mutate: impl Fn(&mut Article)) {
        let base = Preset::Tiny.generate(44);
        let mut inc = IncrementalRanker::new(QRankConfig::default(), base.clone());
        let mut grown = grow_corpus(&base, vec![batch_article(0, 2011, vec![ArticleId(3)])]);
        // Rebuild the grown corpus with article 5 of the prefix mutated —
        // the id space stays dense and valid, only the content lies.
        let mut articles: Vec<Article> = grown.articles().to_vec();
        mutate(&mut articles[5]);
        let mut b = scholar_corpus::CorpusBuilder::new();
        for v in grown.venues() {
            b.venue(&v.name);
        }
        for u in grown.authors() {
            b.author(&u.name);
        }
        for a in &articles {
            b.add_article(&a.title, a.year, a.venue, a.authors.clone(), a.references.clone(), None);
        }
        grown = b.finish().expect("mutated corpus is still structurally valid");
        inc.extend(grown);
    }

    #[test]
    #[should_panic(expected = "changed its references")]
    fn mutated_prefix_references_rejected() {
        extend_with_mutated_prefix(|a| {
            if a.references.is_empty() {
                a.references.push(ArticleId(0));
            } else {
                a.references.clear();
            }
        });
    }

    #[test]
    #[should_panic(expected = "changed year")]
    fn mutated_prefix_year_rejected() {
        extend_with_mutated_prefix(|a| a.year -= 1);
    }

    #[test]
    #[should_panic(expected = "changed venue")]
    fn mutated_prefix_venue_rejected() {
        extend_with_mutated_prefix(|a| {
            a.venue = VenueId(if a.venue.0 == 0 { 1 } else { 0 });
        });
    }

    #[test]
    #[should_panic(expected = "changed its byline")]
    fn mutated_prefix_byline_rejected() {
        extend_with_mutated_prefix(|a| {
            if a.authors.is_empty() {
                a.authors.push(AuthorId(0));
            } else {
                a.authors.clear();
            }
        });
    }

    #[test]
    #[should_panic(expected = "only grow")]
    fn shrinking_panics() {
        let base = Preset::Tiny.generate(43);
        let smaller = snapshot_until(&base, base.year_range().unwrap().1 - 3).corpus;
        let mut inc = IncrementalRanker::new(QRankConfig::default(), base);
        inc.extend(smaller);
    }
}
