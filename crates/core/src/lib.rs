#![warn(missing_docs)]

//! # qrank — query-independent scholarly article ranking
//!
//! This crate implements the primary contribution of the reconstructed
//! ICDE 2018 paper *"Query Independent Scholarly Article Ranking"* (see
//! DESIGN.md for the reconstruction notice): a ranking framework that
//! combines
//!
//! 1. **Time-weighted PageRank** over the article citation graph
//!    (exponential decay on citation age + recency-personalized
//!    teleportation — implemented in `scholar-rank::time_weighted`), and
//! 2. **Mutual reinforcement with venues and authors** over the
//!    heterogeneous academic network: venue and author prestige is
//!    computed both *structurally* (a time-weighted walk over the
//!    aggregated venue/author citation graphs) and *by aggregation* (from
//!    the current article scores), then folded back into every article's
//!    score. Iterated to a fixpoint.
//!
//! Because venue and author prestige exist from the day an article is
//! published, QRank addresses the **cold-start problem**: a new article
//! with zero citations still inherits `λ_V·V + λ_U·U`. The
//! [`cold_start`] module exposes this directly for articles that are not
//! even in the corpus yet.
//!
//! ## Quick start
//!
//! ```
//! use qrank::{QRank, QRankConfig};
//! use scholar_corpus::generator::Preset;
//! use scholar_rank::Ranker;
//!
//! let corpus = Preset::Tiny.generate(42);
//! let result = QRank::new(QRankConfig::default()).run(&corpus);
//! assert_eq!(result.article_scores.len(), corpus.num_articles());
//! assert!(result.outer.converged);
//!
//! // Or through the common Ranker interface:
//! let scores = QRank::default().rank(&corpus);
//! assert!((scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! ```
//!
//! ## Build once, solve many
//!
//! [`QRank::run`] rebuilds the heterogeneous network and re-runs the
//! structural walks every call. Parameter sweeps, ablations, and tuning
//! grids vary only the mixture parameters, so they should prepare a
//! [`QRankEngine`] once and solve many times:
//!
//! ```
//! use qrank::{MixParams, QRankConfig, QRankEngine};
//! use scholar_corpus::generator::Preset;
//!
//! let corpus = Preset::Tiny.generate(42);
//! let base = QRankConfig::default();
//! let engine = QRankEngine::build(&corpus, &base); // expensive, once
//! for lambda_venue in [0.05, 0.10, 0.15] {
//!     let cfg = base.clone().with_lambdas(0.9 - lambda_venue, lambda_venue, 0.1);
//!     let res = engine.solve(&MixParams::from_config(&cfg)); // cheap
//!     assert!(res.outer.converged);
//! }
//! ```

/// Named fault-injection site (see `scholar-testkit`). With the
/// `failpoints` feature on, evaluates the site in the testkit registry:
/// the unit form can delay or panic; the two-argument form additionally
/// runs its second argument when the site's schedule says *trigger*.
/// Without the feature the macro expands to nothing at all — no branch,
/// no registry, no dependency.
#[cfg(feature = "failpoints")]
macro_rules! failpoint {
    ($site:literal) => {
        let _ = ::scholar_testkit::fp::hit($site);
    };
    ($site:literal, $on_trigger:expr) => {
        if ::scholar_testkit::fp::hit($site) {
            $on_trigger
        }
    };
}
#[cfg(not(feature = "failpoints"))]
macro_rules! failpoint {
    ($site:literal) => {};
    ($site:literal, $on_trigger:expr) => {};
}

pub mod ablation;
pub mod cold_start;
pub mod config;
pub mod engine;
pub mod explain;
pub mod hetnet;
pub mod incremental;
pub mod qrank;

pub use ablation::Ablation;
pub use cold_start::ColdStartScorer;
pub use config::QRankConfig;
pub use engine::{MixParams, QRankEngine, SolveScratch};
pub use explain::{Explainer, Explanation};
pub use hetnet::HetNet;
pub use incremental::{grow_corpus, IncrementalRanker, UpdateStats};
pub use qrank::{QRank, QRankResult};
