//! Per-article score explanations.
//!
//! "Why is this article ranked here?" decomposes exactly along QRank's
//! mixture: a citation contribution (λ_P · TWPR), a venue contribution
//! (λ_V · venue term), and an author contribution (λ_U · author term) —
//! plus the strongest citing articles behind the citation part. Useful
//! both for debugging rankings and as end-user provenance.

use crate::config::QRankConfig;
use crate::engine::QRankEngine;
use crate::hetnet::HetNet;
use crate::qrank::QRankResult;
use scholar_corpus::{ArticleId, Corpus};
use sgraph::stochastic::normalize_l1;
use sgraph::NodeId;

/// One article's score decomposition. The three contributions sum to the
/// article's final (unnormalized-mixture) score up to the global
/// renormalization factor, so their *shares* are exact.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The article being explained.
    pub article: ArticleId,
    /// Final QRank score.
    pub score: f64,
    /// Citation-signal share of the mixture (λ_P · P, as a fraction of
    /// the mixture total).
    pub citation_share: f64,
    /// Venue share.
    pub venue_share: f64,
    /// Author share.
    pub author_share: f64,
    /// The citing articles contributing most to the citation signal, as
    /// `(citing article, fraction of this article's in-flow)`, strongest
    /// first.
    pub top_citers: Vec<(ArticleId, f64)>,
}

/// Computes [`Explanation`]s against a finished QRank run.
pub struct Explainer<'a> {
    corpus: &'a Corpus,
    result: &'a QRankResult,
    net: std::borrow::Cow<'a, HetNet>,
    venue_term: Vec<f64>,
    author_term: Vec<f64>,
}

impl<'a> Explainer<'a> {
    /// Build an explainer (reconstructs the heterogeneous network once).
    /// When a prepared [`QRankEngine`] for the same corpus/config is at
    /// hand, [`Self::from_engine`] borrows its network instead.
    pub fn new(corpus: &'a Corpus, config: &QRankConfig, result: &'a QRankResult) -> Self {
        let net = HetNet::build(corpus, config);
        Self::with_net(corpus, std::borrow::Cow::Owned(net), result)
    }

    /// Build an explainer against a prepared engine, reusing its cached
    /// heterogeneous network instead of deriving a fresh one.
    pub fn from_engine(
        corpus: &'a Corpus,
        engine: &'a QRankEngine,
        result: &'a QRankResult,
    ) -> Self {
        Self::with_net(corpus, std::borrow::Cow::Borrowed(engine.net()), result)
    }

    fn with_net(
        corpus: &'a Corpus,
        net: std::borrow::Cow<'a, HetNet>,
        result: &'a QRankResult,
    ) -> Self {
        assert_eq!(
            result.article_scores.len(),
            corpus.num_articles(),
            "result does not match corpus"
        );
        let mut venue_term = net.publication.aggregate_to_right(&result.venue_scores);
        normalize_l1(&mut venue_term);
        let mut author_term = net.authorship.aggregate_to_right(&result.author_scores);
        normalize_l1(&mut author_term);
        Explainer { corpus, result, net, venue_term, author_term }
    }

    /// Explain one article, reporting at most `max_citers` contributing
    /// citers.
    pub fn explain(
        &self,
        article: ArticleId,
        max_citers: usize,
        config: &QRankConfig,
    ) -> Explanation {
        let i = article.index();
        assert!(i < self.corpus.num_articles(), "article {article} out of bounds");
        let p = config.lambda_article * self.result.twpr_scores[i];
        let v = config.lambda_venue * self.venue_term[i];
        let u = config.lambda_author * self.author_term[i];
        let total = p + v + u;
        let (citation_share, venue_share, author_share) =
            if total > 0.0 { (p / total, v / total, u / total) } else { (0.0, 0.0, 0.0) };

        // In-flow decomposition of the TWPR signal: contribution of citer
        // c is twpr[c] · transition(c → article), using the decayed edge
        // weights normalized over c's out-weights.
        let node = NodeId(article.0);
        let mut citers: Vec<(ArticleId, f64)> = self
            .net
            .citation
            .in_neighbors(node)
            .iter()
            .zip(self.net.citation.in_edge_weights(node))
            .map(|(&c, &w)| {
                let out_sum = self.net.citation.out_weight_sum(c);
                let p_edge = if out_sum > 0.0 { w / out_sum } else { 0.0 };
                (ArticleId(c.0), self.result.twpr_scores[c.index()] * p_edge)
            })
            .collect();
        let inflow: f64 = citers.iter().map(|c| c.1).sum();
        if inflow > 0.0 {
            for c in &mut citers {
                c.1 /= inflow;
            }
        }
        citers.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        citers.truncate(max_citers);

        Explanation {
            article,
            score: self.result.article_scores[i],
            citation_share,
            venue_share,
            author_share,
            top_citers: citers,
        }
    }
}

impl Explanation {
    /// Render a short human-readable explanation.
    pub fn render(&self, corpus: &Corpus) -> String {
        let a = corpus.article(self.article);
        let mut out = format!(
            "\"{}\" ({}, {}) — score {:.6}\n  signal mix: citations {:.0}%, venue {:.0}%, authors {:.0}%\n",
            a.title,
            a.year,
            corpus.venue(a.venue).name,
            self.score,
            self.citation_share * 100.0,
            self.venue_share * 100.0,
            self.author_share * 100.0,
        );
        for (citer, frac) in &self.top_citers {
            let c = corpus.article(*citer);
            out.push_str(&format!(
                "  <- {:.0}% of citation in-flow from \"{}\" ({})\n",
                frac * 100.0,
                c.title,
                c.year
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qrank::QRank;
    use scholar_corpus::CorpusBuilder;

    fn setup() -> (Corpus, QRankConfig, QRankResult) {
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        let w = b.venue("W");
        let u0 = b.author("Ada");
        let a0 = b.add_article("classic", 1990, v, vec![u0], vec![], None);
        let big = b.add_article("big-citer", 2000, w, vec![u0], vec![a0], None);
        b.add_article("small-citer", 2005, w, vec![], vec![a0, big], None);
        b.add_article("isolated", 2010, w, vec![], vec![], None);
        let c = b.finish().unwrap();
        let cfg = QRankConfig::default();
        let res = QRank::new(cfg.clone()).run(&c);
        (c, cfg, res)
    }

    #[test]
    fn shares_sum_to_one() {
        let (c, cfg, res) = setup();
        let ex = Explainer::new(&c, &cfg, &res);
        for i in 0..c.num_articles() {
            let e = ex.explain(ArticleId(i as u32), 5, &cfg);
            let sum = e.citation_share + e.venue_share + e.author_share;
            assert!((sum - 1.0).abs() < 1e-9, "shares must sum to 1, got {sum}");
        }
    }

    #[test]
    fn top_citers_are_ranked_and_normalized() {
        let (c, cfg, res) = setup();
        let ex = Explainer::new(&c, &cfg, &res);
        let e = ex.explain(ArticleId(0), 5, &cfg);
        assert_eq!(e.top_citers.len(), 2);
        let total: f64 = e.top_citers.iter().map(|x| x.1).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(e.top_citers[0].1 >= e.top_citers[1].1);
    }

    #[test]
    fn isolated_article_explanation_invariants() {
        // An uncited article has no citers to report, and (with the
        // recency jump disabled) its absolute citation component is just
        // the teleport floor — far below a heavily-cited article's.
        let (c, _, _) = setup();
        let cfg = QRankConfig::default().with_tau(0.0);
        let res = QRank::new(cfg.clone()).run(&c);
        let ex = Explainer::new(&c, &cfg, &res);
        let e = ex.explain(ArticleId(3), 5, &cfg);
        assert!(e.top_citers.is_empty());
        let classic = ex.explain(ArticleId(0), 5, &cfg);
        assert!(
            res.twpr_scores[3] < res.twpr_scores[0] / 2.0,
            "uncited TWPR {} vs cited {}",
            res.twpr_scores[3],
            res.twpr_scores[0]
        );
        assert!(e.score < classic.score);
    }

    #[test]
    fn render_mentions_title_and_mix() {
        let (c, cfg, res) = setup();
        let ex = Explainer::new(&c, &cfg, &res);
        let text = ex.explain(ArticleId(0), 2, &cfg).render(&c);
        assert!(text.contains("classic"));
        assert!(text.contains("signal mix"));
        assert!(text.contains("in-flow"));
    }

    #[test]
    fn from_engine_matches_fresh_explainer() {
        let (c, cfg, res) = setup();
        let engine = crate::engine::QRankEngine::build(&c, &cfg);
        let fresh = Explainer::new(&c, &cfg, &res);
        let reused = Explainer::from_engine(&c, &engine, &res);
        for i in 0..c.num_articles() {
            let a = fresh.explain(ArticleId(i as u32), 5, &cfg);
            let b = reused.explain(ArticleId(i as u32), 5, &cfg);
            assert_eq!(a.citation_share, b.citation_share);
            assert_eq!(a.venue_share, b.venue_share);
            assert_eq!(a.author_share, b.author_share);
            assert_eq!(a.top_citers, b.top_citers);
        }
    }

    #[test]
    fn truncation_respects_max_citers() {
        let (c, cfg, res) = setup();
        let ex = Explainer::new(&c, &cfg, &res);
        let e = ex.explain(ArticleId(0), 1, &cfg);
        assert_eq!(e.top_citers.len(), 1);
    }
}
