//! The QRank algorithm: time-weighted citation walk + venue/author mutual
//! reinforcement.

use crate::config::QRankConfig;
use crate::engine::{MixParams, QRankEngine};
use scholar_corpus::{Corpus, Year};
use scholar_rank::diagnostics::Diagnostics;
use scholar_rank::telemetry::Stopwatch;
use scholar_rank::telemetry::{RankOutput, SolveTelemetry};
use scholar_rank::{RankContext, Ranker, TimeWeightedPageRank};

/// The QRank ranker. See the crate docs for the model.
#[derive(Debug, Clone, Default)]
pub struct QRank {
    /// Parameters.
    pub config: QRankConfig,
}

/// Everything QRank computes in one run.
#[derive(Debug, Clone)]
pub struct QRankResult {
    /// Final article scores (sum 1) — the ranking.
    pub article_scores: Vec<f64>,
    /// Final venue scores (sum 1).
    pub venue_scores: Vec<f64>,
    /// Final author scores (sum 1).
    pub author_scores: Vec<f64>,
    /// The pure citation signal (TWPR stationary distribution), kept for
    /// ablation and diagnosis.
    pub twpr_scores: Vec<f64>,
    /// Convergence of the inner TWPR walk.
    pub twpr_diagnostics: Diagnostics,
    /// Convergence of the outer mutual-reinforcement fixpoint.
    pub outer: Diagnostics,
}

impl QRank {
    /// QRank with the given configuration.
    pub fn new(config: QRankConfig) -> Self {
        config.assert_valid();
        QRank { config }
    }

    /// Run the full framework.
    pub fn run(&self, corpus: &Corpus) -> QRankResult {
        self.run_warm(corpus, None)
    }

    /// Run with an optional warm start: article scores from a previous
    /// run, already aligned with this corpus's article ids (scores for new
    /// articles can be 0 — the vector is renormalized). Warm-starting the
    /// inner citation walk is what makes incremental re-ranking after a
    /// corpus update cheap (see [`crate::incremental`]).
    ///
    /// This is `QRankEngine::build` + one solve; callers that vary only
    /// mixture parameters across runs should hold a [`QRankEngine`] and
    /// call [`QRankEngine::solve`] to skip the rebuild.
    pub fn run_warm(&self, corpus: &Corpus, warm_start: Option<Vec<f64>>) -> QRankResult {
        let engine = QRankEngine::build(corpus, &self.config);
        engine.solve_warm(&MixParams::from_config(&self.config), warm_start.as_deref())
    }

    /// The context-memo key for a full QRank solve under `cfg` at year
    /// `now`: the inner-walk key plus every mixture parameter.
    pub fn solve_key(cfg: &QRankConfig, now: Year) -> String {
        format!(
            "qrank({},lp={},lv={},lu={},muv={},muu={},sigma={},otol={},omax={},dropself={})",
            TimeWeightedPageRank::solve_key(&cfg.twpr, now),
            cfg.lambda_article,
            cfg.lambda_venue,
            cfg.lambda_author,
            cfg.mu_venue,
            cfg.mu_author,
            cfg.maturity_years,
            cfg.outer_tol,
            cfg.outer_max_iter,
            cfg.drop_self_citations
        )
    }
}

impl Ranker for QRank {
    fn name(&self) -> String {
        "QRank".into()
    }

    fn solve_ctx(&self, ctx: &RankContext) -> RankOutput {
        self.config.assert_valid();
        if ctx.num_articles() == 0 {
            return RankOutput::closed_form(Vec::new());
        }
        // The memo key needs only the reference year, so a repeated solve
        // on one context skips the whole engine build: the closure (and
        // the HetNet construction inside it) runs only on a miss. The
        // memoized diagnostics fold the inner walk into the outer record
        // (iterations summed, convergence and-ed) so hits report the same
        // totals as the run that populated them.
        let now = self.config.twpr.now.unwrap_or_else(|| ctx.now());
        let mut build_secs = 0.0;
        let solved = Stopwatch::start();
        let (scores, combined, cached) =
            ctx.cached_solve(&QRank::solve_key(&self.config, now), || {
                let built = Stopwatch::start();
                let engine = QRankEngine::build_from_ctx(ctx, &self.config);
                build_secs = built.secs();
                debug_assert_eq!(engine.now(), now);

                // The cold inner walk is exactly a TWPR solve with this
                // config, so it shares TWPR's memo entry: whichever of the
                // two runs first in this context pays for the walk, the
                // other reuses the scores bit-for-bit (identical operator,
                // jump, and iteration kernel).
                let twpr_key = TimeWeightedPageRank::solve_key(&self.config.twpr, now);
                let (tw_scores, tw_diag, _) = ctx.cached_solve(&twpr_key, || {
                    let (s, d) = engine.twpr();
                    (s.to_vec(), d.clone())
                });
                engine.prime_twpr(tw_scores, tw_diag.clone());

                let res = engine.solve(&MixParams::from_config(&self.config));
                let mut combined = res.outer;
                combined.iterations += tw_diag.iterations;
                combined.converged = combined.converged && tw_diag.converged;
                (res.article_scores, combined)
            });
        let solve_secs = (solved.secs() - build_secs).max(0.0);
        let telemetry = SolveTelemetry::timed(&combined, build_secs, solve_secs, cached);
        RankOutput { scores, telemetry }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scholar_corpus::generator::Preset;
    use scholar_corpus::CorpusBuilder;
    use scholar_rank::TwprConfig;
    use sgraph::stochastic::l1_distance;

    fn assert_distribution(v: &[f64]) {
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-9, "sum {}", v.iter().sum::<f64>());
        assert!(v.iter().all(|&x| x >= 0.0 && x.is_finite()));
    }

    #[test]
    fn converges_on_generated_corpus() {
        let c = Preset::Tiny.generate(1);
        let res = QRank::default().run(&c);
        assert!(res.twpr_diagnostics.converged);
        assert!(res.outer.converged, "outer loop should converge: {:?}", res.outer.iterations);
        assert_distribution(&res.article_scores);
        assert_distribution(&res.venue_scores);
        assert_distribution(&res.author_scores);
        assert_distribution(&res.twpr_scores);
    }

    #[test]
    fn lambda_article_one_reduces_to_twpr() {
        let c = Preset::Tiny.generate(2);
        let res = QRank::new(QRankConfig::default().with_lambdas(1.0, 0.0, 0.0)).run(&c);
        let diff = l1_distance(&res.article_scores, &res.twpr_scores);
        assert!(diff < 1e-9, "pure-article QRank must equal TWPR, diff {diff}");
        // And it converges in one outer iteration.
        assert!(res.outer.iterations <= 2);
    }

    #[test]
    fn venue_signal_lifts_uncited_articles_in_good_venues() {
        // Two uncited 2010 articles; one in the venue that hosts a classic,
        // one in a venue nobody cites.
        let mut b = CorpusBuilder::new();
        let good = b.venue("Good");
        let dull = b.venue("Dull");
        let u = b.author("Someone");
        let hit = b.add_article("classic", 1990, good, vec![u], vec![], None);
        for i in 0..6 {
            let citer = b.author(&format!("c{i}"));
            b.add_article(&format!("citer{i}"), 1995 + i, dull, vec![citer], vec![hit], None);
        }
        b.add_article("new-good", 2010, good, vec![], vec![hit], None);
        b.add_article("new-dull", 2010, dull, vec![], vec![hit], None);
        let c = b.finish().unwrap();
        let res = QRank::new(QRankConfig::default().with_lambdas(0.4, 0.6, 0.0)).run(&c);
        let s = &res.article_scores;
        assert!(
            s[7] > s[8],
            "venue prestige must lift the good-venue newcomer ({} vs {})",
            s[7],
            s[8]
        );
    }

    #[test]
    fn author_signal_lifts_new_articles_by_strong_authors() {
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        let star = b.author("Star");
        let newbie = b.author("Newbie");
        let hit = b.add_article("hit", 1990, v, vec![star], vec![], None);
        for i in 0..6 {
            let citer = b.author(&format!("c{i}"));
            b.add_article(&format!("citer{i}"), 1995 + i, v, vec![citer], vec![hit], None);
        }
        b.add_article("star-new", 2010, v, vec![star], vec![], None);
        b.add_article("newbie-new", 2010, v, vec![newbie], vec![], None);
        let c = b.finish().unwrap();
        let res = QRank::new(QRankConfig::default().with_lambdas(0.4, 0.0, 0.6)).run(&c);
        let s = &res.article_scores;
        assert!(
            s[7] > s[8],
            "author prestige must lift the star's new article ({} vs {})",
            s[7],
            s[8]
        );
        assert!(res.author_scores[0] > res.author_scores[1]);
    }

    #[test]
    fn cold_start_articles_get_nonzero_scores() {
        // Pure citation methods give fresh uncited articles only the
        // teleport floor; QRank must give them strictly more when their
        // venue/authors have standing.
        let c = Preset::Tiny.generate(3);
        let res = QRank::default().run(&c);
        let last_year = c.year_range().unwrap().1;
        let fresh: Vec<usize> =
            c.articles().iter().filter(|a| a.year == last_year).map(|a| a.id.index()).collect();
        assert!(!fresh.is_empty());
        for &i in &fresh {
            assert!(res.article_scores[i] > 0.0);
        }
    }

    #[test]
    fn deterministic() {
        let c = Preset::Tiny.generate(4);
        let a = QRank::default().rank(&c);
        let b = QRank::default().rank(&c);
        assert_eq!(a, b);
    }

    #[test]
    fn threads_do_not_change_result() {
        let c = Preset::Tiny.generate(5);
        let seq = QRank::new(QRankConfig::default().with_threads(1)).rank(&c);
        let par = QRank::new(QRankConfig::default().with_threads(4)).rank(&c);
        assert!(l1_distance(&seq, &par) < 1e-9);
    }

    #[test]
    fn empty_corpus() {
        let c = CorpusBuilder::new().finish().unwrap();
        let res = QRank::default().run(&c);
        assert!(res.article_scores.is_empty());
        assert!(res.outer.converged);
    }

    #[test]
    fn corpus_without_authors_or_venue_citations() {
        // One venue, no authors, straight citation chain: the venue/author
        // terms degrade gracefully (venue term becomes uniform-ish over the
        // single venue, author term all-zero and is renormalized away).
        let mut b = CorpusBuilder::new();
        let v = b.venue("Only");
        let a0 = b.add_article("a0", 1990, v, vec![], vec![], None);
        let a1 = b.add_article("a1", 1995, v, vec![], vec![a0], None);
        b.add_article("a2", 2000, v, vec![], vec![a1], None);
        let c = b.finish().unwrap();
        let res = QRank::default().run(&c);
        assert_distribution(&res.article_scores);
        assert!(res.article_scores[0] > res.article_scores[2]);
    }

    #[test]
    fn zero_mass_warm_start_is_dropped() {
        let c = Preset::Tiny.generate(8);
        let cold = QRank::default().run(&c);
        let warm = QRank::default().run_warm(&c, Some(vec![0.0; c.num_articles()]));
        assert_eq!(cold.article_scores, warm.article_scores);
        // Wrong-length warm start is also dropped rather than panicking.
        let short = QRank::default().run_warm(&c, Some(vec![1.0; 3]));
        assert_eq!(cold.article_scores, short.article_scores);
    }

    #[test]
    fn good_warm_start_converges_faster() {
        let c = Preset::Tiny.generate(8);
        let cold = QRank::default().run(&c);
        let warm = QRank::default().run_warm(&c, Some(cold.article_scores.clone()));
        assert!(
            warm.twpr_diagnostics.iterations <= cold.twpr_diagnostics.iterations,
            "warm {} vs cold {}",
            warm.twpr_diagnostics.iterations,
            cold.twpr_diagnostics.iterations
        );
        let diff = l1_distance(&warm.article_scores, &cold.article_scores);
        assert!(diff < 1e-6, "warm and cold answers must agree, diff {diff}");
    }

    #[test]
    fn outer_residuals_shrink() {
        let c = Preset::Tiny.generate(6);
        let res = QRank::new(QRankConfig {
            twpr: TwprConfig::default(),
            outer_tol: 0.0, // force full run
            outer_max_iter: 30,
            ..Default::default()
        })
        .run(&c);
        let r = &res.outer.residuals;
        assert!(r.len() >= 10);
        assert!(r[r.len() - 1] < r[0], "outer fixpoint should contract: {r:?}");
    }
}
