//! Ablation variants of QRank (R-Table 5).
//!
//! Each variant disables exactly one design decision so the benches can
//! attribute accuracy to components:
//!
//! * **NoVenue** — λ_V redistributed to λ_P; venue layer unused.
//! * **NoAuthor** — λ_U redistributed to λ_P; author layer unused.
//! * **NoTimeDecay** — ρ = τ = 0; citation edges unweighted, uniform jump.
//! * **CitationOnly** — λ = (1, 0, 0): bare TWPR.
//! * **PlainPageRank** — all of the above off: classic PageRank.

use crate::config::QRankConfig;
use crate::engine::{MixParams, QRankEngine, SolveScratch};
use crate::qrank::{QRank, QRankResult};
use scholar_corpus::Corpus;
use scholar_rank::Ranker;

/// A named ablation of the full model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ablation {
    /// The full model (no ablation) — baseline row of R-Table 5.
    Full,
    /// Venue layer removed.
    NoVenue,
    /// Author layer removed.
    NoAuthor,
    /// Time decay removed (ρ = τ = 0).
    NoTimeDecay,
    /// Age-adaptive weighting *added* (σ = 3): the design alternative the
    /// default deliberately does not use (see `QRankConfig::maturity_years`).
    AdaptiveMix,
    /// Venue and author layers removed (bare TWPR).
    CitationOnly,
    /// Everything removed: plain PageRank.
    PlainPageRank,
}

impl Ablation {
    /// All variants in table order.
    pub fn all() -> [Ablation; 7] {
        [
            Ablation::Full,
            Ablation::NoVenue,
            Ablation::NoAuthor,
            Ablation::NoTimeDecay,
            Ablation::AdaptiveMix,
            Ablation::CitationOnly,
            Ablation::PlainPageRank,
        ]
    }

    /// Display name for tables.
    pub fn name(self) -> &'static str {
        match self {
            Ablation::Full => "QRank (full)",
            Ablation::NoVenue => "  - venue layer",
            Ablation::NoAuthor => "  - author layer",
            Ablation::NoTimeDecay => "  - time decay",
            Ablation::AdaptiveMix => "  + age-adaptive mix",
            Ablation::CitationOnly => "  - both layers (TWPR)",
            Ablation::PlainPageRank => "  - everything (PageRank)",
        }
    }

    /// Apply this ablation to a base configuration.
    pub fn apply(self, base: &QRankConfig) -> QRankConfig {
        let mut cfg = base.clone();
        match self {
            Ablation::Full => {}
            Ablation::NoVenue => {
                cfg.lambda_article += cfg.lambda_venue;
                cfg.lambda_venue = 0.0;
            }
            Ablation::NoAuthor => {
                cfg.lambda_article += cfg.lambda_author;
                cfg.lambda_author = 0.0;
            }
            Ablation::NoTimeDecay => {
                cfg.twpr.rho = 0.0;
                cfg.twpr.tau = 0.0;
            }
            Ablation::AdaptiveMix => {
                cfg.maturity_years = 3.0;
            }
            Ablation::CitationOnly => {
                cfg.lambda_article = 1.0;
                cfg.lambda_venue = 0.0;
                cfg.lambda_author = 0.0;
            }
            Ablation::PlainPageRank => {
                cfg.lambda_article = 1.0;
                cfg.lambda_venue = 0.0;
                cfg.lambda_author = 0.0;
                cfg.twpr.rho = 0.0;
                cfg.twpr.tau = 0.0;
            }
        }
        cfg.assert_valid();
        cfg
    }

    /// Rank a corpus under this ablation of `base`.
    pub fn rank(self, base: &QRankConfig, corpus: &Corpus) -> Vec<f64> {
        QRank::new(self.apply(base)).rank(corpus)
    }

    /// Run every ablation of `base` over one corpus, sharing prepared
    /// [`QRankEngine`]s between variants that agree structurally.
    ///
    /// Only `NoTimeDecay` and `PlainPageRank` change structural
    /// parameters (they zero ρ/τ), so the seven variants need just two
    /// engine builds instead of seven full runs — the graph derivation
    /// and structural walks dominate, making the shared sweep several
    /// times faster than per-variant [`Ablation::rank`] calls.
    pub fn sweep(base: &QRankConfig, corpus: &Corpus) -> Vec<(Ablation, QRankResult)> {
        let mut engines: Vec<QRankEngine> = Vec::new();
        let mut scratch = SolveScratch::new();
        Ablation::all()
            .into_iter()
            .map(|ab| {
                let cfg = ab.apply(base);
                let engine = match engines.iter().position(|e| e.supports(&cfg)) {
                    Some(i) => &engines[i],
                    None => {
                        engines.push(QRankEngine::build(corpus, &cfg));
                        engines.last().unwrap()
                    }
                };
                let res = engine.solve_with(&MixParams::from_config(&cfg), None, &mut scratch);
                (ab, res)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scholar_corpus::generator::Preset;
    use scholar_rank::{PageRank, TimeWeightedPageRank, TwprConfig};
    use sgraph::stochastic::l1_distance;

    #[test]
    fn all_variants_produce_valid_configs() {
        let base = QRankConfig::default();
        for ab in Ablation::all() {
            let cfg = ab.apply(&base);
            cfg.assert_valid();
            assert!(!ab.name().is_empty());
        }
    }

    #[test]
    fn plain_pagerank_ablation_matches_pagerank() {
        let c = Preset::Tiny.generate(7);
        let ab = Ablation::PlainPageRank.rank(&QRankConfig::default(), &c);
        let pr = PageRank::default().rank(&c);
        assert!(l1_distance(&ab, &pr) < 1e-9);
    }

    #[test]
    fn citation_only_matches_twpr() {
        let c = Preset::Tiny.generate(7);
        let base = QRankConfig::default();
        let ab = Ablation::CitationOnly.rank(&base, &c);
        let twpr = TimeWeightedPageRank::new(TwprConfig::default()).rank(&c);
        assert!(l1_distance(&ab, &twpr) < 1e-9);
    }

    #[test]
    fn ablations_actually_change_the_ranking() {
        let c = Preset::Tiny.generate(7);
        let base = QRankConfig::default();
        let full = Ablation::Full.rank(&base, &c);
        for ab in
            [Ablation::NoVenue, Ablation::NoAuthor, Ablation::NoTimeDecay, Ablation::AdaptiveMix]
        {
            let scores = ab.rank(&base, &c);
            assert!(
                l1_distance(&full, &scores) > 1e-6,
                "{:?} should differ from the full model",
                ab
            );
        }
    }

    #[test]
    fn shared_engine_sweep_matches_per_variant_runs() {
        let c = Preset::Tiny.generate(11);
        let base = QRankConfig::default();
        let swept = Ablation::sweep(&base, &c);
        assert_eq!(swept.len(), 7);
        for (ab, res) in &swept {
            let fresh = QRank::new(ab.apply(&base)).run(&c);
            let diff = l1_distance(&res.article_scores, &fresh.article_scores);
            assert!(diff <= 1e-12, "{ab:?} differs from fresh run by {diff}");
        }
    }

    #[test]
    fn lambda_mass_is_preserved() {
        let base = QRankConfig::default();
        for ab in Ablation::all() {
            let cfg = ab.apply(&base);
            let sum = cfg.lambda_article + cfg.lambda_venue + cfg.lambda_author;
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }
}
