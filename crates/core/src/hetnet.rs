//! The heterogeneous academic network QRank walks over.
//!
//! Built once per `(corpus, config)` pair; all five derived structures
//! share the same exponential citation-age decay `exp(-ρ·Δt)` so the time
//! model is consistent across layers (DESIGN.md §2.2).

use crate::config::QRankConfig;
use scholar_corpus::Corpus;
use scholar_rank::{RankContext, TimeWeightedPageRank};
use sgraph::{Bipartite, CsrGraph};

/// All derived graphs of a corpus under one decay configuration.
#[derive(Debug, Clone)]
pub struct HetNet {
    /// Article citation graph, edge weight `exp(-ρ·citation_age)`.
    pub citation: CsrGraph,
    /// Aggregated venue citation graph (decayed weights summed, venue
    /// self-loops dropped).
    pub venue_graph: CsrGraph,
    /// Aggregated author citation graph (decayed × byline weights summed,
    /// self-citations dropped per config).
    pub author_graph: CsrGraph,
    /// Author ↔ article bipartite with harmonic byline weights.
    pub authorship: Bipartite,
    /// Venue ↔ article bipartite with unit weights.
    pub publication: Bipartite,
}

impl HetNet {
    /// Build the network from a corpus.
    pub fn build(corpus: &Corpus, config: &QRankConfig) -> Self {
        let rho = config.twpr.rho;
        let decay = |citing: &scholar_corpus::Article, cited: &scholar_corpus::Article| {
            TimeWeightedPageRank::edge_weight(rho, (citing.year - cited.year) as f64)
        };
        HetNet {
            citation: corpus.weighted_citation_graph(decay),
            venue_graph: corpus.venue_graph(decay),
            author_graph: corpus.author_graph(decay, config.drop_self_citations),
            authorship: corpus.authorship_bipartite(),
            publication: corpus.publication_bipartite(),
        }
    }

    /// [`HetNet::build`] against a prepared [`RankContext`]: the decayed
    /// citation graph and both bipartites come from the context's caches
    /// (a clone of an already-derived structure instead of a re-derivation
    /// from the article table). The venue/author supernode graphs are
    /// QRank-specific aggregations and are still built here.
    pub fn build_from_ctx(ctx: &RankContext, config: &QRankConfig) -> Self {
        let rho = config.twpr.rho;
        let decay = |citing: scholar_corpus::Year, cited: scholar_corpus::Year| {
            TimeWeightedPageRank::edge_weight(rho, (citing - cited) as f64)
        };
        HetNet {
            citation: ctx.decayed_citation(rho).graph.clone(),
            venue_graph: ctx.venue_graph_with(decay),
            author_graph: ctx.author_graph_with(decay, config.drop_self_citations),
            authorship: ctx.authorship().clone(),
            publication: ctx.publication().clone(),
        }
    }

    /// Number of articles.
    pub fn num_articles(&self) -> usize {
        self.citation.len()
    }

    /// Number of venues.
    pub fn num_venues(&self) -> usize {
        self.venue_graph.len()
    }

    /// Number of authors.
    pub fn num_authors(&self) -> usize {
        self.author_graph.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scholar_corpus::CorpusBuilder;

    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        let v0 = b.venue("V0");
        let v1 = b.venue("V1");
        let u0 = b.author("U0");
        let u1 = b.author("U1");
        let a0 = b.add_article("a0", 1990, v0, vec![u0], vec![], None);
        let a1 = b.add_article("a1", 2000, v0, vec![u0, u1], vec![a0], None);
        b.add_article("a2", 2010, v1, vec![u1], vec![a0, a1], None);
        b.finish().unwrap()
    }

    #[test]
    fn shapes_match_corpus() {
        let c = corpus();
        let net = HetNet::build(&c, &QRankConfig::default());
        assert_eq!(net.num_articles(), 3);
        assert_eq!(net.num_venues(), 2);
        assert_eq!(net.num_authors(), 2);
        assert_eq!(net.citation.num_edges(), 3);
        assert_eq!(net.authorship.num_edges(), 4);
        assert_eq!(net.publication.num_edges(), 3);
    }

    #[test]
    fn decay_is_consistent_across_layers() {
        let c = corpus();
        let cfg = QRankConfig::default().with_rho(0.1);
        let net = HetNet::build(&c, &cfg);
        // Citation a1 -> a0 spans 10 years.
        let w = net.citation.edge_weight(sgraph::NodeId(1), sgraph::NodeId(0)).unwrap();
        assert!((w - (-1.0f64).exp()).abs() < 1e-12);
        // Venue edge v1 -> v0 aggregates a2's two cross-venue citations:
        // a2->a0 spans 20y, a2->a1 spans 10y.
        let vw = net.venue_graph.edge_weight(sgraph::NodeId(1), sgraph::NodeId(0)).unwrap();
        assert!((vw - ((-2.0f64).exp() + (-1.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn rho_zero_gives_unit_weights() {
        let c = corpus();
        let cfg = QRankConfig::default().with_rho(0.0);
        let net = HetNet::build(&c, &cfg);
        assert_eq!(net.citation.total_weight(), 3.0);
    }

    #[test]
    fn self_citation_config_respected() {
        let c = corpus();
        let keep = QRankConfig { drop_self_citations: false, ..Default::default() };
        let net_keep = HetNet::build(&c, &keep);
        let net_drop = HetNet::build(&c, &QRankConfig::default());
        // a1 [u0,u1] cites a0 [u0]: u0->u0 self-citation exists only when kept.
        assert!(net_keep.author_graph.has_edge(sgraph::NodeId(0), sgraph::NodeId(0)));
        assert!(!net_drop.author_graph.has_edge(sgraph::NodeId(0), sgraph::NodeId(0)));
    }
}
