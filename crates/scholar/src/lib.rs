#![warn(missing_docs)]

//! # scholar — the full qrank stack behind one import
//!
//! A facade over the five crates of the stack. Downstream users depend on
//! this one crate and get:
//!
//! * [`corpus`] — data model, synthetic generation, loaders
//!   (re-export of `scholar-corpus`).
//! * [`rank`] — the baseline rankers (re-export of `scholar-rank`).
//! * [`core`] — the paper's method (re-export of the `qrank` crate).
//! * [`eval`] — ground truth, metrics, experiment harness
//!   (re-export of `scholar-eval`).
//! * [`graph`] — the underlying graph substrate (re-export of `sgraph`).
//! * [`serve`] — the query-serving subsystem: filtered top-k index,
//!   hot-swap layer, HTTP server (re-export of `scholar-serve`).
//!
//! The most common items are additionally re-exported at the top level.
//!
//! ```
//! use scholar::{Preset, QRank, Ranker};
//!
//! let corpus = Preset::Tiny.generate(42);
//! let scores = QRank::default().rank(&corpus);
//! let best = scholar::rank::scores::top_k(&scores, 3);
//! assert_eq!(best.len(), 3);
//! ```

pub use qrank as core;
pub use scholar_corpus as corpus;
pub use scholar_eval as eval;
pub use scholar_rank as rank;
pub use scholar_serve as serve;
pub use sgraph as graph;

pub use qrank::{
    Ablation, ColdStartScorer, MixParams, QRank, QRankConfig, QRankEngine, QRankResult,
};
pub use scholar_corpus::{colstore::ColStore, Corpus, CorpusBuilder, GeneratorConfig, Preset};
pub use scholar_eval::GroundTruth;
pub use scholar_rank::{
    CitationCount, CiteRank, FutureRank, Hits, PRank, PageRank, Ranker, Storage,
    TimeWeightedPageRank,
};

/// The full comparison suite used by the R-Tables: every baseline plus
/// QRank, in table order.
pub fn evaluation_rankers() -> Vec<Box<dyn Ranker>> {
    vec![
        Box::new(CitationCount),
        Box::new(PageRank::default()),
        Box::new(Hits::default()),
        Box::new(CiteRank::default()),
        Box::new(TimeWeightedPageRank::default()),
        Box::new(FutureRank::default()),
        Box::new(PRank::default()),
        Box::new(QRank::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_reexports_work_together() {
        let corpus = Preset::Tiny.generate(1);
        for ranker in evaluation_rankers() {
            let scores = ranker.rank(&corpus);
            assert_eq!(scores.len(), corpus.num_articles());
            assert!(
                (scores.iter().sum::<f64>() - 1.0).abs() < 1e-6,
                "{} must emit a distribution",
                ranker.name()
            );
        }
    }

    #[test]
    fn ranker_suite_has_unique_names() {
        let names: Vec<String> = evaluation_rankers().iter().map(|r| r.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate ranker names: {names:?}");
        assert_eq!(names.last().map(String::as_str), Some("QRank"));
    }
}
