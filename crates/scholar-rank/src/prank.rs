//! P-Rank (Yan, Ding & Sugimoto, JASIST 2011): one random walk over the
//! combined paper–author–venue network.
//!
//! The heterogeneous graph has `P + A + V` nodes:
//!
//! * paper → cited paper (citation edges, weight `lambda_cite` split over
//!   the reference list),
//! * paper ↔ author (byline-position weights),
//! * paper ↔ venue (unit weight),
//!
//! and PageRank runs on the whole thing at once; the paper slice of the
//! stationary distribution, renormalized, is the article ranking. Unlike
//! QRank there is no time modeling and no two-level structure — prestige
//! simply diffuses through the mixed graph.

use crate::context::RankContext;
use crate::diagnostics::Diagnostics;
use crate::pagerank::{pagerank_on_graph, PageRankConfig};
use crate::ranker::Ranker;
use crate::telemetry::Stopwatch;
use crate::telemetry::{RankOutput, SolveTelemetry};
use scholar_corpus::model::author_position_weights;
use scholar_corpus::Corpus;
use sgraph::{GraphBuilder, JumpVector, NodeId};

/// P-Rank parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PRankConfig {
    /// Underlying power-iteration parameters.
    pub pagerank: PageRankConfig,
    /// Relative out-weight a paper sends into its reference list.
    pub lambda_cite: f64,
    /// Relative out-weight a paper sends to its authors.
    pub lambda_author: f64,
    /// Relative out-weight a paper sends to its venue.
    pub lambda_venue: f64,
}

impl Default for PRankConfig {
    fn default() -> Self {
        PRankConfig {
            pagerank: PageRankConfig::default(),
            lambda_cite: 0.6,
            lambda_author: 0.25,
            lambda_venue: 0.15,
        }
    }
}

impl PRankConfig {
    /// Panics on an invalid configuration.
    pub fn assert_valid(&self) {
        self.pagerank.assert_valid();
        assert!(
            self.lambda_cite >= 0.0 && self.lambda_author >= 0.0 && self.lambda_venue >= 0.0,
            "layer weights must be >= 0"
        );
        assert!(
            self.lambda_cite + self.lambda_author + self.lambda_venue > 0.0,
            "at least one layer weight must be positive"
        );
    }
}

/// The P-Rank baseline.
#[derive(Debug, Clone, Default)]
pub struct PRank {
    /// Parameters.
    pub config: PRankConfig,
}

/// Scores for all three entity classes plus convergence info.
#[derive(Debug, Clone)]
pub struct PRankResult {
    /// Article scores (renormalized to sum 1).
    pub article_scores: Vec<f64>,
    /// Author scores (renormalized to sum 1).
    pub author_scores: Vec<f64>,
    /// Venue scores (renormalized to sum 1).
    pub venue_scores: Vec<f64>,
    /// Convergence diagnostics of the combined walk.
    pub diagnostics: Diagnostics,
}

impl PRank {
    /// P-Rank with the given configuration.
    pub fn new(config: PRankConfig) -> Self {
        config.assert_valid();
        PRank { config }
    }

    /// Run the combined walk, returning scores for all entity classes.
    pub fn run(&self, corpus: &Corpus) -> PRankResult {
        self.run_store(corpus)
    }

    /// [`PRank::run`] against any backing store (in-RAM corpus or mmap
    /// colstore). Both replay the identical edge-insertion sequence, so
    /// the combined graph — and therefore every score — is bit-identical
    /// across backends.
    pub fn run_store(&self, store: &dyn crate::storage::Storage) -> PRankResult {
        let cfg = &self.config;
        cfg.assert_valid();
        let np = store.num_articles() as u32;
        let na = store.num_authors() as u32;
        let nv = store.num_venues() as u32;
        if np == 0 {
            return PRankResult {
                article_scores: Vec::new(),
                author_scores: vec![0.0; na as usize],
                venue_scores: vec![0.0; nv as usize],
                diagnostics: Diagnostics::closed_form(),
            };
        }
        let total = np + na + nv;
        let paper = |p: u32| NodeId(p);
        let author = |a: u32| NodeId(np + a);
        let venue = |v: u32| NodeId(np + na + v);

        let mut b = GraphBuilder::new(total).self_loops(false);
        store.for_each_article(&mut |art| {
            let p = art.id;
            // Citations: lambda_cite split across the reference list.
            if !art.refs.is_empty() {
                let w = cfg.lambda_cite / art.refs.len() as f64;
                for &r in art.refs {
                    b.add_edge(paper(p), paper(r), w);
                }
            }
            // Authors: lambda_author split by byline position, symmetric.
            if !art.authors.is_empty() {
                let pos = author_position_weights(art.authors.len());
                for (&u, &pw) in art.authors.iter().zip(&pos) {
                    b.add_edge(paper(p), author(u), cfg.lambda_author * pw);
                    b.add_edge(author(u), paper(p), pw);
                }
            }
            // Venue: symmetric unit link scaled by lambda_venue.
            b.add_edge(paper(p), venue(art.venue), cfg.lambda_venue);
            b.add_edge(venue(art.venue), paper(p), 1.0);
        });
        let g = b.build();
        let (scores, diagnostics) = pagerank_on_graph(&g, &cfg.pagerank, JumpVector::Uniform);

        let mut article_scores = scores[..np as usize].to_vec();
        let mut author_scores = scores[np as usize..(np + na) as usize].to_vec();
        let mut venue_scores = scores[(np + na) as usize..].to_vec();
        sgraph::stochastic::normalize_l1(&mut article_scores);
        sgraph::stochastic::normalize_l1(&mut author_scores);
        sgraph::stochastic::normalize_l1(&mut venue_scores);
        PRankResult { article_scores, author_scores, venue_scores, diagnostics }
    }
}

impl Ranker for PRank {
    fn name(&self) -> String {
        "P-Rank".into()
    }

    fn solve_ctx(&self, ctx: &RankContext) -> RankOutput {
        self.config.assert_valid();
        let cfg = &self.config;
        let key = format!(
            "prank(lc={},la={},lv={},d={},tol={},max={})",
            cfg.lambda_cite,
            cfg.lambda_author,
            cfg.lambda_venue,
            cfg.pagerank.damping,
            cfg.pagerank.tol,
            cfg.pagerank.max_iter
        );
        // The combined paper/author/venue graph is P-Rank-specific (it
        // depends on the layer weights), so it is not shared through the
        // context; repeated solves are served by the memo instead.
        let solved = Stopwatch::start();
        let (scores, diag, cached) = ctx.cached_solve(&key, || {
            let res = self.run_store(ctx.store());
            (res.article_scores, res.diagnostics)
        });
        let telemetry = SolveTelemetry::timed(&diag, 0.0, solved.secs(), cached);
        RankOutput { scores, telemetry }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scholar_corpus::generator::Preset;
    use scholar_corpus::CorpusBuilder;

    #[test]
    fn converges_and_normalizes_all_classes() {
        let c = Preset::Tiny.generate(6);
        let res = PRank::default().run(&c);
        assert!(res.diagnostics.converged);
        for v in [&res.article_scores, &res.author_scores, &res.venue_scores] {
            assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(v.iter().all(|&x| x >= 0.0));
        }
        assert_eq!(res.article_scores.len(), c.num_articles());
        assert_eq!(res.author_scores.len(), c.num_authors());
        assert_eq!(res.venue_scores.len(), c.num_venues());
    }

    #[test]
    fn cited_article_outranks_citing() {
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        let u = b.author("U");
        let a0 = b.add_article("cited", 1990, v, vec![u], vec![], None);
        b.add_article("citing", 2000, v, vec![u], vec![a0], None);
        let c = b.finish().unwrap();
        let s = PRank::default().rank(&c);
        assert!(s[0] > s[1]);
    }

    #[test]
    fn venue_prestige_flows_to_articles() {
        // Two isolated (uncited) new articles; one in a venue whose other
        // articles are heavily cited, one in a fresh venue.
        let mut b = CorpusBuilder::new();
        let good = b.venue("Good");
        let meh = b.venue("Meh");
        let hit = b.add_article("hit", 1990, good, vec![], vec![], None);
        for i in 0..6 {
            b.add_article(&format!("c{i}"), 1995 + i, meh, vec![], vec![hit], None);
        }
        b.add_article("new-good", 2010, good, vec![], vec![], None);
        let fresh = b.venue("Fresh");
        b.add_article("new-meh-venue", 2010, fresh, vec![], vec![], None);
        let c = b.finish().unwrap();
        let s = PRank::default().rank(&c);
        let new_good = s[7];
        let new_fresh = s[8];
        assert!(
            new_good > new_fresh,
            "venue prestige should lift the uncited article ({new_good} vs {new_fresh})"
        );
    }

    #[test]
    fn author_scores_track_their_articles() {
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        let star = b.author("Star");
        let newbie = b.author("Newbie");
        let hit = b.add_article("hit", 1990, v, vec![star], vec![], None);
        for i in 0..5 {
            b.add_article(&format!("c{i}"), 2000 + i, v, vec![newbie], vec![hit], None);
        }
        let c = b.finish().unwrap();
        let res = PRank::default().run(&c);
        assert!(res.author_scores[0] > res.author_scores[1]);
    }

    #[test]
    fn zero_venue_weight_disconnects_venues() {
        let c = Preset::Tiny.generate(3);
        let cfg = PRankConfig { lambda_venue: 0.0, ..Default::default() };
        let res = PRank::new(cfg).run(&c);
        // Venues still get visited (venue -> paper edges exist) but papers
        // never push into them... they receive no mass from papers, and the
        // jump gives them mass which they push out. Scores exist and are sane.
        assert!((res.article_scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn all_zero_layers_panic() {
        PRank::new(PRankConfig {
            lambda_cite: 0.0,
            lambda_author: 0.0,
            lambda_venue: 0.0,
            ..Default::default()
        });
    }

    #[test]
    fn empty_corpus() {
        let c = CorpusBuilder::new().finish().unwrap();
        let res = PRank::default().run(&c);
        assert!(res.article_scores.is_empty());
    }
}
