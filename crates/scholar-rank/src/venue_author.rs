//! Venue and author leaderboards derived from article scores.
//!
//! These are the aggregation primitives the examples use to print "top
//! venues / top authors" tables, and the simplest form of the signals
//! QRank folds back into article ranking.

use crate::context::RankContext;
use scholar_corpus::{Corpus, Year};

/// Mean article score per venue (0 for venues with no articles).
pub fn venue_scores_from_articles(corpus: &Corpus, article_scores: &[f64]) -> Vec<f64> {
    venue_scores_from_articles_ctx(&RankContext::new(corpus), article_scores)
}

/// [`venue_scores_from_articles`] against a prepared context, reusing its
/// cached publication bipartite.
pub fn venue_scores_from_articles_ctx(ctx: &RankContext, article_scores: &[f64]) -> Vec<f64> {
    assert_eq!(article_scores.len(), ctx.num_articles(), "score length mismatch");
    ctx.publication().aggregate_to_left(article_scores)
}

/// Byline-weighted mean article score per author (0 for authors with no
/// articles). First authors weigh most (harmonic weights).
pub fn author_scores_from_articles(corpus: &Corpus, article_scores: &[f64]) -> Vec<f64> {
    author_scores_from_articles_ctx(&RankContext::new(corpus), article_scores)
}

/// [`author_scores_from_articles`] against a prepared context, reusing its
/// cached authorship bipartite.
pub fn author_scores_from_articles_ctx(ctx: &RankContext, article_scores: &[f64]) -> Vec<f64> {
    assert_eq!(article_scores.len(), ctx.num_articles(), "score length mismatch");
    ctx.authorship().aggregate_to_left(article_scores)
}

/// Venue scores restricted to a publication-year window — prestige of a
/// venue "in its era", which avoids a venue coasting on decades-old hits.
pub fn venue_scores_in_window(
    corpus: &Corpus,
    article_scores: &[f64],
    from: Year,
    to: Year,
) -> Vec<f64> {
    assert_eq!(article_scores.len(), corpus.num_articles(), "score length mismatch");
    let mut sums = vec![0.0f64; corpus.num_venues()];
    let mut counts = vec![0usize; corpus.num_venues()];
    for a in corpus.articles() {
        if a.year >= from && a.year <= to {
            sums[a.venue.index()] += article_scores[a.id.index()];
            counts[a.venue.index()] += 1;
        }
    }
    for (s, &c) in sums.iter_mut().zip(&counts) {
        if c > 0 {
            *s /= c as f64;
        }
    }
    sums
}

/// The classic journal impact factor, simulated on the corpus: for each
/// venue, citations made by articles published *in* `year` to the venue's
/// articles published in the preceding `window` years, divided by the
/// number of such articles. (`window = 2` gives the standard 2-year JIF.)
///
/// Included as the bibliometric reference point the venue-prestige
/// leaderboards are compared against; venues with no eligible articles
/// score 0.
pub fn impact_factor(corpus: &Corpus, year: Year, window: i32) -> Vec<f64> {
    assert!(window > 0, "window must be positive");
    let from = year - window;
    let to = year - 1;
    let mut eligible = vec![0usize; corpus.num_venues()];
    for a in corpus.articles() {
        if a.year >= from && a.year <= to {
            eligible[a.venue.index()] += 1;
        }
    }
    let mut cites = vec![0usize; corpus.num_venues()];
    for citing in corpus.articles() {
        if citing.year != year {
            continue;
        }
        for &r in &citing.references {
            let cited = corpus.article(r);
            if cited.year >= from && cited.year <= to {
                cites[cited.venue.index()] += 1;
            }
        }
    }
    cites
        .iter()
        .zip(&eligible)
        .map(|(&c, &e)| if e > 0 { c as f64 / e as f64 } else { 0.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scholar_corpus::CorpusBuilder;

    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        let v0 = b.venue("Good");
        let v1 = b.venue("Meh");
        let u0 = b.author("Solo");
        let u1 = b.author("Duo1");
        let u2 = b.author("Duo2");
        b.add_article("a0", 2000, v0, vec![u0], vec![], None);
        b.add_article("a1", 2005, v0, vec![u1, u2], vec![], None);
        b.add_article("a2", 2010, v1, vec![u2], vec![], None);
        b.finish().unwrap()
    }

    #[test]
    fn venue_mean() {
        let c = corpus();
        let scores = [0.6, 0.3, 0.1];
        let v = venue_scores_from_articles(&c, &scores);
        assert!((v[0] - 0.45).abs() < 1e-12);
        assert!((v[1] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn author_weighted_mean() {
        let c = corpus();
        let scores = [0.6, 0.3, 0.1];
        let a = author_scores_from_articles(&c, &scores);
        assert!((a[0] - 0.6).abs() < 1e-12); // Solo: only a0
        assert!((a[1] - 0.3).abs() < 1e-12); // Duo1: only a1
                                             // Duo2: weighted mean of a1 (weight 1/3) and a2 (weight 1):
                                             // (1/3·0.3 + 1·0.1) / (1/3 + 1) = 0.2/1.3333 = 0.15
        assert!((a[2] - 0.15).abs() < 1e-12);
    }

    #[test]
    fn impact_factor_classic_definition() {
        // v0 publishes a0 (2008), a1 (2009). In 2010, two articles cite
        // a0 and one cites a1: JIF(v0, 2010, 2y) = 3 / 2 = 1.5.
        let mut b = CorpusBuilder::new();
        let v0 = b.venue("v0");
        let v1 = b.venue("v1");
        let a0 = b.add_article("a0", 2008, v0, vec![], vec![], None);
        let a1 = b.add_article("a1", 2009, v0, vec![], vec![], None);
        // Old article: outside the window, citations to it don't count.
        let old = b.add_article("old", 2000, v0, vec![], vec![], None);
        b.add_article("c1", 2010, v1, vec![], vec![a0, a1, old], None);
        b.add_article("c2", 2010, v1, vec![], vec![a0], None);
        let c = b.finish().unwrap();
        let jif = impact_factor(&c, 2010, 2);
        assert!((jif[0] - 1.5).abs() < 1e-12, "JIF(v0) = {}", jif[0]);
        assert_eq!(jif[1], 0.0, "v1 has no eligible articles");
    }

    #[test]
    fn impact_factor_empty_window_is_zero() {
        let c = corpus();
        let jif = impact_factor(&c, 1900, 2);
        assert!(jif.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn windowed_venue_scores() {
        let c = corpus();
        let scores = [0.6, 0.3, 0.1];
        let v = venue_scores_in_window(&c, &scores, 2004, 2011);
        assert!((v[0] - 0.3).abs() < 1e-12); // only a1 in window
        assert!((v[1] - 0.1).abs() < 1e-12);
        let empty = venue_scores_in_window(&c, &scores, 1980, 1985);
        assert_eq!(empty, vec![0.0, 0.0]);
    }
}
