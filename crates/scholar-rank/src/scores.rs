//! Score-vector utilities shared by rankers and the evaluation harness.

/// Normalize `v` to sum 1 in place; leaves an all-zero vector untouched.
pub fn normalize(v: &mut [f64]) {
    sgraph::stochastic::normalize_l1(v);
}

/// Normalize `v` to sum 1, falling back to the uniform distribution when
/// the vector carries no mass ("no evidence" ⇒ every article equally
/// plausible). This keeps the [`crate::Ranker`] contract — scores always
/// form a distribution — even on degenerate corpora with zero citations.
pub fn normalize_or_uniform(v: &mut [f64]) {
    let s: f64 = v.iter().sum();
    if s > 0.0 {
        for e in v.iter_mut() {
            *e /= s;
        }
    } else if !v.is_empty() {
        let u = 1.0 / v.len() as f64;
        for e in v.iter_mut() {
            *e = u;
        }
    }
}

/// Indices of the `k` largest scores, descending; ties broken by smaller
/// index first (deterministic).
pub fn top_k(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

/// Dense competition ranks (1 = best). Ties share the smallest rank of the
/// tied block ("1224" ranking), matching how published rankings report
/// tied citation counts.
pub fn competition_ranks(scores: &[f64]) -> Vec<usize> {
    let order = top_k(scores, scores.len());
    let mut ranks = vec![0usize; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        for &item in &order[i..=j] {
            ranks[item] = i + 1;
        }
        i = j + 1;
    }
    ranks
}

/// Fractional ranks (average rank within each tie block), the form needed
/// by Spearman correlation.
pub fn fractional_ranks(scores: &[f64]) -> Vec<f64> {
    let order = top_k(scores, scores.len());
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg = (i + 1 + j + 1) as f64 / 2.0;
        for &item in &order[i..=j] {
            ranks[item] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Min-max rescale into [0, 1]; constant vectors map to all-zeros.
pub fn min_max_scale(v: &mut [f64]) {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in v.iter() {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    let span = hi - lo;
    if span <= 0.0 || !span.is_finite() {
        for x in v.iter_mut() {
            *x = 0.0;
        }
    } else {
        for x in v.iter_mut() {
            *x = (*x - lo) / span;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_orders_descending_with_stable_ties() {
        let s = [0.1, 0.5, 0.5, 0.3];
        assert_eq!(top_k(&s, 4), vec![1, 2, 3, 0]);
        assert_eq!(top_k(&s, 2), vec![1, 2]);
        assert_eq!(top_k(&s, 0), Vec::<usize>::new());
        assert_eq!(top_k(&s, 99).len(), 4);
    }

    #[test]
    fn competition_ranks_share_min_rank() {
        let s = [0.1, 0.5, 0.5, 0.3];
        // 0.5s rank 1, 0.3 ranks 3, 0.1 ranks 4.
        assert_eq!(competition_ranks(&s), vec![4, 1, 1, 3]);
    }

    #[test]
    fn fractional_ranks_average_ties() {
        let s = [0.1, 0.5, 0.5, 0.3];
        assert_eq!(fractional_ranks(&s), vec![4.0, 1.5, 1.5, 3.0]);
    }

    #[test]
    fn normalize_and_scale() {
        let mut v = vec![1.0, 3.0];
        normalize(&mut v);
        assert!((v[0] - 0.25).abs() < 1e-12);
        let mut w = vec![2.0, 4.0, 6.0];
        min_max_scale(&mut w);
        assert_eq!(w, vec![0.0, 0.5, 1.0]);
        let mut c = vec![5.0, 5.0];
        min_max_scale(&mut c);
        assert_eq!(c, vec![0.0, 0.0]);
    }

    #[test]
    fn empty_vectors() {
        assert!(top_k(&[], 3).is_empty());
        assert!(competition_ranks(&[]).is_empty());
        assert!(fractional_ranks(&[]).is_empty());
    }
}
