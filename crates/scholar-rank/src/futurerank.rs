//! FutureRank (Sayyadi & Getoor, SDM 2009).
//!
//! FutureRank predicts an article's *future* PageRank by mixing three
//! signals in one fixpoint:
//!
//! ```text
//! Rᴾ = α · (citation propagation of Rᴾ)
//!    + β · (authorship propagation of Rᴬ)
//!    + γ · (recency personalization)
//!    + (1 − α − β − γ) · uniform
//! Rᴬ = authorship propagation of Rᴾ
//! ```
//!
//! The recency vector is `∝ exp(-ρ·(T_now − year))`. Author scores are
//! recomputed from article scores each round (mutual reinforcement over
//! the authorship bipartite), which is the part QRank generalizes to
//! venues as well.

use crate::context::RankContext;
use crate::diagnostics::Diagnostics;
use crate::ranker::Ranker;
use crate::telemetry::Stopwatch;
use crate::telemetry::{RankOutput, SolveTelemetry};
use scholar_corpus::{Corpus, Year};
use sgraph::stochastic::{fixpoint, normalize_l1};
use sgraph::JumpVector;

/// FutureRank parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FutureRankConfig {
    /// Weight of the citation-propagation term (α).
    pub alpha: f64,
    /// Weight of the authorship term (β).
    pub beta: f64,
    /// Weight of the recency-personalization term (γ).
    pub gamma: f64,
    /// Recency rate ρ (per year).
    pub rho: f64,
    /// "Now"; defaults to the corpus's last year.
    pub now: Option<Year>,
    /// L1 convergence tolerance.
    pub tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
}

impl Default for FutureRankConfig {
    fn default() -> Self {
        // α/β/γ follow the original paper's tuned mix; ρ = 0.62/yr is the
        // value reported there.
        FutureRankConfig {
            alpha: 0.4,
            beta: 0.1,
            gamma: 0.3,
            rho: 0.62,
            now: None,
            tol: 1e-10,
            max_iter: 200,
        }
    }
}

impl FutureRankConfig {
    /// Panics on an invalid mixture.
    pub fn assert_valid(&self) {
        assert!(self.alpha >= 0.0 && self.beta >= 0.0 && self.gamma >= 0.0, "weights must be >= 0");
        assert!(
            self.alpha + self.beta + self.gamma <= 1.0 + 1e-12,
            "alpha + beta + gamma must be <= 1"
        );
        assert!(self.rho >= 0.0, "rho must be >= 0");
        assert!(self.max_iter > 0, "need at least one iteration");
    }
}

/// The FutureRank baseline.
#[derive(Debug, Clone, Default)]
pub struct FutureRank {
    /// Parameters.
    pub config: FutureRankConfig,
}

/// Article and author scores plus convergence info.
#[derive(Debug, Clone)]
pub struct FutureRankResult {
    /// Article scores (sum 1).
    pub article_scores: Vec<f64>,
    /// Author scores (sum 1; empty if the corpus has no authors).
    pub author_scores: Vec<f64>,
    /// Convergence diagnostics.
    pub diagnostics: Diagnostics,
}

impl FutureRank {
    /// FutureRank with the given configuration.
    pub fn new(config: FutureRankConfig) -> Self {
        config.assert_valid();
        FutureRank { config }
    }

    /// Run the full fixpoint, returning author scores too.
    pub fn run(&self, corpus: &Corpus) -> FutureRankResult {
        self.run_ctx(&RankContext::new(corpus))
    }

    /// [`FutureRank::run`] against a prepared context: the citation
    /// operator and authorship bipartite come from the shared caches and
    /// the iteration runs on the sgraph fixpoint driver with
    /// preallocated term buffers.
    pub fn run_ctx(&self, ctx: &RankContext) -> FutureRankResult {
        let cfg = &self.config;
        cfg.assert_valid();
        let n = ctx.num_articles();
        if n == 0 {
            return FutureRankResult {
                article_scores: Vec::new(),
                author_scores: Vec::new(),
                diagnostics: Diagnostics::closed_form(),
            };
        }
        let now = cfg.now.unwrap_or_else(|| ctx.now());
        let cite_op = ctx.citation_op();
        let authorship = ctx.authorship();

        // Recency personalization (normalized).
        let mut time_vec: Vec<f64> =
            ctx.ages(now).into_iter().map(|age| (-cfg.rho * age).exp()).collect();
        normalize_l1(&mut time_vec);

        let delta = (1.0 - cfg.alpha - cfg.beta - cfg.gamma).max(0.0);
        let uniform = 1.0 / n as f64;

        let mut author = vec![0.0; ctx.num_authors()];
        let mut cite_term = vec![0.0; n];
        let res = fixpoint(vec![uniform; n], cfg.tol, cfg.max_iter, |p, next| {
            // Author scores from current article scores (mass-conserving
            // distribution over the bipartite), normalized.
            author = authorship.distribute_to_left(p);
            normalize_l1(&mut author);

            // Citation propagation with dangling mass re-emitted uniformly
            // (damping 1 here: the mixture handles teleportation).
            cite_op.apply(p, &mut cite_term, 1.0, &JumpVector::Uniform);

            // Author → article term, normalized to a distribution so β
            // means what it says.
            let mut author_term = authorship.distribute_to_right(&author);
            normalize_l1(&mut author_term);

            for (i, slot) in next.iter_mut().enumerate() {
                *slot = cfg.alpha * cite_term[i]
                    + cfg.beta * author_term[i]
                    + cfg.gamma * time_vec[i]
                    + delta * uniform;
            }
            normalize_l1(next);
        });

        FutureRankResult {
            article_scores: res.scores,
            author_scores: author,
            diagnostics: Diagnostics {
                iterations: res.iterations,
                converged: res.converged,
                residuals: res.residuals,
            },
        }
    }
}

impl Ranker for FutureRank {
    fn name(&self) -> String {
        "FutureRank".into()
    }

    fn solve_ctx(&self, ctx: &RankContext) -> RankOutput {
        self.config.assert_valid();
        let cfg = &self.config;
        let built = Stopwatch::start();
        let _ = ctx.citation_op();
        let _ = ctx.authorship();
        let build_secs = built.secs();
        let key = format!(
            "futurerank(a={},b={},g={},rho={},now={:?},tol={},max={})",
            cfg.alpha, cfg.beta, cfg.gamma, cfg.rho, cfg.now, cfg.tol, cfg.max_iter
        );
        let solved = Stopwatch::start();
        let (scores, diag, cached) = ctx.cached_solve(&key, || {
            let res = self.run_ctx(ctx);
            (res.article_scores, res.diagnostics)
        });
        let telemetry = SolveTelemetry::timed(&diag, build_secs, solved.secs(), cached);
        RankOutput { scores, telemetry }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scholar_corpus::generator::Preset;
    use scholar_corpus::CorpusBuilder;

    #[test]
    fn converges_and_normalizes() {
        let c = Preset::Tiny.generate(6);
        let res = FutureRank::default().run(&c);
        assert!(res.diagnostics.converged);
        assert!((res.article_scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((res.author_scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(res.article_scores.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn gamma_only_reduces_to_recency_ranking() {
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        b.add_article("old", 1990, v, vec![], vec![], None);
        b.add_article("mid", 2005, v, vec![], vec![], None);
        b.add_article("new", 2010, v, vec![], vec![], None);
        let c = b.finish().unwrap();
        let fr = FutureRank::new(FutureRankConfig {
            alpha: 0.0,
            beta: 0.0,
            gamma: 1.0,
            ..Default::default()
        });
        let s = fr.rank(&c);
        assert!(s[2] > s[1] && s[1] > s[0], "pure-γ FutureRank ranks by recency: {s:?}");
    }

    #[test]
    fn good_authors_lift_their_new_articles() {
        // Star author wrote a heavily-cited old article and one brand-new
        // uncited article; a rival new article has a fresh author. With
        // β > 0 the star author's new article must outrank the rival's.
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        let star = b.author("Star");
        let nobody = b.author("Nobody");
        let hit = b.add_article("hit", 1995, v, vec![star], vec![], None);
        for i in 0..8 {
            b.add_article(&format!("citer{i}"), 2000 + i, v, vec![], vec![hit], None);
        }
        b.add_article("star-new", 2010, v, vec![star], vec![hit], None);
        b.add_article("nobody-new", 2010, v, vec![nobody], vec![hit], None);
        let c = b.finish().unwrap();
        let res = FutureRank::new(FutureRankConfig { beta: 0.3, ..Default::default() }).run(&c);
        let star_new = res.article_scores[9];
        let nobody_new = res.article_scores[10];
        assert!(
            star_new > nobody_new,
            "author reputation should lift the new article ({star_new} vs {nobody_new})"
        );
        // And the star author outranks the fresh one.
        assert!(res.author_scores[0] > res.author_scores[1]);
    }

    #[test]
    #[should_panic(expected = "alpha + beta + gamma")]
    fn overweight_mixture_panics() {
        FutureRank::new(FutureRankConfig {
            alpha: 0.6,
            beta: 0.3,
            gamma: 0.3,
            ..Default::default()
        });
    }

    #[test]
    fn empty_corpus() {
        let c = CorpusBuilder::new().finish().unwrap();
        let res = FutureRank::default().run(&c);
        assert!(res.article_scores.is_empty());
        assert!(res.diagnostics.converged);
    }

    #[test]
    fn authorless_corpus_survives_beta() {
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        let a0 = b.add_article("a0", 2000, v, vec![], vec![], None);
        b.add_article("a1", 2005, v, vec![], vec![a0], None);
        let c = b.finish().unwrap();
        let s = FutureRank::default().rank(&c);
        assert_eq!(s.len(), 2);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
