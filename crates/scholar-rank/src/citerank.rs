//! CiteRank (Walker, Xie, Yan & Maslov 2007): "ranking scientific
//! publications using a model of network traffic".
//!
//! A random researcher starts reading at a *recent* paper — the start
//! distribution decays exponentially with article age,
//! `p(start = a) ∝ exp(−age(a)/τ_dir)` — and then follows chains of
//! references, continuing with probability `alpha` at each step. The
//! stationary visit distribution models current reader traffic, which
//! makes CiteRank the classic pre-QRank answer to the old-paper bias and
//! an important baseline: it has the recency-personalized jump but *no*
//! per-edge decay and *no* venue/author layer.

use crate::context::RankContext;
use crate::diagnostics::Diagnostics;
use crate::pagerank::{pagerank_on_op, PageRankConfig};
use crate::ranker::Ranker;
use crate::telemetry::Stopwatch;
use crate::telemetry::{RankOutput, SolveTelemetry};
use scholar_corpus::{Corpus, Year};

/// CiteRank parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CiteRankConfig {
    /// Probability of following a reference at each step (the paper's
    /// α; equivalent to PageRank damping).
    pub alpha: f64,
    /// Characteristic decay time of the start distribution, in years
    /// (the paper's τ_dir; ~2.6 years fit physics corpora).
    pub tau_dir: f64,
    /// "Now"; defaults to the corpus's last year.
    pub now: Option<Year>,
    /// L1 convergence tolerance.
    pub tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
}

impl Default for CiteRankConfig {
    fn default() -> Self {
        CiteRankConfig { alpha: 0.5, tau_dir: 2.6, now: None, tol: 1e-10, max_iter: 200 }
    }
}

impl CiteRankConfig {
    /// Panics on out-of-range parameters.
    pub fn assert_valid(&self) {
        assert!((0.0..1.0).contains(&self.alpha), "alpha must be in [0, 1)");
        assert!(self.tau_dir > 0.0, "tau_dir must be positive");
        assert!(self.max_iter > 0, "need at least one iteration");
    }
}

/// The CiteRank baseline.
#[derive(Debug, Clone, Default)]
pub struct CiteRank {
    /// Parameters.
    pub config: CiteRankConfig,
}

impl CiteRank {
    /// CiteRank with the given configuration.
    pub fn new(config: CiteRankConfig) -> Self {
        config.assert_valid();
        CiteRank { config }
    }

    /// Rank and return convergence diagnostics.
    pub fn rank_with_diagnostics(&self, corpus: &Corpus) -> (Vec<f64>, Diagnostics) {
        let out = self.solve_ctx(&RankContext::new(corpus));
        (out.scores, out.telemetry.diagnostics())
    }
}

impl Ranker for CiteRank {
    fn name(&self) -> String {
        format!("CiteRank(α={:.2},τ={:.1})", self.config.alpha, self.config.tau_dir)
    }

    fn solve_ctx(&self, ctx: &RankContext) -> RankOutput {
        self.config.assert_valid();
        if ctx.num_articles() == 0 {
            return RankOutput::closed_form(Vec::new());
        }
        let now = self.config.now.unwrap_or_else(|| ctx.now());
        let built = Stopwatch::start();
        let op = ctx.citation_op();
        let build_secs = built.secs();
        let key = format!(
            "citerank(alpha={},tau={},now={},tol={},max={})",
            self.config.alpha, self.config.tau_dir, now, self.config.tol, self.config.max_iter
        );
        let solved = Stopwatch::start();
        let (scores, diag, cached) = ctx.cached_solve(&key, || {
            // The start distribution decays with article age: the paper's
            // reader-traffic model. 1/tau_dir plays the role of τ.
            let jump = ctx.recency_jump(1.0 / self.config.tau_dir, now);
            let pr_cfg = PageRankConfig {
                damping: self.config.alpha,
                tol: self.config.tol,
                max_iter: self.config.max_iter,
                threads: 1,
            };
            pagerank_on_op(op, &pr_cfg, jump, None)
        });
        let telemetry = SolveTelemetry::timed(&diag, build_secs, solved.secs(), cached);
        RankOutput { scores, telemetry }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::PageRank;
    use scholar_corpus::generator::Preset;
    use scholar_corpus::CorpusBuilder;

    #[test]
    fn converges_and_normalizes() {
        let c = Preset::Tiny.generate(12);
        let (s, d) = CiteRank::default().rank_with_diagnostics(&c);
        assert!(d.converged);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn recent_uncited_articles_beat_old_uncited_ones() {
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        b.add_article("old-uncited", 1980, v, vec![], vec![], None);
        b.add_article("new-uncited", 2010, v, vec![], vec![], None);
        let c = b.finish().unwrap();
        let s = CiteRank::default().rank(&c);
        assert!(s[1] > s[0], "reader traffic starts at recent papers: {} vs {}", s[1], s[0]);
        // Plain PageRank is indifferent.
        let pr = PageRank::default().rank(&c);
        assert!((pr[0] - pr[1]).abs() < 1e-12);
    }

    #[test]
    fn recently_cited_classic_beats_forgotten_contemporary() {
        // Two 1990 articles; only one is cited by a 2010 paper. Traffic
        // reaches it through the recent paper's references.
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        let alive = b.add_article("alive", 1990, v, vec![], vec![], None);
        b.add_article("forgotten", 1990, v, vec![], vec![], None);
        b.add_article("recent", 2010, v, vec![], vec![alive], None);
        let c = b.finish().unwrap();
        let s = CiteRank::default().rank(&c);
        assert!(s[0] > s[1]);
    }

    #[test]
    fn large_tau_approaches_pagerank_with_same_damping() {
        let c = Preset::Tiny.generate(14);
        let cr = CiteRank::new(CiteRankConfig { tau_dir: 1e7, alpha: 0.85, ..Default::default() })
            .rank(&c);
        let pr = PageRank::default().rank(&c);
        let l1: f64 = cr.iter().zip(&pr).map(|(a, b)| (a - b).abs()).sum();
        assert!(l1 < 1e-4, "tau→∞ should recover PageRank, L1 = {l1}");
    }

    #[test]
    fn shifts_mass_toward_recent_articles() {
        // The defining property of the traffic model: total score mass on
        // recent articles is far larger than under plain PageRank, which
        // structurally starves them (citation edges only point backwards).
        let c = Preset::Tiny.generate(15);
        let (_, last) = c.year_range().unwrap();
        let recent_mass = |scores: &[f64]| -> f64 {
            c.articles().iter().filter(|a| last - a.year < 3).map(|a| scores[a.id.index()]).sum()
        };
        let cr = recent_mass(&CiteRank::default().rank(&c));
        let pr = recent_mass(&PageRank::default().rank(&c));
        assert!(
            cr > 2.0 * pr,
            "CiteRank should concentrate mass on recent articles ({cr:.3} vs {pr:.3})"
        );
    }

    #[test]
    fn empty_corpus() {
        let c = CorpusBuilder::new().finish().unwrap();
        assert!(CiteRank::default().rank(&c).is_empty());
    }

    #[test]
    #[should_panic(expected = "tau_dir")]
    fn invalid_tau_panics() {
        CiteRank::new(CiteRankConfig { tau_dir: 0.0, ..Default::default() });
    }
}
