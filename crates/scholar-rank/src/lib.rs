#![warn(missing_docs)]

//! # scholar-rank — baseline scholarly ranking algorithms
//!
//! Every comparison method from the reconstructed evaluation lives here:
//!
//! | ranker | module | signal used |
//! |---|---|---|
//! | Citation count | [`citation_count`] | raw in-degree |
//! | PageRank | [`pagerank`] | citation graph walk |
//! | Time-weighted PageRank | [`time_weighted`] | citation walk with exponential age decay |
//! | HITS (authority) | [`hits`] | hub/authority mutual reinforcement |
//! | CiteRank | [`citerank`] | reader-traffic model: recency-started walk (Walker et al. 2007) |
//! | FutureRank | [`futurerank`] | citation walk + author bipartite + recency personalization (Sayyadi & Getoor 2009) |
//! | P-Rank | [`prank`] | one walk over the combined paper/author/venue graph |
//! | Citations/year, recent-window citations | [`age_normalized`] | bibliometric normalizations |
//! | Monte-Carlo PageRank | [`monte_carlo`] | walk-simulation approximation |
//! | Personalized PageRank | [`personalized`] | seeded exploration / related articles |
//!
//! All rankers implement the object-safe [`Ranker`] trait and return one
//! non-negative score per article normalized to sum 1, so scores are
//! comparable across methods and corpus snapshots. The primary entry
//! point is [`Ranker::solve_ctx`], which runs against a shared
//! [`context::RankContext`] — a prepared layer that caches the citation
//! CSR, walk operators, bipartite maps, year vectors, and completed
//! solves, so a whole evaluation suite builds each structure once — and
//! reports unified [`telemetry::SolveTelemetry`] (iterations, residuals,
//! convergence, build/solve wall time). `Ranker::rank(&Corpus)` remains
//! as a convenience over a throwaway context.
//!
//! The paper's own method (QRank) builds on these pieces and lives in the
//! `qrank` crate.

pub mod age_normalized;
pub mod citation_count;
pub mod citerank;
pub mod context;
pub mod diagnostics;
pub mod fusion;
pub mod futurerank;
pub mod hits;
pub mod monte_carlo;
pub mod pagerank;
pub mod personalized;
pub mod prank;
pub mod ranker;
pub mod rescaled;
pub mod scores;
pub mod storage;
pub mod telemetry;
pub mod time_weighted;
pub mod venue_author;

pub use age_normalized::{AgeNormalizedCitations, RecentCitations};
pub use citation_count::CitationCount;
pub use citerank::{CiteRank, CiteRankConfig};
pub use context::{DecayedCitation, DecayedPlan, RankContext};
pub use diagnostics::Diagnostics;
pub use fusion::{fuse_scores, FusedRanker, FusionRule};
pub use futurerank::{FutureRank, FutureRankConfig};
pub use hits::{Hits, HitsConfig};
pub use monte_carlo::{MonteCarloConfig, MonteCarloPageRank};
pub use pagerank::{PageRank, PageRankConfig};
pub use personalized::{personalized_pagerank, related_articles, PersonalizedConfig};
pub use prank::{PRank, PRankConfig};
pub use ranker::Ranker;
pub use rescaled::{rescale_by_year, rescale_by_years, RescaledRanker};
pub use storage::{ArticleRow, Storage};
pub use telemetry::{RankOutput, SolveTelemetry};
pub use time_weighted::{TimeWeightedPageRank, TwprConfig};
