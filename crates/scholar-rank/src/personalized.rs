//! Personalized PageRank over the citation graph.
//!
//! Query-independent ranking is the headline, but the same machinery
//! supports seeded exploration: "important articles *from the point of
//! view of this reading list*". The teleport vector concentrates on the
//! seed articles, optionally time-decayed.

use crate::context::RankContext;
use crate::diagnostics::Diagnostics;
use crate::pagerank::{pagerank_on_op, PageRankConfig};
use scholar_corpus::{ArticleId, Corpus};
use sgraph::JumpVector;

/// Personalized PageRank parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PersonalizedConfig {
    /// Underlying power-iteration parameters.
    pub pagerank: PageRankConfig,
    /// Probability mass reserved for the seed set in the teleport vector
    /// (the remainder is spread uniformly, which keeps scores defined on
    /// components unreachable from the seeds).
    pub seed_mass: f64,
}

impl Default for PersonalizedConfig {
    fn default() -> Self {
        PersonalizedConfig { pagerank: PageRankConfig::default(), seed_mass: 0.9 }
    }
}

/// Rank all articles from the perspective of `seeds` (e.g. a reading
/// list). Returns scores summing to 1, plus diagnostics.
///
/// # Panics
/// Panics if `seeds` is empty, contains out-of-range ids, or `seed_mass`
/// is not in (0, 1].
pub fn personalized_pagerank(
    corpus: &Corpus,
    seeds: &[ArticleId],
    config: &PersonalizedConfig,
) -> (Vec<f64>, Diagnostics) {
    personalized_pagerank_ctx(&RankContext::new(corpus), seeds, config)
}

/// [`personalized_pagerank`] against a prepared context, so repeated
/// seeded walks (or a seeded walk plus the global one) share the citation
/// operator.
pub fn personalized_pagerank_ctx(
    ctx: &RankContext,
    seeds: &[ArticleId],
    config: &PersonalizedConfig,
) -> (Vec<f64>, Diagnostics) {
    assert!(!seeds.is_empty(), "need at least one seed article");
    assert!(config.seed_mass > 0.0 && config.seed_mass <= 1.0, "seed_mass must be in (0, 1]");
    let n = ctx.num_articles();
    let uniform_mass = (1.0 - config.seed_mass) / n as f64;
    let per_seed = config.seed_mass / seeds.len() as f64;
    let mut jump = vec![uniform_mass; n];
    for &s in seeds {
        assert!(s.index() < n, "seed {s} out of bounds");
        jump[s.index()] += per_seed;
    }
    pagerank_on_op(ctx.citation_op(), &config.pagerank, JumpVector::weighted(jump), None)
}

/// The `k` most related articles to the seed set, excluding the seeds
/// themselves: personalized PageRank minus the global (uniform) PageRank,
/// ranked by the difference. Positive difference = "more important from
/// this perspective than in general". Both walks share one prepared
/// context (the citation graph is built once).
pub fn related_articles(
    corpus: &Corpus,
    seeds: &[ArticleId],
    k: usize,
    config: &PersonalizedConfig,
) -> Vec<(ArticleId, f64)> {
    let ctx = RankContext::new(corpus);
    let (pers, _) = personalized_pagerank_ctx(&ctx, seeds, config);
    let (global, _) =
        pagerank_on_op(ctx.citation_op(), &config.pagerank, JumpVector::Uniform, None);
    let mut lift: Vec<(ArticleId, f64)> = (0..corpus.num_articles())
        .filter(|i| !seeds.iter().any(|s| s.index() == *i))
        .map(|i| (ArticleId(i as u32), pers[i] - global[i]))
        .collect();
    lift.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    lift.truncate(k);
    lift
}

#[cfg(test)]
mod tests {
    use super::*;
    use scholar_corpus::CorpusBuilder;

    fn chain_corpus() -> Corpus {
        // Two disconnected chains: 2->1->0 and 5->4->3.
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        let a0 = b.add_article("a0", 1990, v, vec![], vec![], None);
        let a1 = b.add_article("a1", 1995, v, vec![], vec![a0], None);
        b.add_article("a2", 2000, v, vec![], vec![a1], None);
        let a3 = b.add_article("a3", 1990, v, vec![], vec![], None);
        let a4 = b.add_article("a4", 1995, v, vec![], vec![a3], None);
        b.add_article("a5", 2000, v, vec![], vec![a4], None);
        b.finish().unwrap()
    }

    #[test]
    fn mass_concentrates_near_seeds() {
        let c = chain_corpus();
        let (s, d) = personalized_pagerank(&c, &[ArticleId(2)], &Default::default());
        assert!(d.converged);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // The seeded chain dominates the other chain.
        let seeded: f64 = s[0] + s[1] + s[2];
        let other: f64 = s[3] + s[4] + s[5];
        assert!(seeded > 3.0 * other, "seeded {seeded} vs other {other}");
    }

    #[test]
    fn related_articles_finds_the_ancestry() {
        let c = chain_corpus();
        let related = related_articles(&c, &[ArticleId(2)], 3, &Default::default());
        // The chain ancestors of the seed top the list (direct parent a1
        // gets the largest lift, then a0).
        assert!(matches!(related[0].0, ArticleId(0) | ArticleId(1)));
        assert!(matches!(related[1].0, ArticleId(0) | ArticleId(1)));
        assert!(related[0].1 > 0.0 && related[1].1 > 0.0);
        assert!(related.iter().all(|&(id, _)| id != ArticleId(2)), "seeds are excluded");
    }

    #[test]
    fn multiple_seeds_split_mass() {
        let c = chain_corpus();
        let (s, _) = personalized_pagerank(&c, &[ArticleId(2), ArticleId(5)], &Default::default());
        let left: f64 = s[0] + s[1] + s[2];
        let right: f64 = s[3] + s[4] + s[5];
        assert!((left - right).abs() < 1e-9, "symmetric seeds ⇒ symmetric mass");
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seeds_panics() {
        personalized_pagerank(&chain_corpus(), &[], &Default::default());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_seed_panics() {
        personalized_pagerank(&chain_corpus(), &[ArticleId(99)], &Default::default());
    }
}
