//! Time-weighted PageRank (TWPR) — the citation walk at the heart of the
//! reconstructed method.
//!
//! Two time effects, both exponential (see DESIGN.md §2.1):
//!
//! * **Edge decay** — the weight of a citation `u → v` decays with the
//!   *citation age* `year(u) − year(v)`: `w = exp(-ρ·Δt)`. Importance
//!   flowing toward much older work is discounted, counteracting
//!   PageRank's old-paper bias. `ρ = 0` recovers plain PageRank edge
//!   weights.
//! * **Recency-personalized jump** — the teleport vector favors recent
//!   articles: `j(v) ∝ exp(-τ·(T_now − year(v)))`. `τ = 0` recovers the
//!   uniform jump.

use crate::context::RankContext;
use crate::diagnostics::Diagnostics;
use crate::pagerank::{pagerank_on_op, PageRankConfig};
use crate::ranker::Ranker;
use crate::telemetry::Stopwatch;
use crate::telemetry::{RankOutput, SolveTelemetry};
use scholar_corpus::{Corpus, Year};
use sgraph::JumpVector;

/// TWPR parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TwprConfig {
    /// Underlying power-iteration parameters.
    pub pagerank: PageRankConfig,
    /// Edge decay rate ρ (per year of citation age); >= 0.
    pub rho: f64,
    /// Jump recency rate τ (per year of article age); >= 0.
    pub tau: f64,
    /// "Now" for the recency jump; defaults to the corpus's last year.
    pub now: Option<Year>,
}

impl Default for TwprConfig {
    fn default() -> Self {
        TwprConfig { pagerank: PageRankConfig::default(), rho: 0.15, tau: 0.1, now: None }
    }
}

impl TwprConfig {
    /// Panics on out-of-range parameters.
    pub fn assert_valid(&self) {
        self.pagerank.assert_valid();
        assert!(self.rho >= 0.0 && self.rho.is_finite(), "rho must be finite and >= 0");
        assert!(self.tau >= 0.0 && self.tau.is_finite(), "tau must be finite and >= 0");
    }

    /// Overlay fields present in a parsed JSON object onto `self`
    /// (partial configs keep defaults; unknown keys are ignored).
    pub fn merge_json(&mut self, v: &sjson::Value) -> Result<(), String> {
        let obj = v.as_object().ok_or("'twpr' must be an object")?;
        for (key, val) in obj {
            match key.as_str() {
                "pagerank" => self.pagerank.merge_json(val)?,
                "rho" => self.rho = val.as_f64().ok_or("'rho' must be a number")?,
                "tau" => self.tau = val.as_f64().ok_or("'tau' must be a number")?,
                "now" => {
                    self.now = if val.is_null() {
                        None
                    } else {
                        Some(
                            val.as_i64()
                                .and_then(|y| i32::try_from(y).ok())
                                .ok_or("'now' must be a year")?,
                        )
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// This config as a JSON object.
    pub fn to_json(&self) -> sjson::Value {
        let mut b = sjson::ObjectBuilder::new()
            .field("pagerank", self.pagerank.to_json())
            .field("rho", self.rho)
            .field("tau", self.tau);
        b = match self.now {
            Some(y) => b.field("now", y),
            None => b.field("now", sjson::Value::Null),
        };
        b.build()
    }
}

/// Time-weighted PageRank ranker.
#[derive(Debug, Clone, Default)]
pub struct TimeWeightedPageRank {
    /// Parameters.
    pub config: TwprConfig,
}

impl TimeWeightedPageRank {
    /// TWPR with the given configuration.
    pub fn new(config: TwprConfig) -> Self {
        config.assert_valid();
        TimeWeightedPageRank { config }
    }

    /// The edge-decay weight for a citation of age `delta_years`.
    /// Negative ages (time-travel citations in noisy data) clamp to 0.
    pub fn edge_weight(rho: f64, delta_years: f64) -> f64 {
        (-rho * delta_years.max(0.0)).exp()
    }

    /// The recency-personalized jump vector for `corpus`.
    pub fn recency_jump(corpus: &Corpus, tau: f64, now: Year) -> JumpVector {
        if tau == 0.0 || corpus.num_articles() == 0 {
            return JumpVector::Uniform;
        }
        let weights: Vec<f64> =
            corpus.articles().iter().map(|a| (-tau * (now - a.year).max(0) as f64).exp()).collect();
        JumpVector::weighted(weights)
    }

    /// Rank and also return convergence diagnostics.
    pub fn rank_with_diagnostics(&self, corpus: &Corpus) -> (Vec<f64>, Diagnostics) {
        let out = self.solve_ctx(&RankContext::new(corpus));
        (out.scores, out.telemetry.diagnostics())
    }

    /// The memo key for a TWPR solve with config `cfg` at year `now`.
    /// QRank's article-layer cold walk uses identical parameters under
    /// matching configs, so it shares this entry via the context memo.
    pub fn solve_key(cfg: &TwprConfig, now: Year) -> String {
        format!(
            "twpr(rho={},tau={},now={},d={},tol={},max={})",
            cfg.rho, cfg.tau, now, cfg.pagerank.damping, cfg.pagerank.tol, cfg.pagerank.max_iter
        )
    }
}

impl Ranker for TimeWeightedPageRank {
    fn name(&self) -> String {
        format!("TWPR(ρ={:.2},τ={:.2})", self.config.rho, self.config.tau)
    }

    fn solve_ctx(&self, ctx: &RankContext) -> RankOutput {
        self.config.assert_valid();
        if ctx.num_articles() == 0 {
            return RankOutput::closed_form(Vec::new());
        }
        let now = self.config.now.unwrap_or_else(|| ctx.now());
        let built = Stopwatch::start();
        let plan = ctx.decayed_plan(self.config.rho);
        let build_secs = built.secs();
        let solved = Stopwatch::start();
        let (scores, diag, cached) = ctx.cached_solve(&Self::solve_key(&self.config, now), || {
            let jump = ctx.recency_jump(self.config.tau, now);
            match &plan {
                crate::context::DecayedPlan::Dense(decayed) => {
                    pagerank_on_op(&decayed.op, &self.config.pagerank, jump, None)
                }
                crate::context::DecayedPlan::Partitioned(shards) => {
                    crate::pagerank::pagerank_on_store(&**shards, &self.config.pagerank, jump, None)
                }
            }
        });
        let telemetry = SolveTelemetry::timed(&diag, build_secs, solved.secs(), cached);
        RankOutput { scores, telemetry }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::PageRank;
    use scholar_corpus::generator::Preset;
    use scholar_corpus::CorpusBuilder;

    #[test]
    fn rho_zero_tau_zero_equals_pagerank() {
        let c = Preset::Tiny.generate(4);
        let twpr =
            TimeWeightedPageRank::new(TwprConfig { rho: 0.0, tau: 0.0, ..Default::default() })
                .rank(&c);
        let pr = PageRank::default().rank(&c);
        let diff: f64 = twpr.iter().zip(&pr).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff < 1e-9, "TWPR(0,0) must equal PageRank, diff {diff}");
    }

    #[test]
    fn edge_weight_decays() {
        assert_eq!(TimeWeightedPageRank::edge_weight(0.2, 0.0), 1.0);
        let w5 = TimeWeightedPageRank::edge_weight(0.2, 5.0);
        let w10 = TimeWeightedPageRank::edge_weight(0.2, 10.0);
        assert!(w5 > w10 && w10 > 0.0);
        // Time-travel citations clamp, not explode.
        assert_eq!(TimeWeightedPageRank::edge_weight(0.2, -3.0), 1.0);
    }

    #[test]
    fn decay_shifts_mass_toward_recent_targets() {
        // a2 (2020) cites both a0 (1990) and a1 (2015). Under plain PR both
        // get equal shares of a2's push; under TWPR the recent one wins.
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        let a0 = b.add_article("old", 1990, v, vec![], vec![], None);
        let a1 = b.add_article("recent", 2015, v, vec![], vec![], None);
        b.add_article("citer", 2020, v, vec![], vec![a0, a1], None);
        let c = b.finish().unwrap();

        let pr = PageRank::default().rank(&c);
        assert!((pr[0] - pr[1]).abs() < 1e-9, "plain PR is indifferent");

        let twpr =
            TimeWeightedPageRank::new(TwprConfig { rho: 0.3, tau: 0.0, ..Default::default() })
                .rank(&c);
        assert!(
            twpr[1] > twpr[0],
            "TWPR should favor the recent citation target ({} vs {})",
            twpr[1],
            twpr[0]
        );
    }

    #[test]
    fn recency_jump_favors_new_articles() {
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        b.add_article("old", 1990, v, vec![], vec![], None);
        b.add_article("new", 2020, v, vec![], vec![], None);
        let c = b.finish().unwrap();
        let twpr =
            TimeWeightedPageRank::new(TwprConfig { rho: 0.0, tau: 0.2, ..Default::default() })
                .rank(&c);
        assert!(twpr[1] > twpr[0], "tau > 0 must favor the newer article");
    }

    #[test]
    fn reduces_old_paper_bias_on_generated_corpus() {
        let c = Preset::Tiny.generate(2);
        let (lo, hi) = c.year_range().unwrap();
        let mid = (lo + hi) / 2;
        let count_old = |s: &[f64]| {
            crate::scores::top_k(s, 20).iter().filter(|&&i| c.articles()[i].year <= mid).count()
        };
        let pr_old = count_old(&PageRank::default().rank(&c));
        let twpr_old = count_old(
            &TimeWeightedPageRank::new(TwprConfig { rho: 0.4, tau: 0.1, ..Default::default() })
                .rank(&c),
        );
        assert!(
            twpr_old < pr_old,
            "TWPR top-20 should be less old-skewed than PageRank ({twpr_old} vs {pr_old})"
        );
    }

    #[test]
    fn scores_sum_to_one_and_converge() {
        let c = Preset::Tiny.generate(8);
        let (s, d) = TimeWeightedPageRank::default().rank_with_diagnostics(&c);
        assert!(d.converged);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn explicit_now_changes_jump() {
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        b.add_article("a", 2000, v, vec![], vec![], None);
        b.add_article("b", 2010, v, vec![], vec![], None);
        let c = b.finish().unwrap();
        let base = TimeWeightedPageRank::new(TwprConfig {
            tau: 0.3,
            now: Some(2010),
            ..Default::default()
        })
        .rank(&c);
        let future = TimeWeightedPageRank::new(TwprConfig {
            tau: 0.3,
            now: Some(2030),
            ..Default::default()
        })
        .rank(&c);
        // Pushing "now" forward ages both articles; their *relative* jump
        // weights stay in the same order but the gap narrows in ratio terms
        // only via the same exponent — the scores must remain ordered.
        assert!(base[1] > base[0]);
        assert!(future[1] > future[0]);
    }

    #[test]
    fn empty_corpus() {
        let c = CorpusBuilder::new().finish().unwrap();
        let (s, d) = TimeWeightedPageRank::default().rank_with_diagnostics(&c);
        assert!(s.is_empty());
        assert!(d.converged);
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn negative_rho_panics() {
        TimeWeightedPageRank::new(TwprConfig { rho: -0.1, ..Default::default() });
    }

    #[test]
    fn name_reflects_parameters() {
        let r = TimeWeightedPageRank::default();
        assert!(r.name().contains("TWPR"));
    }
}
