//! The common ranker interface.

use scholar_corpus::Corpus;

/// A query-independent article ranker.
///
/// Implementations score every article of a corpus; scores are
/// non-negative and normalized to sum 1 (so they are comparable across
/// methods and corpus snapshots). Higher is more important.
///
/// The trait is object-safe: the evaluation harness iterates over
/// `Vec<Box<dyn Ranker>>`.
pub trait Ranker {
    /// Short display name used in experiment tables (e.g. `"PageRank"`).
    fn name(&self) -> String;

    /// Score every article in `corpus`.
    fn rank(&self, corpus: &Corpus) -> Vec<f64>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use scholar_corpus::generator::Preset;

    struct Constant;
    impl Ranker for Constant {
        fn name(&self) -> String {
            "Constant".into()
        }
        fn rank(&self, corpus: &Corpus) -> Vec<f64> {
            let n = corpus.num_articles();
            vec![1.0 / n as f64; n]
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let rankers: Vec<Box<dyn Ranker>> = vec![Box::new(Constant)];
        let c = Preset::Tiny.generate(5);
        for r in &rankers {
            let scores = r.rank(&c);
            assert_eq!(scores.len(), c.num_articles());
            assert_eq!(r.name(), "Constant");
        }
    }
}
