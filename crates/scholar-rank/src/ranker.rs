//! The common ranker interface.

use crate::context::RankContext;
use crate::telemetry::RankOutput;
use scholar_corpus::Corpus;

/// A query-independent article ranker.
///
/// Implementations score every article of a corpus; scores are
/// non-negative and normalized to sum 1 (so they are comparable across
/// methods and corpus snapshots). Higher is more important.
///
/// The primary entry point is [`Ranker::solve_ctx`], which consumes a
/// shared prepared [`RankContext`] and reports unified
/// [`crate::telemetry::SolveTelemetry`]; [`Ranker::rank`] survives as a
/// convenience that builds a throwaway context, so callers without a
/// context to share keep working.
///
/// The trait is object-safe: the evaluation harness iterates over
/// `Vec<Box<dyn Ranker>>`.
pub trait Ranker {
    /// Short display name used in experiment tables (e.g. `"PageRank"`).
    fn name(&self) -> String;

    /// Score every article using the prepared context, returning scores
    /// plus solve telemetry. Implementations should pull every derived
    /// structure they need (graphs, operators, bipartites, year vectors)
    /// from `ctx` so repeated solves over one corpus share the builds.
    fn solve_ctx(&self, ctx: &RankContext) -> RankOutput;

    /// Scores only, via the prepared context.
    fn rank_ctx(&self, ctx: &RankContext) -> Vec<f64> {
        self.solve_ctx(ctx).scores
    }

    /// Score every article of `corpus` through a throwaway context.
    fn rank(&self, corpus: &Corpus) -> Vec<f64> {
        self.rank_ctx(&RankContext::new(corpus))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scholar_corpus::generator::Preset;

    struct Constant;
    impl Ranker for Constant {
        fn name(&self) -> String {
            "Constant".into()
        }
        fn solve_ctx(&self, ctx: &RankContext) -> RankOutput {
            let n = ctx.num_articles();
            RankOutput::closed_form(vec![1.0 / n as f64; n])
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let rankers: Vec<Box<dyn Ranker>> = vec![Box::new(Constant)];
        let c = Preset::Tiny.generate(5);
        for r in &rankers {
            let scores = r.rank(&c);
            assert_eq!(scores.len(), c.num_articles());
            assert_eq!(r.name(), "Constant");
        }
    }

    #[test]
    fn default_rank_goes_through_a_context() {
        let c = Preset::Tiny.generate(5);
        let ctx = RankContext::new(&c);
        let via_ctx = Constant.rank_ctx(&ctx);
        let via_corpus = Constant.rank(&c);
        assert_eq!(via_ctx, via_corpus);
        let out = Constant.solve_ctx(&ctx);
        assert!(out.telemetry.converged);
    }
}
