//! Age-aware citation-count baselines.
//!
//! Two standard bibliometric normalizations of the raw citation count:
//!
//! * [`AgeNormalizedCitations`] — citations per year since publication
//!   ("CPY"), the simplest correction of the old-paper bias.
//! * [`RecentCitations`] — citations received from articles published in
//!   the last `window` years only ("current impact"), a strong predictor
//!   of near-future citations that needs no graph iteration at all.

use crate::ranker::Ranker;
use scholar_corpus::{Corpus, Year};

/// Citations per year since publication.
#[derive(Debug, Clone, Copy, Default)]
pub struct AgeNormalizedCitations {
    /// "Now"; `None` = the corpus's last year.
    pub now: Option<Year>,
}

impl Ranker for AgeNormalizedCitations {
    fn name(&self) -> String {
        "CitPerYear".into()
    }

    fn rank(&self, corpus: &Corpus) -> Vec<f64> {
        if corpus.num_articles() == 0 {
            return Vec::new();
        }
        let now = self.now.unwrap_or_else(|| corpus.year_range().unwrap().1);
        let counts = corpus.citation_counts();
        let mut scores: Vec<f64> = corpus
            .articles()
            .iter()
            .map(|a| {
                let age = (now - a.year).max(0) as f64 + 1.0; // publication year counts
                counts[a.id.index()] as f64 / age
            })
            .collect();
        crate::scores::normalize_or_uniform(&mut scores);
        scores
    }
}

/// Citations received from recently published articles only.
#[derive(Debug, Clone, Copy)]
pub struct RecentCitations {
    /// Width of the citing-article window (years).
    pub window: i32,
    /// "Now"; `None` = the corpus's last year.
    pub now: Option<Year>,
}

impl Default for RecentCitations {
    fn default() -> Self {
        RecentCitations { window: 3, now: None }
    }
}

impl Ranker for RecentCitations {
    fn name(&self) -> String {
        format!("RecentCit({}y)", self.window)
    }

    fn rank(&self, corpus: &Corpus) -> Vec<f64> {
        if corpus.num_articles() == 0 {
            return Vec::new();
        }
        assert!(self.window > 0, "window must be positive");
        let now = self.now.unwrap_or_else(|| corpus.year_range().unwrap().1);
        let from = now - self.window + 1;
        let mut scores = vec![0.0f64; corpus.num_articles()];
        for citing in corpus.articles() {
            if citing.year >= from && citing.year <= now {
                for &cited in &citing.references {
                    scores[cited.index()] += 1.0;
                }
            }
        }
        crate::scores::normalize_or_uniform(&mut scores);
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scholar_corpus::CorpusBuilder;

    fn corpus() -> Corpus {
        // a0 (1990): cited in 1995 and 2010. a1 (2008): cited in 2010.
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        let a0 = b.add_article("old", 1990, v, vec![], vec![], None);
        b.add_article("mid", 1995, v, vec![], vec![a0], None);
        let a1 = b.add_article("newish", 2008, v, vec![], vec![], None);
        b.add_article("latest", 2010, v, vec![], vec![a0, a1], None);
        b.finish().unwrap()
    }

    #[test]
    fn cit_per_year_boosts_young_articles() {
        let c = corpus();
        let s = AgeNormalizedCitations::default().rank(&c);
        // a0: 2 citations over 21 years; a1: 1 citation over 3 years.
        assert!(s[2] > s[0], "younger article with faster accrual should win: {s:?}");
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recent_citations_ignore_old_citations() {
        let c = corpus();
        let s = RecentCitations { window: 3, now: None }.rank(&c);
        // Window = 2008..=2010: only "latest" cites count: a0 and a1 get 1 each.
        assert_eq!(s[0], s[2]);
        assert!(s[0] > 0.0);
        assert_eq!(s[1], 0.0);
        // Wide window sees the 1995 citation too.
        let wide = RecentCitations { window: 30, now: None }.rank(&c);
        assert!(wide[0] > wide[2]);
    }

    #[test]
    fn explicit_now() {
        let c = corpus();
        // As of 1996, only the 1995 citation exists in a 3y window.
        let s = RecentCitations { window: 3, now: Some(1996) }.rank(&c);
        assert!(s[0] > 0.0);
        assert_eq!(s[2], 0.0);
    }

    #[test]
    fn empty_corpus() {
        let c = CorpusBuilder::new().finish().unwrap();
        assert!(AgeNormalizedCitations::default().rank(&c).is_empty());
        assert!(RecentCitations::default().rank(&c).is_empty());
    }
}
