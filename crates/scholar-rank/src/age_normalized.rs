//! Age-aware citation-count baselines.
//!
//! Two standard bibliometric normalizations of the raw citation count:
//!
//! * [`AgeNormalizedCitations`] — citations per year since publication
//!   ("CPY"), the simplest correction of the old-paper bias.
//! * [`RecentCitations`] — citations received from articles published in
//!   the last `window` years only ("current impact"), a strong predictor
//!   of near-future citations that needs no graph iteration at all.

use crate::context::RankContext;
use crate::ranker::Ranker;
use crate::telemetry::RankOutput;
use scholar_corpus::Year;

/// Citations per year since publication.
#[derive(Debug, Clone, Copy, Default)]
pub struct AgeNormalizedCitations {
    /// "Now"; `None` = the corpus's last year.
    pub now: Option<Year>,
}

impl Ranker for AgeNormalizedCitations {
    fn name(&self) -> String {
        "CitPerYear".into()
    }

    fn solve_ctx(&self, ctx: &RankContext) -> RankOutput {
        if ctx.num_articles() == 0 {
            return RankOutput::closed_form(Vec::new());
        }
        let now = self.now.unwrap_or_else(|| ctx.now());
        let counts = ctx.citation_counts();
        let mut scores: Vec<f64> = ctx
            .years()
            .iter()
            .zip(counts)
            .map(|(&year, &c)| {
                let age = (now - year).max(0) as f64 + 1.0; // publication year counts
                c as f64 / age
            })
            .collect();
        crate::scores::normalize_or_uniform(&mut scores);
        RankOutput::closed_form(scores)
    }
}

/// Citations received from recently published articles only.
#[derive(Debug, Clone, Copy)]
pub struct RecentCitations {
    /// Width of the citing-article window (years).
    pub window: i32,
    /// "Now"; `None` = the corpus's last year.
    pub now: Option<Year>,
}

impl Default for RecentCitations {
    fn default() -> Self {
        RecentCitations { window: 3, now: None }
    }
}

impl Ranker for RecentCitations {
    fn name(&self) -> String {
        format!("RecentCit({}y)", self.window)
    }

    fn solve_ctx(&self, ctx: &RankContext) -> RankOutput {
        if ctx.num_articles() == 0 {
            return RankOutput::closed_form(Vec::new());
        }
        assert!(self.window > 0, "window must be positive");
        let now = self.now.unwrap_or_else(|| ctx.now());
        let from = now - self.window + 1;
        let mut scores = vec![0.0f64; ctx.num_articles()];
        ctx.store().for_each_article(&mut |row| {
            if row.year >= from && row.year <= now {
                for &cited in row.refs {
                    scores[cited as usize] += 1.0;
                }
            }
        });
        crate::scores::normalize_or_uniform(&mut scores);
        RankOutput::closed_form(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scholar_corpus::{Corpus, CorpusBuilder};

    fn corpus() -> Corpus {
        // a0 (1990): cited in 1995 and 2010. a1 (2008): cited in 2010.
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        let a0 = b.add_article("old", 1990, v, vec![], vec![], None);
        b.add_article("mid", 1995, v, vec![], vec![a0], None);
        let a1 = b.add_article("newish", 2008, v, vec![], vec![], None);
        b.add_article("latest", 2010, v, vec![], vec![a0, a1], None);
        b.finish().unwrap()
    }

    #[test]
    fn cit_per_year_boosts_young_articles() {
        let c = corpus();
        let s = AgeNormalizedCitations::default().rank(&c);
        // a0: 2 citations over 21 years; a1: 1 citation over 3 years.
        assert!(s[2] > s[0], "younger article with faster accrual should win: {s:?}");
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recent_citations_ignore_old_citations() {
        let c = corpus();
        let s = RecentCitations { window: 3, now: None }.rank(&c);
        // Window = 2008..=2010: only "latest" cites count: a0 and a1 get 1 each.
        assert_eq!(s[0], s[2]);
        assert!(s[0] > 0.0);
        assert_eq!(s[1], 0.0);
        // Wide window sees the 1995 citation too.
        let wide = RecentCitations { window: 30, now: None }.rank(&c);
        assert!(wide[0] > wide[2]);
    }

    #[test]
    fn explicit_now() {
        let c = corpus();
        // As of 1996, only the 1995 citation exists in a 3y window.
        let s = RecentCitations { window: 3, now: Some(1996) }.rank(&c);
        assert!(s[0] > 0.0);
        assert_eq!(s[2], 0.0);
    }

    #[test]
    fn empty_corpus() {
        let c = CorpusBuilder::new().finish().unwrap();
        assert!(AgeNormalizedCitations::default().rank(&c).is_empty());
        assert!(RecentCitations::default().rank(&c).is_empty());
    }
}
