//! Monte-Carlo PageRank approximation.
//!
//! Instead of iterating the full operator to convergence, simulate `R`
//! geometric-length random walks from every node and estimate the
//! stationary distribution from visit counts (the "complete path"
//! estimator of Avrachenkov et al. 2007). Useful when an approximate
//! ranking is enough: one pass over `R·V·E[length]` steps, trivially
//! restartable, and the accuracy/cost trade-off is explicit.
//!
//! The repro harness compares its accuracy and cost against power
//! iteration (an ablation of the "exact walk" design choice).

use crate::context::RankContext;
use crate::diagnostics::Diagnostics;
use crate::ranker::Ranker;
use crate::telemetry::Stopwatch;
use crate::telemetry::{RankOutput, SolveTelemetry};
use sgraph::CsrGraph;
use srand::rngs::SmallRng;
use srand::{Rng, SeedableRng};

/// Monte-Carlo PageRank parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloConfig {
    /// Damping factor (walk continues with this probability).
    pub damping: f64,
    /// Walks started per node.
    pub walks_per_node: usize,
    /// RNG seed (estimates are deterministic given the seed).
    pub seed: u64,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig { damping: 0.85, walks_per_node: 16, seed: 0x5eed }
    }
}

impl MonteCarloConfig {
    /// Panics on invalid parameters.
    pub fn assert_valid(&self) {
        assert!((0.0..1.0).contains(&self.damping), "damping must be in [0, 1)");
        assert!(self.walks_per_node > 0, "need at least one walk per node");
    }
}

/// Estimate PageRank on an arbitrary weighted graph by walk simulation.
///
/// Every node starts `walks_per_node` walks; each step either stops (with
/// probability `1 − damping`) or moves along an out-edge chosen
/// proportionally to edge weight; dangling nodes stop the walk. Visit
/// counts (including the start) normalized over all visits estimate the
/// stationary distribution.
pub fn monte_carlo_pagerank(g: &CsrGraph, config: &MonteCarloConfig) -> (Vec<f64>, Diagnostics) {
    config.assert_valid();
    let n = g.len();
    if n == 0 {
        return (Vec::new(), Diagnostics::closed_form());
    }
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut visits = vec![0u64; n];
    let mut total: u64 = 0;

    // Precompute cumulative out-weights per node for O(log d) stepping.
    let mut cum: Vec<Vec<f64>> = Vec::with_capacity(n);
    for v in g.nodes() {
        let ws = g.out_edge_weights(v);
        let mut acc = 0.0;
        cum.push(
            ws.iter()
                .map(|&w| {
                    acc += w;
                    acc
                })
                .collect(),
        );
    }

    for start in 0..n {
        for _ in 0..config.walks_per_node {
            let mut v = start;
            loop {
                visits[v] += 1;
                total += 1;
                if rng.gen::<f64>() >= config.damping {
                    break;
                }
                let c = &cum[v];
                let Some(&sum) = c.last() else { break };
                if sum <= 0.0 {
                    break; // dangling
                }
                let target = rng.gen::<f64>() * sum;
                let idx = c.partition_point(|&x| x <= target).min(c.len() - 1);
                v = g.out_neighbors(sgraph::NodeId(v as u32))[idx].index();
            }
        }
    }

    let scores: Vec<f64> = visits.iter().map(|&c| c as f64 / total as f64).collect();
    (
        scores,
        Diagnostics { iterations: config.walks_per_node, converged: true, residuals: Vec::new() },
    )
}

/// Monte-Carlo PageRank as an article ranker (unweighted citation graph).
#[derive(Debug, Clone, Default)]
pub struct MonteCarloPageRank {
    /// Parameters.
    pub config: MonteCarloConfig,
}

impl MonteCarloPageRank {
    /// Monte-Carlo PageRank with the given configuration.
    pub fn new(config: MonteCarloConfig) -> Self {
        config.assert_valid();
        MonteCarloPageRank { config }
    }
}

impl Ranker for MonteCarloPageRank {
    fn name(&self) -> String {
        format!("MC-PageRank(R={})", self.config.walks_per_node)
    }

    fn solve_ctx(&self, ctx: &RankContext) -> RankOutput {
        self.config.assert_valid();
        let built = Stopwatch::start();
        let g = ctx.citation_graph();
        let build_secs = built.secs();
        let key = format!(
            "mc-pagerank(d={},walks={},seed={})",
            self.config.damping, self.config.walks_per_node, self.config.seed
        );
        let solved = Stopwatch::start();
        let (scores, diag, cached) =
            ctx.cached_solve(&key, || monte_carlo_pagerank(g, &self.config));
        let telemetry = SolveTelemetry::timed(&diag, build_secs, solved.secs(), cached);
        RankOutput { scores, telemetry }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::{pagerank_on_graph, PageRankConfig};
    use sgraph::{GraphBuilder, JumpVector};

    #[test]
    fn approximates_power_iteration() {
        // Random-ish graph; MC with many walks should land near the exact
        // answer in L1.
        let mut edges = Vec::new();
        let mut state = 5u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        for _ in 0..3000 {
            edges.push((next() % 300, next() % 300, 1.0 + (next() % 4) as f64));
        }
        let g = GraphBuilder::from_weighted_edges(300, &edges);
        let (exact, _) = pagerank_on_graph(&g, &PageRankConfig::default(), JumpVector::Uniform);
        let (mc, _) = monte_carlo_pagerank(
            &g,
            &MonteCarloConfig { walks_per_node: 300, ..Default::default() },
        );
        let l1: f64 = exact.iter().zip(&mc).map(|(a, b)| (a - b).abs()).sum();
        assert!(l1 < 0.08, "MC estimate too far from exact: L1 = {l1}");
    }

    #[test]
    fn more_walks_means_better_estimates() {
        let g = GraphBuilder::from_edges(50, &(0..49).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let (exact, _) = pagerank_on_graph(&g, &PageRankConfig::default(), JumpVector::Uniform);
        let l1_of = |walks: usize| {
            let (mc, _) = monte_carlo_pagerank(
                &g,
                &MonteCarloConfig { walks_per_node: walks, seed: 1, ..Default::default() },
            );
            exact.iter().zip(&mc).map(|(a, b)| (a - b).abs()).sum::<f64>()
        };
        let coarse = l1_of(4);
        let fine = l1_of(512);
        assert!(fine < coarse, "more walks must reduce error ({fine} vs {coarse})");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = GraphBuilder::from_edges(10, &[(0, 1), (1, 2), (2, 0)]);
        let cfg = MonteCarloConfig::default();
        let (a, _) = monte_carlo_pagerank(&g, &cfg);
        let (b, _) = monte_carlo_pagerank(&g, &cfg);
        assert_eq!(a, b);
        let (c, _) =
            monte_carlo_pagerank(&g, &MonteCarloConfig { seed: 999, ..Default::default() });
        assert_ne!(a, c);
    }

    #[test]
    fn scores_form_distribution() {
        let c = scholar_corpus::generator::Preset::Tiny.generate(13);
        let s = MonteCarloPageRank::default().rank(&c);
        assert_eq!(s.len(), c.num_articles());
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn empty_graph() {
        let (s, d) = monte_carlo_pagerank(&sgraph::CsrGraph::empty(0), &Default::default());
        assert!(s.is_empty());
        assert!(d.converged);
    }

    #[test]
    #[should_panic(expected = "walk per node")]
    fn zero_walks_panics() {
        MonteCarloPageRank::new(MonteCarloConfig { walks_per_node: 0, ..Default::default() });
    }
}
