//! Rank fusion: combine several rankers into one ranking.
//!
//! Production search systems rarely ship a single signal; they fuse. Two
//! classic unsupervised fusions are provided:
//!
//! * **Reciprocal rank fusion** (Cormack, Clarke & Büttcher 2009):
//!   `score(a) = Σ_r 1 / (k + rank_r(a))` — robust to score-scale
//!   differences, the default.
//! * **Borda count**: `score(a) = Σ_r (n − rank_r(a))` — the classic
//!   voting rule.
//!
//! Both consume *ranks*, not raw scores, so wildly different score
//! distributions (see R-Table 7) fuse sanely.

use crate::context::RankContext;
use crate::ranker::Ranker;
use crate::scores::{competition_ranks, normalize};
use crate::telemetry::{RankOutput, SolveTelemetry};

/// Which fusion rule to apply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FusionRule {
    /// Reciprocal rank fusion with the given `k` (60 is the literature
    /// default).
    ReciprocalRank {
        /// Smoothing constant; larger = flatter contribution of top ranks.
        k: f64,
    },
    /// Borda count.
    Borda,
}

impl Default for FusionRule {
    fn default() -> Self {
        FusionRule::ReciprocalRank { k: 60.0 }
    }
}

/// Fuse pre-computed score vectors (all over the same items).
pub fn fuse_scores(score_lists: &[Vec<f64>], rule: FusionRule) -> Vec<f64> {
    assert!(!score_lists.is_empty(), "need at least one ranking to fuse");
    let n = score_lists[0].len();
    for s in score_lists {
        assert_eq!(s.len(), n, "all rankings must cover the same items");
    }
    if let FusionRule::ReciprocalRank { k } = rule {
        assert!(k > 0.0, "RRF k must be positive");
    }
    let mut fused = vec![0.0f64; n];
    for scores in score_lists {
        let ranks = competition_ranks(scores);
        for (i, &r) in ranks.iter().enumerate() {
            match rule {
                FusionRule::ReciprocalRank { k } => fused[i] += 1.0 / (k + r as f64),
                FusionRule::Borda => fused[i] += (n - r) as f64,
            }
        }
    }
    normalize(&mut fused);
    fused
}

/// A [`Ranker`] that fuses the rankings of several inner rankers.
pub struct FusedRanker {
    /// The inner rankers.
    pub rankers: Vec<Box<dyn Ranker>>,
    /// The fusion rule.
    pub rule: FusionRule,
}

impl FusedRanker {
    /// Fuse the given rankers under `rule`.
    pub fn new(rankers: Vec<Box<dyn Ranker>>, rule: FusionRule) -> Self {
        assert!(!rankers.is_empty(), "need at least one ranker");
        FusedRanker { rankers, rule }
    }
}

impl Ranker for FusedRanker {
    fn name(&self) -> String {
        let inner: Vec<String> = self.rankers.iter().map(|r| r.name()).collect();
        let rule = match self.rule {
            FusionRule::ReciprocalRank { .. } => "RRF",
            FusionRule::Borda => "Borda",
        };
        format!("{rule}[{}]", inner.join("+"))
    }

    fn solve_ctx(&self, ctx: &RankContext) -> RankOutput {
        let outputs: Vec<RankOutput> = self.rankers.iter().map(|r| r.solve_ctx(ctx)).collect();
        // Aggregate telemetry across the fused solves: total work, worst
        // convergence, and whether everything came out of the memo.
        let telemetry = SolveTelemetry {
            iterations: outputs.iter().map(|o| o.telemetry.iterations).sum(),
            converged: outputs.iter().all(|o| o.telemetry.converged),
            residuals: Vec::new(),
            build_secs: outputs.iter().map(|o| o.telemetry.build_secs).sum(),
            solve_secs: outputs.iter().map(|o| o.telemetry.solve_secs).sum(),
            cached: outputs.iter().all(|o| o.telemetry.cached),
        };
        let lists: Vec<Vec<f64>> = outputs.into_iter().map(|o| o.scores).collect();
        RankOutput { scores: fuse_scores(&lists, self.rule), telemetry }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::citation_count::CitationCount;
    use crate::time_weighted::TimeWeightedPageRank;

    #[test]
    fn fusing_identical_rankings_preserves_order() {
        let s = vec![vec![0.5, 0.3, 0.2], vec![0.6, 0.3, 0.1]]; // same order
        for rule in [FusionRule::default(), FusionRule::Borda] {
            let fused = fuse_scores(&s, rule);
            assert!(fused[0] > fused[1] && fused[1] > fused[2]);
            assert!((fused.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn disagreement_lands_in_the_middle() {
        // Ranker A: 0 > 1 > 2. Ranker B: 2 > 1 > 0. Item 1 is everyone's
        // second choice and must win under Borda.
        let s = vec![vec![3.0, 2.0, 1.0], vec![1.0, 2.0, 3.0]];
        let borda = fuse_scores(&s, FusionRule::Borda);
        assert!(borda[1] >= borda[0] && borda[1] >= borda[2]);
        // RRF favors anything that was ranked first somewhere, so 1 ties
        // or loses — either way all scores are positive and normalized.
        let rrf = fuse_scores(&s, FusionRule::default());
        assert!((rrf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((rrf[0] - rrf[2]).abs() < 1e-12, "symmetric items fuse symmetrically");
    }

    #[test]
    fn scale_invariance() {
        // RRF depends only on ranks: multiplying one input by 1000
        // changes nothing.
        let a = vec![vec![0.5, 0.3, 0.2], vec![9.0, 1.0, 5.0]];
        let b = vec![vec![500.0, 300.0, 200.0], vec![0.009, 0.001, 0.005]];
        let fa = fuse_scores(&a, FusionRule::default());
        let fb = fuse_scores(&b, FusionRule::default());
        for (x, y) in fa.iter().zip(&fb) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn fused_ranker_end_to_end() {
        let c = scholar_corpus::generator::Preset::Tiny.generate(21);
        let fused = FusedRanker::new(
            vec![Box::new(CitationCount), Box::new(TimeWeightedPageRank::default())],
            FusionRule::default(),
        );
        assert!(fused.name().starts_with("RRF["));
        let s = fused.rank(&c);
        assert_eq!(s.len(), c.num_articles());
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "same items")]
    fn mismatched_lengths_panic() {
        fuse_scores(&[vec![1.0], vec![1.0, 2.0]], FusionRule::Borda);
    }

    #[test]
    #[should_panic(expected = "at least one ranking")]
    fn empty_input_panics() {
        fuse_scores(&[], FusionRule::Borda);
    }
}
