//! HITS (Kleinberg 1999) on the citation graph.
//!
//! In citation terms: an article is a good **authority** when cited by
//! good hubs (e.g. surveys), and a good **hub** when it cites good
//! authorities. The authority score is the article ranking.

use crate::context::RankContext;
use crate::diagnostics::Diagnostics;
use crate::ranker::Ranker;
use crate::telemetry::Stopwatch;
use crate::telemetry::{RankOutput, SolveTelemetry};
use scholar_corpus::Corpus;
use sgraph::{CsrGraph, NodeId};

/// HITS parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct HitsConfig {
    /// L1 convergence tolerance on the authority vector.
    pub tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
}

impl Default for HitsConfig {
    fn default() -> Self {
        HitsConfig { tol: 1e-10, max_iter: 200 }
    }
}

/// Hub and authority vectors plus convergence info.
#[derive(Debug, Clone)]
pub struct HitsResult {
    /// Authority scores (normalized to sum 1).
    pub authorities: Vec<f64>,
    /// Hub scores (normalized to sum 1).
    pub hubs: Vec<f64>,
    /// Convergence diagnostics.
    pub diagnostics: Diagnostics,
}

/// Run HITS on an arbitrary directed graph.
pub fn hits_on_graph(g: &CsrGraph, config: &HitsConfig) -> HitsResult {
    let n = g.len();
    if n == 0 {
        return HitsResult {
            authorities: Vec::new(),
            hubs: Vec::new(),
            diagnostics: Diagnostics::closed_form(),
        };
    }
    // Pack [authority | hub] into one 2n state vector so the shared
    // sgraph fixpoint driver runs the mutual reinforcement with
    // ping-pong buffers; its L1 residual over the packed vector equals
    // the auth-residual + hub-residual the hand-rolled loop tracked.
    let res =
        sgraph::stochastic::fixpoint(vec![1.0 / n as f64; 2 * n], config.tol, config.max_iter, {
            |x, y| {
                let x_hub = &x[n..];
                let (y_auth, y_hub) = y.split_at_mut(n);
                // auth(v) = Σ_{u → v} hub(u)
                for (v, slot) in y_auth.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for &u in g.in_neighbors(NodeId(v as u32)) {
                        acc += x_hub[u.index()];
                    }
                    *slot = acc;
                }
                sgraph::stochastic::normalize_l1(y_auth);
                // hub(u) = Σ_{u → v} auth(v), from this round's authorities
                for (u, slot) in y_hub.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for &v in g.out_neighbors(NodeId(u as u32)) {
                        acc += y_auth[v.index()];
                    }
                    *slot = acc;
                }
                sgraph::stochastic::normalize_l1(y_hub);
            }
        });
    // Degenerate graphs (no edges reaching the iteration) zero the
    // vectors out; fall back to uniform so scores stay a distribution.
    let mut auth = res.scores[..n].to_vec();
    let mut hub = res.scores[n..].to_vec();
    crate::scores::normalize_or_uniform(&mut auth);
    crate::scores::normalize_or_uniform(&mut hub);
    HitsResult {
        authorities: auth,
        hubs: hub,
        diagnostics: Diagnostics {
            iterations: res.iterations,
            converged: res.converged,
            residuals: res.residuals,
        },
    }
}

/// HITS-authority article ranker.
#[derive(Debug, Clone, Default)]
pub struct Hits {
    /// Parameters.
    pub config: HitsConfig,
}

impl Hits {
    /// HITS with the given configuration.
    pub fn new(config: HitsConfig) -> Self {
        Hits { config }
    }

    /// Full hub/authority result.
    pub fn run(&self, corpus: &Corpus) -> HitsResult {
        self.run_ctx(&RankContext::new(corpus))
    }

    /// Full hub/authority result against a prepared context.
    pub fn run_ctx(&self, ctx: &RankContext) -> HitsResult {
        hits_on_graph(ctx.citation_graph(), &self.config)
    }
}

impl Ranker for Hits {
    fn name(&self) -> String {
        "HITS".into()
    }

    fn solve_ctx(&self, ctx: &RankContext) -> RankOutput {
        let built = Stopwatch::start();
        let g = ctx.citation_graph();
        let build_secs = built.secs();
        let key = format!("hits(tol={},max={})", self.config.tol, self.config.max_iter);
        let solved = Stopwatch::start();
        let (scores, diag, cached) = ctx.cached_solve(&key, || {
            let res = hits_on_graph(g, &self.config);
            (res.authorities, res.diagnostics)
        });
        let telemetry = SolveTelemetry::timed(&diag, build_secs, solved.secs(), cached);
        RankOutput { scores, telemetry }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgraph::GraphBuilder;

    #[test]
    fn authority_goes_to_the_cited() {
        // Hubs 0,1 both cite authorities 2,3; 3 also cited by 2? Keep a
        // clean bipartite citation pattern.
        let g = GraphBuilder::from_edges(4, &[(0, 2), (0, 3), (1, 2), (1, 3)]);
        let res = hits_on_graph(&g, &HitsConfig::default());
        assert!(res.diagnostics.converged);
        assert!(res.authorities[2] > 0.4 && res.authorities[3] > 0.4);
        assert!(res.authorities[0] < 1e-9 && res.authorities[1] < 1e-9);
        assert!(res.hubs[0] > 0.4 && res.hubs[1] > 0.4);
        assert!((res.authorities.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((res.hubs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn asymmetric_authority() {
        // 2 is cited by both hubs, 3 by one: auth(2) > auth(3).
        let g = GraphBuilder::from_edges(4, &[(0, 2), (1, 2), (1, 3)]);
        let res = hits_on_graph(&g, &HitsConfig::default());
        assert!(res.authorities[2] > res.authorities[3]);
        // 1 cites two authorities, 0 one: hub(1) > hub(0).
        assert!(res.hubs[1] > res.hubs[0]);
    }

    #[test]
    fn empty_graph() {
        let res = hits_on_graph(&sgraph::CsrGraph::empty(0), &HitsConfig::default());
        assert!(res.authorities.is_empty());
        assert!(res.diagnostics.converged);
    }

    #[test]
    fn edgeless_graph_stays_put() {
        let res = hits_on_graph(&sgraph::CsrGraph::empty(3), &HitsConfig::default());
        // All-zero updates normalize to zero vectors; no panic, converges
        // after one round (residual = distance from uniform start).
        assert_eq!(res.authorities.len(), 3);
    }

    #[test]
    fn ranker_interface() {
        let c = scholar_corpus::generator::Preset::Tiny.generate(3);
        let r = Hits::default();
        let s = r.rank(&c);
        assert_eq!(s.len(), c.num_articles());
        assert_eq!(r.name(), "HITS");
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }
}
