//! The citation-count baseline.

use crate::context::RankContext;
use crate::ranker::Ranker;
use crate::telemetry::RankOutput;

/// Ranks articles by raw citation count (in-degree), normalized to sum 1.
///
/// The weakest but most transparent baseline: ignores who cites, when, and
/// where; every ranking paper compares against it.
#[derive(Debug, Clone, Copy, Default)]
pub struct CitationCount;

impl Ranker for CitationCount {
    fn name(&self) -> String {
        "CitCount".into()
    }

    fn solve_ctx(&self, ctx: &RankContext) -> RankOutput {
        let mut scores: Vec<f64> = ctx.citation_counts().iter().map(|&c| c as f64).collect();
        crate::scores::normalize_or_uniform(&mut scores);
        RankOutput::closed_form(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scholar_corpus::CorpusBuilder;

    #[test]
    fn scores_proportional_to_in_degree() {
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        let a0 = b.add_article("a0", 1990, v, vec![], vec![], None);
        let a1 = b.add_article("a1", 1995, v, vec![], vec![a0], None);
        b.add_article("a2", 2000, v, vec![], vec![a0, a1], None);
        let c = b.finish().unwrap();
        let s = CitationCount.rank(&c);
        assert!((s[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((s[1] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s[2], 0.0);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn citation_free_corpus_falls_back_to_uniform() {
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        b.add_article("a0", 1990, v, vec![], vec![], None);
        b.add_article("a1", 1991, v, vec![], vec![], None);
        let c = b.finish().unwrap();
        assert_eq!(CitationCount.rank(&c), vec![0.5, 0.5]);
    }
}
