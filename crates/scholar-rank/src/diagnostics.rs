//! Convergence diagnostics shared by all iterative rankers.

/// How an iterative ranker's fixpoint computation went.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostics {
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
    /// L1 residual after each iteration (length = `iterations`).
    pub residuals: Vec<f64>,
}

impl Diagnostics {
    /// Diagnostics for a non-iterative (closed-form) ranker.
    pub fn closed_form() -> Self {
        Diagnostics { iterations: 0, converged: true, residuals: Vec::new() }
    }

    /// The final residual, if any iteration ran.
    pub fn final_residual(&self) -> Option<f64> {
        self.residuals.last().copied()
    }

    /// Empirical convergence rate: the geometric mean of successive
    /// residual ratios over the last half of the run (`None` with fewer
    /// than 4 iterations). For damped power iteration this approaches the
    /// damping factor.
    pub fn convergence_rate(&self) -> Option<f64> {
        if self.residuals.len() < 4 {
            return None;
        }
        let tail = &self.residuals[self.residuals.len() / 2..];
        let mut log_sum = 0.0;
        let mut count = 0usize;
        for w in tail.windows(2) {
            if w[0] > 0.0 && w[1] > 0.0 {
                log_sum += (w[1] / w[0]).ln();
                count += 1;
            }
        }
        if count == 0 {
            None
        } else {
            Some((log_sum / count as f64).exp())
        }
    }
}

impl From<sgraph::stochastic::PowerIterationResult> for Diagnostics {
    fn from(r: sgraph::stochastic::PowerIterationResult) -> Self {
        Diagnostics { iterations: r.iterations, converged: r.converged, residuals: r.residuals }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_is_converged() {
        let d = Diagnostics::closed_form();
        assert!(d.converged);
        assert_eq!(d.final_residual(), None);
        assert_eq!(d.convergence_rate(), None);
    }

    #[test]
    fn convergence_rate_of_geometric_decay() {
        let residuals: Vec<f64> = (0..20).map(|i| 0.85f64.powi(i)).collect();
        let d = Diagnostics { iterations: 20, converged: true, residuals };
        let r = d.convergence_rate().unwrap();
        assert!((r - 0.85).abs() < 1e-9, "rate {r}");
    }

    #[test]
    fn rate_needs_enough_iterations() {
        let d = Diagnostics { iterations: 2, converged: true, residuals: vec![0.5, 0.25] };
        assert_eq!(d.convergence_rate(), None);
        assert_eq!(d.final_residual(), Some(0.25));
    }
}
