//! Plain PageRank on the citation graph.

use crate::context::RankContext;
use crate::diagnostics::Diagnostics;
use crate::ranker::Ranker;
use crate::telemetry::Stopwatch;
use crate::telemetry::{RankOutput, SolveTelemetry};
use scholar_corpus::Corpus;
use sgraph::stochastic::PowerIterationOpts;
use sgraph::{CsrGraph, JumpVector, RowStochastic};

/// PageRank parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor `d` ∈ [0, 1). 0.85 is canonical.
    pub damping: f64,
    /// L1 convergence tolerance.
    pub tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
    /// Worker threads for the SpMV (1 = sequential). Defaults to
    /// [`sgraph::par::default_threads`] (all cores, capped at 16;
    /// `SCHOLAR_THREADS=1` or `--threads 1` forces sequential).
    pub threads: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            tol: 1e-10,
            max_iter: 200,
            threads: sgraph::par::default_threads(),
        }
    }
}

impl PageRankConfig {
    /// Panics on out-of-range parameters.
    pub fn assert_valid(&self) {
        assert!((0.0..1.0).contains(&self.damping), "damping must be in [0, 1)");
        assert!(self.tol >= 0.0, "tolerance must be >= 0");
        assert!(self.max_iter > 0, "need at least one iteration");
    }

    /// Overlay fields present in a parsed JSON object onto `self`
    /// (partial configs keep defaults; unknown keys are ignored).
    pub fn merge_json(&mut self, v: &sjson::Value) -> Result<(), String> {
        let obj = v.as_object().ok_or("'pagerank' must be an object")?;
        for (key, val) in obj {
            match key.as_str() {
                "damping" => self.damping = val.as_f64().ok_or("'damping' must be a number")?,
                "tol" => self.tol = val.as_f64().ok_or("'tol' must be a number")?,
                "max_iter" => {
                    self.max_iter = val.as_usize().ok_or("'max_iter' must be an integer")?
                }
                "threads" => self.threads = val.as_usize().ok_or("'threads' must be an integer")?,
                _ => {}
            }
        }
        Ok(())
    }

    /// This config as a JSON object.
    pub fn to_json(&self) -> sjson::Value {
        sjson::ObjectBuilder::new()
            .field("damping", self.damping)
            .field("tol", self.tol)
            .field("max_iter", self.max_iter)
            .field("threads", self.threads)
            .build()
    }
}

/// The PageRank baseline over the unweighted citation graph.
#[derive(Debug, Clone, Default)]
pub struct PageRank {
    /// Parameters.
    pub config: PageRankConfig,
}

impl PageRank {
    /// PageRank with the given configuration.
    pub fn new(config: PageRankConfig) -> Self {
        config.assert_valid();
        PageRank { config }
    }
}

/// Run damped power iteration on an arbitrary weighted graph and return
/// `(scores, diagnostics)`. This is the kernel shared by PageRank, the
/// time-weighted variant, P-Rank, and QRank's supernode walks.
pub fn pagerank_on_graph(
    g: &CsrGraph,
    config: &PageRankConfig,
    jump: JumpVector,
) -> (Vec<f64>, Diagnostics) {
    pagerank_on_graph_warm(g, config, jump, None)
}

/// [`pagerank_on_graph`] with an optional warm start (e.g. the scores of
/// a previous corpus snapshot scattered into the new id space). A good
/// warm start cuts iterations roughly in proportion to how little the
/// graph changed; see the incremental-update experiment (R-Fig 8).
pub fn pagerank_on_graph_warm(
    g: &CsrGraph,
    config: &PageRankConfig,
    jump: JumpVector,
    warm_start: Option<Vec<f64>>,
) -> (Vec<f64>, Diagnostics) {
    pagerank_on_op(&RowStochastic::new(g), config, jump, warm_start)
}

/// [`pagerank_on_graph_warm`] against an already-built walk operator —
/// the form every context-aware ranker uses, so a shared
/// [`RowStochastic`] is normalized and dangling-scanned exactly once.
pub fn pagerank_on_op(
    op: &RowStochastic,
    config: &PageRankConfig,
    jump: JumpVector,
    warm_start: Option<Vec<f64>>,
) -> (Vec<f64>, Diagnostics) {
    pagerank_on_store(op, config, jump, warm_start)
}

/// [`pagerank_on_op`] generalized over any [`sgraph::CsrStore`] backing
/// — the dense in-RAM operator or an mmap-backed shard file. Both
/// backings drive the identical power-iteration loop, so scores and
/// iteration counts are bit-identical across them.
pub fn pagerank_on_store<S: sgraph::CsrStore + ?Sized>(
    store: &S,
    config: &PageRankConfig,
    jump: JumpVector,
    warm_start: Option<Vec<f64>>,
) -> (Vec<f64>, Diagnostics) {
    config.assert_valid();
    let res = sgraph::stationary_store(
        store,
        &PowerIterationOpts {
            damping: config.damping,
            jump,
            tol: config.tol,
            max_iter: config.max_iter,
            threads: config.threads,
            warm_start,
        },
    );
    let scores = res.scores.clone();
    (scores, res.into())
}

impl PageRank {
    /// Rank and also return convergence diagnostics.
    pub fn rank_with_diagnostics(&self, corpus: &Corpus) -> (Vec<f64>, Diagnostics) {
        let out = self.solve_ctx(&RankContext::new(corpus));
        (out.scores, out.telemetry.diagnostics())
    }
}

impl Ranker for PageRank {
    fn name(&self) -> String {
        "PageRank".into()
    }

    fn solve_ctx(&self, ctx: &RankContext) -> RankOutput {
        self.config.assert_valid();
        let built = Stopwatch::start();
        let op = ctx.citation_op();
        let build_secs = built.secs();
        let key = format!(
            "pagerank(d={},tol={},max={})",
            self.config.damping, self.config.tol, self.config.max_iter
        );
        let solved = Stopwatch::start();
        let (scores, diag, cached) =
            ctx.cached_solve(&key, || pagerank_on_op(op, &self.config, JumpVector::Uniform, None));
        let telemetry = SolveTelemetry::timed(&diag, build_secs, solved.secs(), cached);
        RankOutput { scores, telemetry }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scholar_corpus::generator::Preset;
    use scholar_corpus::CorpusBuilder;

    fn line_corpus() -> Corpus {
        // a2 -> a1 -> a0: importance flows to the oldest.
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        let a0 = b.add_article("a0", 1990, v, vec![], vec![], None);
        let a1 = b.add_article("a1", 1995, v, vec![], vec![a0], None);
        b.add_article("a2", 2000, v, vec![], vec![a1], None);
        b.finish().unwrap()
    }

    #[test]
    fn importance_flows_to_cited() {
        let c = line_corpus();
        let (s, d) = PageRank::default().rank_with_diagnostics(&c);
        assert!(d.converged);
        assert!(s[0] > s[1], "cited more transitively should score higher");
        assert!(s[1] > s[2]);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn damping_zero_gives_uniform() {
        let c = line_corpus();
        let pr = PageRank::new(PageRankConfig { damping: 0.0, ..Default::default() });
        let s = pr.rank(&c);
        for &x in &s {
            assert!((x - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn old_paper_bias_is_real() {
        // On a generated corpus, the top of plain PageRank skews old. This
        // is the defect TWPR/QRank address; assert it exists so the
        // comparison in the benches is meaningful.
        let c = Preset::Tiny.generate(2);
        let s = PageRank::default().rank(&c);
        let (lo, hi) = c.year_range().unwrap();
        let mid = (lo + hi) / 2;
        let top = crate::scores::top_k(&s, 20);
        let old = top.iter().filter(|&&i| c.articles()[i].year <= mid).count();
        assert!(old >= 14, "expected PageRank's top-20 to skew old, got {old}/20 old");
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn invalid_damping_panics() {
        PageRank::new(PageRankConfig { damping: 1.0, ..Default::default() });
    }

    #[test]
    fn parallel_matches_sequential() {
        let c = Preset::Tiny.generate(9);
        let seq = PageRank::new(PageRankConfig { threads: 1, ..Default::default() }).rank(&c);
        let par = PageRank::new(PageRankConfig { threads: 4, ..Default::default() }).rank(&c);
        let diff: f64 = seq.iter().zip(&par).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff < 1e-9, "thread count must not change the answer (diff {diff})");
    }

    #[test]
    fn empty_corpus() {
        let c = CorpusBuilder::new().finish().unwrap();
        assert!(PageRank::default().rank(&c).is_empty());
    }
}
