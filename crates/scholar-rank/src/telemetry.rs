//! Unified per-solve observability shared by every ranker.
//!
//! [`SolveTelemetry`] extends the bare convergence [`Diagnostics`] with
//! the wall-clock split every caller wants: how long was spent preparing
//! inputs (graph/operator builds not already cached in the
//! [`crate::context::RankContext`]) versus iterating to the fixpoint, and
//! whether the scores came straight from the context's solve memo. One
//! shape for every method means the evaluation tables and the CLI can
//! report solver behaviour without knowing which ranker produced it.

use crate::diagnostics::Diagnostics;
use std::time::Instant;

/// The one sanctioned wall-clock source in the score-producing crates.
///
/// Timing never influences scores — it only fills the observability
/// fields of [`SolveTelemetry`] — but scattering `Instant::now()` across
/// rankers makes that impossible to audit. Every ranker times itself
/// through this wrapper instead, so scholar-lint's DETERMINISM rule has
/// exactly one allowlisted clock read to point at.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        // lint: allow(DETERMINISM) sole clock read in the score crates; feeds telemetry only, never scores
        Stopwatch(Instant::now())
    }

    /// Seconds elapsed since [`Stopwatch::start`], as the `f64` the
    /// telemetry fields carry.
    pub fn secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

/// What one ranker solve did: convergence trajectory plus wall-clock
/// split between input preparation and iteration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SolveTelemetry {
    /// Iterations performed (0 for closed-form scores).
    pub iterations: usize,
    /// Whether the tolerance was reached before the iteration cap
    /// (vacuously true for closed-form scores).
    pub converged: bool,
    /// L1 residual after each iteration (length = `iterations`).
    pub residuals: Vec<f64>,
    /// Seconds spent building graphs/operators that were not already
    /// cached (0 when every input came from the shared context).
    pub build_secs: f64,
    /// Seconds spent in the fixpoint iteration itself (≈0 on a memo hit).
    pub solve_secs: f64,
    /// Whether the scores were served from the context's solve memo
    /// instead of being recomputed.
    pub cached: bool,
}

impl SolveTelemetry {
    /// Telemetry for a non-iterative (closed-form) ranker.
    pub fn closed_form() -> Self {
        SolveTelemetry { converged: true, ..Default::default() }
    }

    /// Telemetry carrying a solve's convergence diagnostics; timing
    /// fields start at zero and are filled in by the caller.
    pub fn from_diagnostics(d: &Diagnostics) -> Self {
        SolveTelemetry {
            iterations: d.iterations,
            converged: d.converged,
            residuals: d.residuals.clone(),
            ..Default::default()
        }
    }

    /// Diagnostics plus the measured wall-clock split and memo-hit flag —
    /// the one-liner every context-aware ranker ends its solve with.
    pub fn timed(d: &Diagnostics, build_secs: f64, solve_secs: f64, cached: bool) -> Self {
        SolveTelemetry { build_secs, solve_secs, cached, ..SolveTelemetry::from_diagnostics(d) }
    }

    /// The final L1 residual, if any iteration ran.
    pub fn final_residual(&self) -> Option<f64> {
        self.residuals.last().copied()
    }

    /// Total seconds attributed to this solve (build + iterate).
    pub fn total_secs(&self) -> f64 {
        self.build_secs + self.solve_secs
    }

    /// The convergence-only view of this telemetry.
    pub fn diagnostics(&self) -> Diagnostics {
        Diagnostics {
            iterations: self.iterations,
            converged: self.converged,
            residuals: self.residuals.clone(),
        }
    }
}

impl From<Diagnostics> for SolveTelemetry {
    fn from(d: Diagnostics) -> Self {
        SolveTelemetry::from_diagnostics(&d)
    }
}

/// One ranker solve: the normalized article scores plus how the solve
/// went. Returned by [`crate::ranker::Ranker::solve_ctx`].
#[derive(Debug, Clone, PartialEq)]
pub struct RankOutput {
    /// One non-negative score per article, normalized to sum 1.
    pub scores: Vec<f64>,
    /// Unified solver telemetry for this run.
    pub telemetry: SolveTelemetry,
}

impl RankOutput {
    /// Closed-form output: scores with trivially-converged telemetry.
    pub fn closed_form(scores: Vec<f64>) -> Self {
        RankOutput { scores, telemetry: SolveTelemetry::closed_form() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_is_converged_with_no_iterations() {
        let t = SolveTelemetry::closed_form();
        assert!(t.converged);
        assert_eq!(t.iterations, 0);
        assert_eq!(t.final_residual(), None);
        assert!(!t.cached);
    }

    #[test]
    fn diagnostics_roundtrip() {
        let d = Diagnostics { iterations: 3, converged: true, residuals: vec![0.5, 0.1, 0.01] };
        let t = SolveTelemetry::from_diagnostics(&d);
        assert_eq!(t.iterations, 3);
        assert_eq!(t.final_residual(), Some(0.01));
        assert_eq!(t.diagnostics(), d);
    }

    #[test]
    fn total_secs_sums_build_and_solve() {
        let t = SolveTelemetry { build_secs: 0.25, solve_secs: 0.5, ..Default::default() };
        assert!((t.total_secs() - 0.75).abs() < 1e-15);
    }
}
