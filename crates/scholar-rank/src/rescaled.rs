//! Rescaled ranking (Mariani, Medo & Zhang 2016): z-score any ranker's
//! output within publication-year windows.
//!
//! Instead of re-weighting the walk (TWPR) or adding priors (QRank), the
//! rescaling approach removes age effects *after the fact*: an article's
//! score is expressed relative to the mean and standard deviation of the
//! scores of articles published around the same time. An article is then
//! ranked by how exceptional it is *for its age*, which mechanically
//! de-biases any underlying method — at the cost of making scores
//! incomparable in absolute terms (a so-so article in a weak year can
//! outrank a good article from a strong year).

use crate::context::RankContext;
use crate::ranker::Ranker;
use crate::telemetry::RankOutput;
use scholar_corpus::{Corpus, Year};

/// Wraps any ranker and z-scores its output within publication-year
/// windows of `window_years`.
pub struct RescaledRanker {
    /// The underlying ranker.
    pub inner: Box<dyn Ranker>,
    /// Width of the year bucket used for normalization (1 = per-year).
    pub window_years: i32,
}

impl RescaledRanker {
    /// Rescale `inner` within `window_years`-wide year buckets.
    pub fn new(inner: Box<dyn Ranker>, window_years: i32) -> Self {
        assert!(window_years > 0, "window must be positive");
        RescaledRanker { inner, window_years }
    }
}

/// Z-score `scores` within year buckets; buckets with fewer than 2
/// articles (or zero variance) get z = 0 for their members. The output is
/// shifted/renormalized into a distribution (min-shifted to non-negative,
/// then L1-normalized) so the [`Ranker`] contract holds.
pub fn rescale_by_year(corpus: &Corpus, scores: &[f64], window_years: i32) -> Vec<f64> {
    assert_eq!(scores.len(), corpus.num_articles(), "score length mismatch");
    let years: Vec<Year> = corpus.articles().iter().map(|a| a.year).collect();
    rescale_by_years(&years, scores, window_years)
}

/// [`rescale_by_year`] on a bare per-article year vector — the form
/// backend-agnostic callers (mmap-backed contexts) use.
pub fn rescale_by_years(years: &[Year], scores: &[f64], window_years: i32) -> Vec<f64> {
    assert_eq!(scores.len(), years.len(), "score length mismatch");
    assert!(window_years > 0, "window must be positive");
    let n = scores.len();
    if n == 0 {
        return Vec::new();
    }
    let first = years.iter().copied().min().expect("non-empty corpus");
    // Bucket index per article.
    let bucket_of: Vec<usize> =
        years.iter().map(|&y| ((y - first).max(0) / window_years) as usize).collect();
    let num_buckets = bucket_of.iter().copied().max().unwrap_or(0) + 1;
    let mut count = vec![0usize; num_buckets];
    let mut sum = vec![0.0f64; num_buckets];
    for (i, &b) in bucket_of.iter().enumerate() {
        count[b] += 1;
        sum[b] += scores[i];
    }
    let mean: Vec<f64> =
        sum.iter().zip(&count).map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 }).collect();
    let mut var = vec![0.0f64; num_buckets];
    for (i, &b) in bucket_of.iter().enumerate() {
        let d = scores[i] - mean[b];
        var[b] += d * d;
    }
    let std: Vec<f64> = var
        .iter()
        .zip(&count)
        .map(|(&v, &c)| if c > 1 { (v / c as f64).sqrt() } else { 0.0 })
        .collect();

    let mut z: Vec<f64> = (0..n)
        .map(|i| {
            let b = bucket_of[i];
            if std[b] > 0.0 {
                (scores[i] - mean[b]) / std[b]
            } else {
                0.0
            }
        })
        .collect();
    // Shift to non-negative and normalize into a distribution.
    let min = z.iter().copied().fold(f64::INFINITY, f64::min);
    for v in &mut z {
        *v -= min;
    }
    crate::scores::normalize_or_uniform(&mut z);
    z
}

impl Ranker for RescaledRanker {
    fn name(&self) -> String {
        format!("Rescaled[{}]({}y)", self.inner.name(), self.window_years)
    }

    fn solve_ctx(&self, ctx: &RankContext) -> RankOutput {
        let inner = self.inner.solve_ctx(ctx);
        if inner.scores.is_empty() {
            return inner;
        }
        let scores = rescale_by_years(ctx.years(), &inner.scores, self.window_years);
        // The rescaling itself is closed-form; the telemetry that matters
        // (iterations, convergence, walls) is the wrapped solve's.
        RankOutput { scores, telemetry: inner.telemetry }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::citation_count::CitationCount;
    use crate::pagerank::PageRank;
    use crate::scores::top_k;
    use scholar_corpus::generator::Preset;
    use scholar_corpus::CorpusBuilder;

    #[test]
    fn z_scoring_within_buckets() {
        // Two years; within each year one article dominates.
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        b.add_article("1990-star", 1990, v, vec![], vec![], None);
        b.add_article("1990-meh", 1990, v, vec![], vec![], None);
        b.add_article("1991-star", 1991, v, vec![], vec![], None);
        b.add_article("1991-meh", 1991, v, vec![], vec![], None);
        let c = b.finish().unwrap();
        // Raw scores: 1990 articles are an order of magnitude higher.
        let raw = [1.0, 0.5, 0.1, 0.05];
        let z = rescale_by_year(&c, &raw, 1);
        // After rescaling, the two stars tie (each is +1σ of its year).
        assert!((z[0] - z[2]).abs() < 1e-12, "stars should tie: {z:?}");
        assert!((z[1] - z[3]).abs() < 1e-12, "mehs should tie: {z:?}");
        assert!(z[0] > z[1]);
        assert!((z.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn removes_age_bias_from_pagerank() {
        let c = Preset::Tiny.generate(91);
        let (lo, hi) = c.year_range().unwrap();
        let mid = (lo + hi) / 2;
        let old_in_top = |scores: &[f64]| {
            top_k(scores, 30).iter().filter(|&&i| c.articles()[i].year <= mid).count()
        };
        let pr = PageRank::default().rank(&c);
        let rescaled = RescaledRanker::new(Box::new(PageRank::default()), 1).rank(&c);
        assert!(
            old_in_top(&rescaled) < old_in_top(&pr),
            "rescaling should de-skew the top ({} vs {})",
            old_in_top(&rescaled),
            old_in_top(&pr)
        );
    }

    #[test]
    fn degenerate_buckets_are_safe() {
        // Single article per year: all z = 0 -> uniform.
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        b.add_article("a", 2000, v, vec![], vec![], None);
        b.add_article("b", 2001, v, vec![], vec![], None);
        let c = b.finish().unwrap();
        let z = rescale_by_year(&c, &[0.9, 0.1], 1);
        assert_eq!(z, vec![0.5, 0.5]);
    }

    #[test]
    fn wider_window_merges_buckets() {
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        b.add_article("a", 2000, v, vec![], vec![], None);
        b.add_article("b", 2001, v, vec![], vec![], None);
        let c = b.finish().unwrap();
        // With a 5-year window both land in one bucket; scores differ.
        let z = rescale_by_year(&c, &[0.9, 0.1], 5);
        assert!(z[0] > z[1]);
    }

    #[test]
    fn ranker_wrapper_name_and_contract() {
        let c = Preset::Tiny.generate(92);
        let r = RescaledRanker::new(Box::new(CitationCount), 3);
        assert_eq!(r.name(), "Rescaled[CitCount](3y)");
        let s = r.rank(&c);
        assert_eq!(s.len(), c.num_articles());
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn empty_corpus() {
        let c = CorpusBuilder::new().finish().unwrap();
        let r = RescaledRanker::new(Box::new(CitationCount), 1);
        assert!(r.rank(&c).is_empty());
    }
}
