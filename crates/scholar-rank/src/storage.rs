//! The backing-store abstraction under [`RankContext`](crate::RankContext).
//!
//! Every derived structure a ranker consumes — citation CSRs, decayed
//! variants, venue/author aggregates, bipartites, year vectors — is a
//! deterministic function of the corpus's *structure*: per-article
//! `(year, venue, byline, references)` plus the entity counts.
//! [`Storage`] captures exactly that surface, so the context can build
//! identical derived structures from the in-RAM [`Corpus`] or from an
//! mmap-backed [`ColStore`] without the rankers knowing which is
//! underneath.
//!
//! ## Bit identity
//!
//! `sgraph::GraphBuilder` is deterministic: replaying the same
//! `add_edge` sequence yields a byte-identical `CsrGraph`. Both
//! implementations here therefore walk articles in ascending id order
//! and references in stored (ascending) order — the exact insertion
//! sequence the original `Corpus` methods use — so a graph derived
//! through either backend is *the same graph*, and every score computed
//! downstream is bit-for-bit unchanged. The conformance suite
//! (`tests/conformance.rs`) locks this in for the whole ranker roster.
//!
//! Weight closures receive `(citing_year, cited_year)`: publication
//! years are the only article attribute any edge-weight kernel in the
//! stack reads.

use scholar_corpus::colstore::ColStore;
use scholar_corpus::model::author_position_weights;
use scholar_corpus::{Corpus, Year};
use sgraph::{Bipartite, BipartiteBuilder, CsrGraph, GraphBuilder, NodeId};

/// The [`Storage`] surface is infallible by design — rankers consume
/// stores that were already opened and validated. A corrupt record
/// surfacing mid-scan has no recovery at this layer, so it aborts with
/// the colstore's typed diagnosis instead of a bare index panic.
fn decoded<T>(r: scholar_corpus::Result<T>) -> T {
    r.unwrap_or_else(|e| panic!("column store decode failed: {e}"))
}

/// One article's structural row, borrowed from the backing store during
/// [`Storage::for_each_article`].
#[derive(Debug)]
pub struct ArticleRow<'a> {
    /// Dense article id (also the row index).
    pub id: u32,
    /// Publication year.
    pub year: Year,
    /// Venue id.
    pub venue: u32,
    /// Author ids in byline order.
    pub authors: &'a [u32],
    /// Cited article ids, strictly ascending.
    pub refs: &'a [u32],
}

/// A corpus backing store: the structural surface from which every
/// ranker-visible derived structure is built.
///
/// Object-safe so [`RankContext`](crate::RankContext) can hold either
/// backend behind one reference; weight kernels are passed as
/// `&mut dyn FnMut(citing_year, cited_year) -> f64`.
pub trait Storage: Sync {
    /// Number of articles.
    fn num_articles(&self) -> usize;
    /// Number of distinct authors.
    fn num_authors(&self) -> usize;
    /// Number of distinct venues.
    fn num_venues(&self) -> usize;
    /// Total number of citation edges.
    fn num_citations(&self) -> usize;
    /// `(earliest, latest)` publication year, `None` when empty.
    fn year_range(&self) -> Option<(Year, Year)>;
    /// Publication year per article.
    fn years(&self) -> Vec<Year>;
    /// The unweighted citation CSR (citing → cited, unit weights).
    fn citation_graph(&self) -> CsrGraph;
    /// The citation CSR with `f(citing_year, cited_year)` edge weights.
    fn weighted_citation_graph(&self, f: &mut dyn FnMut(Year, Year) -> f64) -> CsrGraph;
    /// Venue-aggregated citation graph (self-loops dropped).
    fn venue_graph(&self, f: &mut dyn FnMut(Year, Year) -> f64) -> CsrGraph;
    /// Author-aggregated citation graph with byline-position weights.
    fn author_graph(
        &self,
        f: &mut dyn FnMut(Year, Year) -> f64,
        drop_self_citations: bool,
    ) -> CsrGraph;
    /// Authorship bipartite (authors × articles, harmonic byline weights).
    fn authorship_bipartite(&self) -> Bipartite;
    /// Publication bipartite (venues × articles, unit weights).
    fn publication_bipartite(&self) -> Bipartite;
    /// Citation count (in-degree) per article.
    fn citation_counts(&self) -> Vec<u32>;
    /// Visit every article in ascending id order with zero per-article
    /// allocation (rows borrow internal scratch buffers).
    fn for_each_article(&self, visit: &mut dyn FnMut(ArticleRow<'_>));
}

impl Storage for Corpus {
    fn num_articles(&self) -> usize {
        Corpus::num_articles(self)
    }

    fn num_authors(&self) -> usize {
        Corpus::num_authors(self)
    }

    fn num_venues(&self) -> usize {
        Corpus::num_venues(self)
    }

    fn num_citations(&self) -> usize {
        Corpus::num_citations(self)
    }

    fn year_range(&self) -> Option<(Year, Year)> {
        Corpus::year_range(self)
    }

    fn years(&self) -> Vec<Year> {
        self.articles().iter().map(|a| a.year).collect()
    }

    fn citation_graph(&self) -> CsrGraph {
        Corpus::citation_graph(self)
    }

    fn weighted_citation_graph(&self, f: &mut dyn FnMut(Year, Year) -> f64) -> CsrGraph {
        Corpus::weighted_citation_graph(self, |citing, cited| f(citing.year, cited.year))
    }

    fn venue_graph(&self, f: &mut dyn FnMut(Year, Year) -> f64) -> CsrGraph {
        Corpus::venue_graph(self, |citing, cited| f(citing.year, cited.year))
    }

    fn author_graph(
        &self,
        f: &mut dyn FnMut(Year, Year) -> f64,
        drop_self_citations: bool,
    ) -> CsrGraph {
        Corpus::author_graph(self, |citing, cited| f(citing.year, cited.year), drop_self_citations)
    }

    fn authorship_bipartite(&self) -> Bipartite {
        Corpus::authorship_bipartite(self)
    }

    fn publication_bipartite(&self) -> Bipartite {
        Corpus::publication_bipartite(self)
    }

    fn citation_counts(&self) -> Vec<u32> {
        Corpus::citation_counts(self)
    }

    fn for_each_article(&self, visit: &mut dyn FnMut(ArticleRow<'_>)) {
        let mut byline: Vec<u32> = Vec::new();
        let mut refs: Vec<u32> = Vec::new();
        for a in self.articles() {
            byline.clear();
            byline.extend(a.authors.iter().map(|x| x.0));
            refs.clear();
            refs.extend(a.references.iter().map(|x| x.0));
            visit(ArticleRow {
                id: a.id.0,
                year: a.year,
                venue: a.venue.0,
                authors: &byline,
                refs: &refs,
            });
        }
    }
}

impl Storage for ColStore {
    fn num_articles(&self) -> usize {
        ColStore::num_articles(self)
    }

    fn num_authors(&self) -> usize {
        ColStore::num_authors(self)
    }

    fn num_venues(&self) -> usize {
        ColStore::num_venues(self)
    }

    fn num_citations(&self) -> usize {
        ColStore::num_citations(self) as usize
    }

    fn year_range(&self) -> Option<(Year, Year)> {
        ColStore::year_range(self)
    }

    fn years(&self) -> Vec<Year> {
        ColStore::years(self).to_vec()
    }

    fn citation_graph(&self) -> CsrGraph {
        let n = self.num_articles();
        let mut b = GraphBuilder::new(n as u32)
            .with_edge_capacity(Storage::num_citations(self))
            .self_loops(false);
        let mut refs = Vec::new();
        for i in 0..n {
            decoded(self.refs_of(i, &mut refs));
            for &r in &refs {
                b.add_unweighted(NodeId(i as u32), NodeId(r));
            }
        }
        b.build()
    }

    fn weighted_citation_graph(&self, f: &mut dyn FnMut(Year, Year) -> f64) -> CsrGraph {
        let n = self.num_articles();
        let years = ColStore::years(self);
        let mut b = GraphBuilder::new(n as u32)
            .with_edge_capacity(Storage::num_citations(self))
            .self_loops(false);
        let mut refs = Vec::new();
        for i in 0..n {
            decoded(self.refs_of(i, &mut refs));
            for &r in &refs {
                let w = f(years[i], years[r as usize]);
                b.add_edge(NodeId(i as u32), NodeId(r), w);
            }
        }
        b.build()
    }

    fn venue_graph(&self, f: &mut dyn FnMut(Year, Year) -> f64) -> CsrGraph {
        let n = self.num_articles();
        let years = ColStore::years(self);
        let mut b = GraphBuilder::new(self.num_venues() as u32).self_loops(false);
        let mut refs = Vec::new();
        for i in 0..n {
            decoded(self.refs_of(i, &mut refs));
            for &r in &refs {
                let w = f(years[i], years[r as usize]);
                b.add_edge(NodeId(self.venue_of(i)), NodeId(self.venue_of(r as usize)), w);
            }
        }
        b.build()
    }

    fn author_graph(
        &self,
        f: &mut dyn FnMut(Year, Year) -> f64,
        drop_self_citations: bool,
    ) -> CsrGraph {
        let n = self.num_articles();
        let years = ColStore::years(self);
        let mut b = GraphBuilder::new(self.num_authors() as u32).self_loops(!drop_self_citations);
        let mut byline = Vec::new();
        let mut cited_byline = Vec::new();
        let mut refs = Vec::new();
        for i in 0..n {
            decoded(self.authors_of(i, &mut byline));
            if byline.is_empty() {
                continue;
            }
            let wa = author_position_weights(byline.len());
            decoded(self.refs_of(i, &mut refs));
            for &r in &refs {
                decoded(self.authors_of(r as usize, &mut cited_byline));
                if cited_byline.is_empty() {
                    continue;
                }
                let wc = author_position_weights(cited_byline.len());
                let base = f(years[i], years[r as usize]);
                if base <= 0.0 {
                    continue;
                }
                for (&ua, &pa) in byline.iter().zip(&wa) {
                    for (&uc, &pc) in cited_byline.iter().zip(&wc) {
                        if drop_self_citations && ua == uc {
                            continue;
                        }
                        b.add_edge(NodeId(ua), NodeId(uc), base * pa * pc);
                    }
                }
            }
        }
        b.build()
    }

    fn authorship_bipartite(&self) -> Bipartite {
        let n = self.num_articles();
        let mut b = BipartiteBuilder::new(self.num_authors() as u32, n as u32);
        let mut byline = Vec::new();
        for i in 0..n {
            decoded(self.authors_of(i, &mut byline));
            let w = author_position_weights(byline.len());
            for (&author, &weight) in byline.iter().zip(&w) {
                b.add_edge(author, i as u32, weight);
            }
        }
        b.build()
    }

    fn publication_bipartite(&self) -> Bipartite {
        let n = self.num_articles();
        let mut b = BipartiteBuilder::new(self.num_venues() as u32, n as u32);
        for i in 0..n {
            b.add_edge(self.venue_of(i), i as u32, 1.0);
        }
        b.build()
    }

    fn citation_counts(&self) -> Vec<u32> {
        let n = self.num_articles();
        let mut counts = vec![0u32; n];
        let mut refs = Vec::new();
        for i in 0..n {
            decoded(self.refs_of(i, &mut refs));
            for &r in &refs {
                counts[r as usize] += 1;
            }
        }
        counts
    }

    fn for_each_article(&self, visit: &mut dyn FnMut(ArticleRow<'_>)) {
        let n = self.num_articles();
        let years = ColStore::years(self);
        let mut byline = Vec::new();
        let mut refs = Vec::new();
        for (i, &year) in years.iter().enumerate().take(n) {
            decoded(self.authors_of(i, &mut byline));
            decoded(self.refs_of(i, &mut refs));
            visit(ArticleRow {
                id: i as u32,
                year,
                venue: self.venue_of(i),
                authors: &byline,
                refs: &refs,
            });
        }
    }
}

#[cfg(all(test, not(miri)))]
mod tests {
    use super::*;
    use scholar_corpus::generator::Preset;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("storage-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    /// Every derived structure must be byte-identical across backends.
    #[test]
    fn backends_derive_identical_structures() {
        let corpus = Preset::Tiny.generate(9);
        let dir = tmpdir("equiv");
        corpus.write_colstore(&dir).unwrap();
        let store = scholar_corpus::colstore::ColStore::open(&dir).unwrap();

        let ram: &dyn Storage = &corpus;
        let mm: &dyn Storage = &store;

        assert_eq!(ram.num_articles(), mm.num_articles());
        assert_eq!(ram.num_authors(), mm.num_authors());
        assert_eq!(ram.num_venues(), mm.num_venues());
        assert_eq!(ram.num_citations(), mm.num_citations());
        assert_eq!(ram.year_range(), mm.year_range());
        assert_eq!(ram.years(), mm.years());
        assert_eq!(ram.citation_counts(), mm.citation_counts());

        let decay = |rho: f64| {
            move |citing: Year, cited: Year| (-rho * ((citing - cited) as f64).max(0.0)).exp()
        };
        assert_eq!(ram.citation_graph(), mm.citation_graph());
        assert_eq!(
            ram.weighted_citation_graph(&mut decay(0.15)),
            mm.weighted_citation_graph(&mut decay(0.15))
        );
        assert_eq!(ram.venue_graph(&mut decay(0.15)), mm.venue_graph(&mut decay(0.15)));
        for drop_self in [false, true] {
            assert_eq!(
                ram.author_graph(&mut decay(0.15), drop_self),
                mm.author_graph(&mut decay(0.15), drop_self)
            );
        }
        assert_eq!(ram.authorship_bipartite(), mm.authorship_bipartite());
        assert_eq!(ram.publication_bipartite(), mm.publication_bipartite());

        type Row = (u32, Year, u32, Vec<u32>, Vec<u32>);
        let mut rows_ram: Vec<Row> = Vec::new();
        ram.for_each_article(&mut |r| {
            rows_ram.push((r.id, r.year, r.venue, r.authors.to_vec(), r.refs.to_vec()));
        });
        let mut rows_mm = Vec::new();
        mm.for_each_article(&mut |r| {
            rows_mm.push((r.id, r.year, r.venue, r.authors.to_vec(), r.refs.to_vec()));
        });
        assert_eq!(rows_ram, rows_mm);

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
