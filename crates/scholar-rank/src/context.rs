//! The shared prepared-corpus substrate under every ranker.
//!
//! A [`RankContext`] is built once per corpus and lazily caches every
//! derived structure the ranker suite needs: the citation CSR (forward +
//! reverse adjacency), its row-stochastic walk operator with dangling
//! sets and out-weight sums, the author/venue bipartite maps, citation
//! counts, per-article year vectors, time-decayed citation operators
//! keyed by their decay parameters, and a memo of completed solves keyed
//! by the full parameter string. Rankers implement
//! [`crate::ranker::Ranker::solve_ctx`] against this context; the old
//! `rank(&Corpus)` entry point survives as a thin wrapper that builds a
//! throwaway context.
//!
//! Since the out-of-core refactor the context solves through the
//! [`Storage`] backing-store abstraction: [`RankContext::new`] wraps the
//! in-RAM [`Corpus`], [`RankContext::from_colstore`] wraps an
//! mmap-backed [`ColStore`]. Both backends derive bit-identical
//! structures (see `storage.rs`), so every ranker produces the same
//! scores either way; on the mmap backend the time-decayed citation
//! operator can additionally stay *out of core* via
//! [`RankContext::decayed_plan`], which materializes a sharded
//! [`MmapCsr`] next to the store instead of a dense operator.
//!
//! Invalidation is by construction: a context borrows an immutable
//! backing store and is dropped when the store changes (there is no
//! in-place mutation to track). Caches are interior-mutable
//! (`OnceLock`/`Mutex`) so a shared `&RankContext` works from the
//! evaluation harness without threading `&mut` everywhere.

use crate::diagnostics::Diagnostics;
use crate::storage::Storage;
use scholar_corpus::colstore::ColStore;
use scholar_corpus::{Corpus, Year};
use sgraph::mmap_csr::{MmapCsr, MmapCsrBuilder};
use sgraph::{Bipartite, CsrGraph, JumpVector, RowStochastic};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A time-decayed citation graph (`exp(-ρ·citation_age)` edge weights)
/// and its walk operator, cached per ρ inside [`RankContext`]. Citation
/// age is the year difference of the two endpoints, so the graph is
/// independent of the caller's "now".
#[derive(Debug)]
pub struct DecayedCitation {
    /// CSR with exponentially decayed edge weights.
    pub graph: CsrGraph,
    /// Pull-form walk operator over `graph`.
    pub op: RowStochastic,
}

/// Where a context's decayed citation operator lives — the solve plan
/// returned by [`RankContext::decayed_plan`].
///
/// Both variants implement `sgraph::CsrStore` and produce bit-identical
/// power-iteration trajectories; the partitioned variant's peak memory
/// is two iterate vectors plus one shard.
#[derive(Clone)]
pub enum DecayedPlan {
    /// Dense in-RAM operator (the in-RAM backend's plan).
    Dense(Arc<DecayedCitation>),
    /// Mmap-backed shard file (the colstore backend's plan).
    Partitioned(Arc<MmapCsr>),
}

/// A memoized solve: normalized scores plus convergence diagnostics.
pub type SolveRecord = (Vec<f64>, Diagnostics);

enum Backing<'c> {
    Ram(&'c Corpus),
    Mmap(&'c ColStore),
}

/// Prepared, lazily-cached derived structures for one corpus.
///
/// Build once with [`RankContext::new`] (in-RAM) or
/// [`RankContext::from_colstore`] (mmap-backed), then hand `&ctx` to any
/// number of rankers: the first user of each structure pays for its
/// construction, everyone after reads the cache.
pub struct RankContext<'c> {
    backing: Backing<'c>,
    now: Option<Year>,
    citation: OnceLock<CsrGraph>,
    citation_op: OnceLock<RowStochastic>,
    authorship: OnceLock<Bipartite>,
    publication: OnceLock<Bipartite>,
    citation_counts: OnceLock<Vec<u32>>,
    years: OnceLock<Vec<Year>>,
    decayed: Mutex<BTreeMap<u64, Arc<DecayedCitation>>>,
    partitioned: Mutex<BTreeMap<u64, Arc<MmapCsr>>>,
    solves: Mutex<BTreeMap<String, Arc<SolveRecord>>>,
}

impl<'c> RankContext<'c> {
    /// A fresh context over the in-RAM `corpus`. Cheap: nothing is built
    /// until a ranker asks for it.
    pub fn new(corpus: &'c Corpus) -> Self {
        Self::over(Backing::Ram(corpus))
    }

    /// A fresh context over an mmap-backed columnar store. Rankers see
    /// the same interface and produce bit-identical scores; the decayed
    /// citation operator can stay out of core via
    /// [`RankContext::decayed_plan`].
    pub fn from_colstore(store: &'c ColStore) -> Self {
        Self::over(Backing::Mmap(store))
    }

    fn over(backing: Backing<'c>) -> Self {
        let now = {
            let store: &dyn Storage = match &backing {
                Backing::Ram(c) => *c,
                Backing::Mmap(s) => *s,
            };
            store.year_range().map(|(_, hi)| hi)
        };
        RankContext {
            backing,
            now,
            citation: OnceLock::new(),
            citation_op: OnceLock::new(),
            authorship: OnceLock::new(),
            publication: OnceLock::new(),
            citation_counts: OnceLock::new(),
            years: OnceLock::new(),
            decayed: Mutex::new(BTreeMap::new()),
            partitioned: Mutex::new(BTreeMap::new()),
            solves: Mutex::new(BTreeMap::new()),
        }
    }

    /// The backing store this context solves through.
    pub fn store(&self) -> &'c dyn Storage {
        match &self.backing {
            Backing::Ram(c) => *c,
            Backing::Mmap(s) => *s,
        }
    }

    /// The underlying in-RAM corpus.
    ///
    /// # Panics
    /// Panics on an mmap-backed context ([`RankContext::from_colstore`]):
    /// string-bearing consumers (explainers, serving, personalized
    /// lookups) require the in-RAM backend. Rankers must go through
    /// [`RankContext::store`] and the typed accessors instead.
    pub fn corpus(&self) -> &'c Corpus {
        match &self.backing {
            Backing::Ram(c) => c,
            Backing::Mmap(_) => panic!(
                "RankContext::corpus() requires the in-RAM backend; \
                 this context is colstore-backed (use store() accessors)"
            ),
        }
    }

    /// Number of articles (ranking vectors have this length).
    pub fn num_articles(&self) -> usize {
        self.store().num_articles()
    }

    /// Number of distinct authors.
    pub fn num_authors(&self) -> usize {
        self.store().num_authors()
    }

    /// Number of distinct venues.
    pub fn num_venues(&self) -> usize {
        self.store().num_venues()
    }

    /// The corpus's last publication year, or `None` for an empty
    /// (yearless) corpus — the checked form of [`RankContext::now`].
    pub fn try_now(&self) -> Option<Year> {
        self.now
    }

    /// The corpus's last publication year; the default "now" for
    /// recency-aware rankers.
    ///
    /// Returns the documented sentinel `0` for an *empty* corpus. That
    /// is safe — with no articles there are no ages to decay and every
    /// ranker returns an empty score vector — but callers that would
    /// feed "now" into decay weights for a non-empty corpus of their own
    /// should prefer [`RankContext::try_now`] and handle `None`
    /// explicitly.
    pub fn now(&self) -> Year {
        self.now.unwrap_or(0)
    }

    /// The unweighted citation CSR (built once per context).
    pub fn citation_graph(&self) -> &CsrGraph {
        self.citation.get_or_init(|| self.store().citation_graph())
    }

    /// The row-stochastic walk operator over [`Self::citation_graph`],
    /// with dangling sets and out-weight normalization precomputed.
    pub fn citation_op(&self) -> &RowStochastic {
        self.citation_op.get_or_init(|| RowStochastic::new(self.citation_graph()))
    }

    /// Authorship bipartite (left = authors, right = articles, harmonic
    /// byline weights).
    pub fn authorship(&self) -> &Bipartite {
        self.authorship.get_or_init(|| self.store().authorship_bipartite())
    }

    /// Publication bipartite (left = venues, right = articles, unit
    /// weights).
    pub fn publication(&self) -> &Bipartite {
        self.publication.get_or_init(|| self.store().publication_bipartite())
    }

    /// Venue-aggregated citation graph with `f(citing_year, cited_year)`
    /// edge weights (not cached: each caller's kernel differs).
    pub fn venue_graph_with(&self, mut f: impl FnMut(Year, Year) -> f64) -> CsrGraph {
        self.store().venue_graph(&mut f)
    }

    /// Author-aggregated citation graph with byline-position weights
    /// scaled by `f(citing_year, cited_year)`.
    pub fn author_graph_with(
        &self,
        mut f: impl FnMut(Year, Year) -> f64,
        drop_self_citations: bool,
    ) -> CsrGraph {
        self.store().author_graph(&mut f, drop_self_citations)
    }

    /// Citation counts per article (in-degree).
    pub fn citation_counts(&self) -> &[u32] {
        self.citation_counts.get_or_init(|| self.store().citation_counts())
    }

    /// Publication year per article.
    pub fn years(&self) -> &[Year] {
        self.years.get_or_init(|| self.store().years())
    }

    /// Article ages in years relative to `now`, clamped at 0. Computed
    /// from the cached year vector (not itself cached: it is a single
    /// cheap pass and `now` varies per caller).
    pub fn ages(&self, now: Year) -> Vec<f64> {
        self.years().iter().map(|&y| (now - y).max(0) as f64).collect()
    }

    /// The recency-personalized jump vector `j(v) ∝ exp(-τ·age(v))`
    /// (uniform when `τ = 0` or the corpus is empty).
    pub fn recency_jump(&self, tau: f64, now: Year) -> JumpVector {
        if tau == 0.0 || self.num_articles() == 0 {
            return JumpVector::Uniform;
        }
        let weights: Vec<f64> =
            self.years().iter().map(|&y| (-tau * (now - y).max(0) as f64).exp()).collect();
        JumpVector::weighted(weights)
    }

    /// The time-decayed citation graph + operator for decay rate `rho`,
    /// cached per rate. TWPR and QRank's article layer share one entry
    /// under default configs.
    pub fn decayed_citation(&self, rho: f64) -> Arc<DecayedCitation> {
        let key = rho.to_bits();
        if let Some(hit) = self.decayed.lock().unwrap().get(&key) {
            return Arc::clone(hit);
        }
        let graph = self.store().weighted_citation_graph(&mut |citing, cited| {
            crate::time_weighted::TimeWeightedPageRank::edge_weight(rho, (citing - cited) as f64)
        });
        let op = RowStochastic::new(&graph);
        let entry = Arc::new(DecayedCitation { graph, op });
        self.decayed.lock().unwrap().entry(key).or_insert_with(|| Arc::clone(&entry));
        entry
    }

    /// The decayed-citation *solve plan* for decay rate `rho`: dense on
    /// the in-RAM backend, a sharded mmap CSR on the colstore backend.
    ///
    /// On the colstore backend the shard file is materialized next to
    /// the columns as `csr-rho<bits>-g<generation>.scsr`, streamed
    /// straight from the reference postings (the dense graph is never
    /// built), and reused across contexts: an existing file whose
    /// header tag matches the store generation is opened as-is.
    ///
    /// # Panics
    /// Panics if the colstore backend cannot write or reopen the shard
    /// file (disk full, permissions); ranking cannot proceed without it.
    pub fn decayed_plan(&self, rho: f64) -> DecayedPlan {
        let store = match &self.backing {
            Backing::Ram(_) => return DecayedPlan::Dense(self.decayed_citation(rho)),
            Backing::Mmap(s) => *s,
        };
        let key = rho.to_bits();
        if let Some(hit) = self.partitioned.lock().unwrap().get(&key) {
            return DecayedPlan::Partitioned(Arc::clone(hit));
        }
        let tag = store.generation();
        let path = store.dir().join(format!("csr-rho{:016x}-g{tag:016x}.scsr", key));
        let opened = match MmapCsr::open(&path, Some(tag)) {
            Ok(csr) => csr,
            Err(_) => {
                // Build (or rebuild a stale/corrupt cache) by streaming
                // the reference postings through the shard writer.
                let n = store.num_articles();
                let shard_size = (n.div_ceil(8)).max(1024);
                let mut b =
                    MmapCsrBuilder::new(&path, n, shard_size).expect("create decayed shard file");
                let years = store.years();
                let mut refs = Vec::new();
                let mut weights = Vec::new();
                for i in 0..n {
                    store
                        .refs_of(i, &mut refs)
                        .unwrap_or_else(|e| panic!("column store decode failed: {e}"));
                    weights.clear();
                    weights.extend(refs.iter().map(|&r| {
                        crate::time_weighted::TimeWeightedPageRank::edge_weight(
                            rho,
                            (years[i] - years[r as usize]) as f64,
                        )
                    }));
                    b.add_source(&refs, &weights).expect("spill decayed shard edges");
                }
                b.finish(tag).expect("publish decayed shard file");
                MmapCsr::open(&path, Some(tag)).expect("reopen decayed shard file")
            }
        };
        let entry = Arc::new(opened);
        self.partitioned.lock().unwrap().entry(key).or_insert_with(|| Arc::clone(&entry));
        DecayedPlan::Partitioned(entry)
    }

    /// Memoized solve: if `key` was solved before in this context, the
    /// recorded scores and diagnostics are returned with `cached = true`;
    /// otherwise `f` runs and its result is recorded. Keys must encode
    /// every parameter that affects the result (ranker + full config),
    /// which is exactly what the rankers' display names plus solver
    /// tolerances provide. The lock is not held while `f` runs, so a
    /// solve may itself consult the memo (QRank's inner walk reuses a
    /// TWPR entry this way).
    pub fn cached_solve(
        &self,
        key: &str,
        f: impl FnOnce() -> SolveRecord,
    ) -> (Vec<f64>, Diagnostics, bool) {
        if let Some(hit) = self.solves.lock().unwrap().get(key) {
            return (hit.0.clone(), hit.1.clone(), true);
        }
        let (scores, diag) = f();
        self.solves
            .lock()
            .unwrap()
            .entry(key.to_owned())
            .or_insert_with(|| Arc::new((scores.clone(), diag.clone())));
        (scores, diag, false)
    }
}

impl std::fmt::Debug for RankContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankContext")
            .field("articles", &self.num_articles())
            .field(
                "backing",
                &match &self.backing {
                    Backing::Ram(_) => "ram",
                    Backing::Mmap(_) => "mmap",
                },
            )
            .field("now", &self.now)
            .field("citation_built", &self.citation.get().is_some())
            .field("decayed_entries", &self.decayed.lock().unwrap().len())
            .field("partitioned_entries", &self.partitioned.lock().unwrap().len())
            .field("memoized_solves", &self.solves.lock().unwrap().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scholar_corpus::generator::Preset;

    #[test]
    fn citation_graph_is_built_exactly_once() {
        let c = Preset::Tiny.generate(3);
        let ctx = RankContext::new(&c);
        assert_eq!(c.citation_graph_builds(), 0);
        let _ = ctx.citation_graph();
        let _ = ctx.citation_op();
        let _ = ctx.citation_graph();
        assert_eq!(c.citation_graph_builds(), 1);
    }

    #[test]
    fn decayed_citation_caches_per_parameter_pair() {
        let c = Preset::Tiny.generate(3);
        let ctx = RankContext::new(&c);
        let a = ctx.decayed_citation(0.15);
        let b = ctx.decayed_citation(0.15);
        assert!(Arc::ptr_eq(&a, &b), "same decay rate must share one entry");
        let other = ctx.decayed_citation(0.3);
        assert!(!Arc::ptr_eq(&a, &other));
        assert_eq!(a.graph.num_nodes() as usize, c.num_articles());
    }

    #[test]
    fn cached_solve_hits_on_second_call() {
        let c = Preset::Tiny.generate(3);
        let ctx = RankContext::new(&c);
        let mut calls = 0;
        let (s1, _, hit1) = ctx.cached_solve("k", || {
            calls += 1;
            (vec![0.5, 0.5], Diagnostics::closed_form())
        });
        let (s2, _, hit2) = ctx.cached_solve("k", || {
            calls += 1;
            (vec![0.0, 1.0], Diagnostics::closed_form())
        });
        assert!(!hit1 && hit2);
        assert_eq!(calls, 1);
        assert_eq!(s1, s2, "a hit must return the recorded scores bit-for-bit");
    }

    #[test]
    fn years_and_ages_align_with_articles() {
        let c = Preset::Tiny.generate(3);
        let ctx = RankContext::new(&c);
        assert_eq!(ctx.years().len(), c.num_articles());
        let ages = ctx.ages(ctx.now());
        assert_eq!(ages.len(), c.num_articles());
        assert!(ages.iter().all(|&a| a >= 0.0));
        assert_eq!(ctx.now(), c.year_range().unwrap().1);
        assert_eq!(ctx.try_now(), Some(c.year_range().unwrap().1));
    }

    #[test]
    fn empty_corpus_context() {
        let c = scholar_corpus::CorpusBuilder::new().finish().unwrap();
        let ctx = RankContext::new(&c);
        assert_eq!(ctx.try_now(), None, "empty corpus has no last year");
        assert_eq!(ctx.now(), 0, "documented sentinel for the unchecked accessor");
        assert_eq!(ctx.num_articles(), 0);
        assert_eq!(ctx.citation_graph().num_nodes(), 0);
        assert_eq!(ctx.citation_counts().len(), 0);
    }

    /// Regression for the `now` fallback: recency-aware rankers over an
    /// empty corpus must return cleanly instead of exploding decay
    /// weights off year-0 "now".
    #[test]
    fn empty_corpus_rankers_do_not_explode() {
        use crate::ranker::Ranker;
        let c = scholar_corpus::CorpusBuilder::new().finish().unwrap();
        let ctx = RankContext::new(&c);
        assert!(matches!(ctx.recency_jump(0.1, ctx.now()), JumpVector::Uniform));
        let out = crate::time_weighted::TimeWeightedPageRank::default().solve_ctx(&ctx);
        assert!(out.scores.is_empty());
        let out = crate::futurerank::FutureRank::default().solve_ctx(&ctx);
        assert!(out.scores.is_empty());
    }
}
