//! The shared prepared-corpus substrate under every ranker.
//!
//! A [`RankContext`] is built once per corpus and lazily caches every
//! derived structure the ranker suite needs: the citation CSR (forward +
//! reverse adjacency), its row-stochastic walk operator with dangling
//! sets and out-weight sums, the author/venue bipartite maps, citation
//! counts, per-article year vectors, time-decayed citation operators
//! keyed by their decay parameters, and a memo of completed solves keyed
//! by the full parameter string. Rankers implement
//! [`crate::ranker::Ranker::solve_ctx`] against this context; the old
//! `rank(&Corpus)` entry point survives as a thin wrapper that builds a
//! throwaway context.
//!
//! Invalidation is by construction: a context borrows an immutable
//! [`Corpus`] and is dropped when the corpus changes (there is no
//! in-place mutation to track). Caches are interior-mutable
//! (`OnceLock`/`Mutex`) so a shared `&RankContext` works from the
//! evaluation harness without threading `&mut` everywhere.

use crate::diagnostics::Diagnostics;
use scholar_corpus::{Corpus, Year};
use sgraph::{Bipartite, CsrGraph, JumpVector, RowStochastic};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A time-decayed citation graph (`exp(-ρ·citation_age)` edge weights)
/// and its walk operator, cached per ρ inside [`RankContext`]. Citation
/// age is the year difference of the two endpoints, so the graph is
/// independent of the caller's "now".
#[derive(Debug)]
pub struct DecayedCitation {
    /// CSR with exponentially decayed edge weights.
    pub graph: CsrGraph,
    /// Pull-form walk operator over `graph`.
    pub op: RowStochastic,
}

/// A memoized solve: normalized scores plus convergence diagnostics.
pub type SolveRecord = (Vec<f64>, Diagnostics);

/// Prepared, lazily-cached derived structures for one corpus.
///
/// Build once with [`RankContext::new`], then hand `&ctx` to any number
/// of rankers: the first user of each structure pays for its
/// construction, everyone after reads the cache.
pub struct RankContext<'c> {
    corpus: &'c Corpus,
    now: Year,
    citation: OnceLock<CsrGraph>,
    citation_op: OnceLock<RowStochastic>,
    authorship: OnceLock<Bipartite>,
    publication: OnceLock<Bipartite>,
    citation_counts: OnceLock<Vec<u32>>,
    years: OnceLock<Vec<Year>>,
    decayed: Mutex<BTreeMap<u64, Arc<DecayedCitation>>>,
    solves: Mutex<BTreeMap<String, Arc<SolveRecord>>>,
}

impl<'c> RankContext<'c> {
    /// A fresh context over `corpus`. Cheap: nothing is built until a
    /// ranker asks for it.
    pub fn new(corpus: &'c Corpus) -> Self {
        RankContext {
            corpus,
            now: corpus.year_range().map(|(_, hi)| hi).unwrap_or(0),
            citation: OnceLock::new(),
            citation_op: OnceLock::new(),
            authorship: OnceLock::new(),
            publication: OnceLock::new(),
            citation_counts: OnceLock::new(),
            years: OnceLock::new(),
            decayed: Mutex::new(BTreeMap::new()),
            solves: Mutex::new(BTreeMap::new()),
        }
    }

    /// The underlying corpus.
    pub fn corpus(&self) -> &'c Corpus {
        self.corpus
    }

    /// Number of articles (ranking vectors have this length).
    pub fn num_articles(&self) -> usize {
        self.corpus.num_articles()
    }

    /// The corpus's last publication year (0 for an empty corpus); the
    /// default "now" for recency-aware rankers.
    pub fn now(&self) -> Year {
        self.now
    }

    /// The unweighted citation CSR (built once per context).
    pub fn citation_graph(&self) -> &CsrGraph {
        self.citation.get_or_init(|| self.corpus.citation_graph())
    }

    /// The row-stochastic walk operator over [`Self::citation_graph`],
    /// with dangling sets and out-weight normalization precomputed.
    pub fn citation_op(&self) -> &RowStochastic {
        self.citation_op.get_or_init(|| RowStochastic::new(self.citation_graph()))
    }

    /// Authorship bipartite (left = authors, right = articles, harmonic
    /// byline weights).
    pub fn authorship(&self) -> &Bipartite {
        self.authorship.get_or_init(|| self.corpus.authorship_bipartite())
    }

    /// Publication bipartite (left = venues, right = articles, unit
    /// weights).
    pub fn publication(&self) -> &Bipartite {
        self.publication.get_or_init(|| self.corpus.publication_bipartite())
    }

    /// Citation counts per article (in-degree).
    pub fn citation_counts(&self) -> &[u32] {
        self.citation_counts.get_or_init(|| self.corpus.citation_counts())
    }

    /// Publication year per article.
    pub fn years(&self) -> &[Year] {
        self.years.get_or_init(|| self.corpus.articles().iter().map(|a| a.year).collect())
    }

    /// Article ages in years relative to `now`, clamped at 0. Computed
    /// from the cached year vector (not itself cached: it is a single
    /// cheap pass and `now` varies per caller).
    pub fn ages(&self, now: Year) -> Vec<f64> {
        self.years().iter().map(|&y| (now - y).max(0) as f64).collect()
    }

    /// The recency-personalized jump vector `j(v) ∝ exp(-τ·age(v))`
    /// (uniform when `τ = 0` or the corpus is empty).
    pub fn recency_jump(&self, tau: f64, now: Year) -> JumpVector {
        crate::time_weighted::TimeWeightedPageRank::recency_jump(self.corpus, tau, now)
    }

    /// The time-decayed citation graph + operator for decay rate `rho`,
    /// cached per rate. TWPR and QRank's article layer share one entry
    /// under default configs.
    pub fn decayed_citation(&self, rho: f64) -> Arc<DecayedCitation> {
        let key = rho.to_bits();
        if let Some(hit) = self.decayed.lock().unwrap().get(&key) {
            return Arc::clone(hit);
        }
        let graph = self.corpus.weighted_citation_graph(|citing, cited| {
            crate::time_weighted::TimeWeightedPageRank::edge_weight(
                rho,
                (citing.year - cited.year) as f64,
            )
        });
        let op = RowStochastic::new(&graph);
        let entry = Arc::new(DecayedCitation { graph, op });
        self.decayed.lock().unwrap().entry(key).or_insert_with(|| Arc::clone(&entry));
        entry
    }

    /// Memoized solve: if `key` was solved before in this context, the
    /// recorded scores and diagnostics are returned with `cached = true`;
    /// otherwise `f` runs and its result is recorded. Keys must encode
    /// every parameter that affects the result (ranker + full config),
    /// which is exactly what the rankers' display names plus solver
    /// tolerances provide. The lock is not held while `f` runs, so a
    /// solve may itself consult the memo (QRank's inner walk reuses a
    /// TWPR entry this way).
    pub fn cached_solve(
        &self,
        key: &str,
        f: impl FnOnce() -> SolveRecord,
    ) -> (Vec<f64>, Diagnostics, bool) {
        if let Some(hit) = self.solves.lock().unwrap().get(key) {
            return (hit.0.clone(), hit.1.clone(), true);
        }
        let (scores, diag) = f();
        self.solves
            .lock()
            .unwrap()
            .entry(key.to_owned())
            .or_insert_with(|| Arc::new((scores.clone(), diag.clone())));
        (scores, diag, false)
    }
}

impl std::fmt::Debug for RankContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankContext")
            .field("articles", &self.num_articles())
            .field("now", &self.now)
            .field("citation_built", &self.citation.get().is_some())
            .field("decayed_entries", &self.decayed.lock().unwrap().len())
            .field("memoized_solves", &self.solves.lock().unwrap().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scholar_corpus::generator::Preset;

    #[test]
    fn citation_graph_is_built_exactly_once() {
        let c = Preset::Tiny.generate(3);
        let ctx = RankContext::new(&c);
        assert_eq!(c.citation_graph_builds(), 0);
        let _ = ctx.citation_graph();
        let _ = ctx.citation_op();
        let _ = ctx.citation_graph();
        assert_eq!(c.citation_graph_builds(), 1);
    }

    #[test]
    fn decayed_citation_caches_per_parameter_pair() {
        let c = Preset::Tiny.generate(3);
        let ctx = RankContext::new(&c);
        let a = ctx.decayed_citation(0.15);
        let b = ctx.decayed_citation(0.15);
        assert!(Arc::ptr_eq(&a, &b), "same decay rate must share one entry");
        let other = ctx.decayed_citation(0.3);
        assert!(!Arc::ptr_eq(&a, &other));
        assert_eq!(a.graph.num_nodes() as usize, c.num_articles());
    }

    #[test]
    fn cached_solve_hits_on_second_call() {
        let c = Preset::Tiny.generate(3);
        let ctx = RankContext::new(&c);
        let mut calls = 0;
        let (s1, _, hit1) = ctx.cached_solve("k", || {
            calls += 1;
            (vec![0.5, 0.5], Diagnostics::closed_form())
        });
        let (s2, _, hit2) = ctx.cached_solve("k", || {
            calls += 1;
            (vec![0.0, 1.0], Diagnostics::closed_form())
        });
        assert!(!hit1 && hit2);
        assert_eq!(calls, 1);
        assert_eq!(s1, s2, "a hit must return the recorded scores bit-for-bit");
    }

    #[test]
    fn years_and_ages_align_with_articles() {
        let c = Preset::Tiny.generate(3);
        let ctx = RankContext::new(&c);
        assert_eq!(ctx.years().len(), c.num_articles());
        let ages = ctx.ages(ctx.now());
        assert_eq!(ages.len(), c.num_articles());
        assert!(ages.iter().all(|&a| a >= 0.0));
        assert_eq!(ctx.now(), c.year_range().unwrap().1);
    }

    #[test]
    fn empty_corpus_context() {
        let c = scholar_corpus::CorpusBuilder::new().finish().unwrap();
        let ctx = RankContext::new(&c);
        assert_eq!(ctx.now(), 0);
        assert_eq!(ctx.num_articles(), 0);
        assert!(ctx.citation_graph().is_empty());
        assert_eq!(ctx.citation_counts().len(), 0);
    }
}
