//! The failpoint registry: named fault-injection sites with seeded,
//! reproducible schedules.
//!
//! Production code marks a site with `failpoint!("site")` (unit form) or
//! `failpoint!("site", <on-trigger expr>)` (error form). The macro lives
//! in each instrumented crate and expands to [`hit`] only when that
//! crate's `failpoints` feature is on; otherwise it expands to nothing,
//! so release builds carry zero overhead — not even a branch.
//!
//! A test arms sites through a [`Scenario`] guard:
//!
//! ```
//! use scholar_testkit::fp::{self, Action, Scenario};
//!
//! let scenario = Scenario::begin(); // serializes failpoint tests, resets on drop
//! fp::set("corpus.jsonl.io", Action::Trigger); // every hit fires
//! fp::script("swap.publish", vec![Action::DelayMs(5), Action::Off]);
//! fp::seeded("serve.respond", 42, fp::FaultMix { trigger: 0.0, delay: 0.1, panic: 0.05, max_delay_ms: 2 });
//! assert!(fp::hit("corpus.jsonl.io")); // what the macro calls
//! assert_eq!(fp::fired("corpus.jsonl.io"), 1);
//! drop(scenario);
//! assert!(!fp::hit("corpus.jsonl.io")); // disarmed again
//! ```
//!
//! Every decision a seeded site takes is driven by its own
//! [`srand::rngs::SmallRng`], so a schedule is a pure function of
//! `(seed, hit sequence)`: re-running the same test with the same seed
//! replays the exact same faults.

use srand::rngs::SmallRng;
use srand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The canonical catalogue of every `failpoint!` site in the workspace.
///
/// scholar-lint's FAILPOINT-SYNC rule holds this list, the sites that
/// actually appear in production code, and the DESIGN.md §2.7 table in
/// exact three-way agreement — adding, renaming, or deleting a site
/// without updating all three fails CI. Keep the list sorted.
pub const SITES: &[&str] = &[
    "corpus.aan.parse",
    "corpus.colstore.io",
    "corpus.colstore.map",
    "corpus.jsonl.io",
    "corpus.jsonl.parse",
    "corpus.mag.parse",
    "incremental.extend",
    "reindex.coalesce",
    "reindex.publish",
    "replay.record.io",
    "serve.accept",
    "serve.handle",
    "serve.io.read",
    "serve.io.write",
    "serve.respond",
    "shadow.mirror",
    "snapshot.io",
    "swap.publish",
    "wal.append",
    "wal.replay",
];

/// What a site does on one hit.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Do nothing (the state of every unarmed site).
    Off,
    /// Fire the site's trigger arm: the `failpoint!("site", expr)` form
    /// runs `expr` (typically `return Err(...)`); the unit form ignores
    /// a trigger.
    Trigger,
    /// Sleep this many milliseconds, then continue normally. The lever
    /// for widening race windows deterministically.
    DelayMs(u64),
    /// Panic with a message naming the site — exercises catch/recovery
    /// paths.
    Panic,
}

/// Probabilities for a seeded random schedule. Whatever probability mass
/// is left over (`1 - trigger - delay - panic`) does nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultMix {
    /// Probability a hit fires the trigger arm.
    pub trigger: f64,
    /// Probability a hit sleeps.
    pub delay: f64,
    /// Probability a hit panics.
    pub panic: f64,
    /// Upper bound (exclusive, in ms) for injected delays; 0 disables.
    pub max_delay_ms: u64,
}

impl FaultMix {
    /// A mix that only fires the trigger arm, with probability `p`.
    pub fn errors(p: f64) -> Self {
        FaultMix { trigger: p, delay: 0.0, panic: 0.0, max_delay_ms: 0 }
    }

    /// A mix that only injects delays below `max_delay_ms`, with
    /// probability `p`.
    pub fn delays(p: f64, max_delay_ms: u64) -> Self {
        FaultMix { trigger: 0.0, delay: p, panic: 0.0, max_delay_ms }
    }

    /// A mix that only panics, with probability `p`.
    pub fn panics(p: f64) -> Self {
        FaultMix { trigger: 0.0, delay: 0.0, panic: p, max_delay_ms: 0 }
    }
}

/// How an armed site decides what each hit does.
#[derive(Debug)]
enum Schedule {
    /// The same action on every hit.
    Fixed(Action),
    /// A finite script consumed one action per hit; [`Action::Off`] after
    /// it runs out.
    Script(Vec<Action>, usize),
    /// Seeded random draws from a [`FaultMix`].
    Seeded(SmallRng, FaultMix),
}

impl Schedule {
    fn next(&mut self) -> Action {
        match self {
            Schedule::Fixed(a) => a.clone(),
            Schedule::Script(actions, pos) => {
                let a = actions.get(*pos).cloned().unwrap_or(Action::Off);
                *pos += 1;
                a
            }
            Schedule::Seeded(rng, mix) => {
                let roll: f64 = rng.gen();
                if roll < mix.trigger {
                    Action::Trigger
                } else if roll < mix.trigger + mix.delay {
                    if mix.max_delay_ms == 0 {
                        Action::Off
                    } else {
                        Action::DelayMs(rng.gen_range(0u64..mix.max_delay_ms))
                    }
                } else if roll < mix.trigger + mix.delay + mix.panic {
                    Action::Panic
                } else {
                    Action::Off
                }
            }
        }
    }
}

#[derive(Debug, Default)]
struct SiteState {
    schedule: Option<Schedule>,
    /// Times the site was evaluated.
    hits: u64,
    /// Times the evaluation did something (trigger, delay, or panic).
    fired: u64,
}

#[derive(Debug, Default)]
struct Registry {
    sites: HashMap<String, SiteState>,
}

fn registry() -> MutexGuard<'static, Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    // A panic *while holding the lock* can only happen between bookkeeping
    // statements (the injected panic itself is raised after the guard is
    // dropped), so a poisoned registry is still structurally sound.
    REGISTRY
        .get_or_init(|| Mutex::new(Registry::default()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Evaluate the site: the function the `failpoint!` macro expands to.
///
/// Executes [`Action::DelayMs`] and [`Action::Panic`] internally; returns
/// `true` when the action is [`Action::Trigger`], telling the macro's
/// error arm to run. Unarmed sites return `false` after a map lookup.
pub fn hit(site: &str) -> bool {
    let action = {
        let mut reg = registry();
        let state = reg.sites.entry(site.to_string()).or_default();
        state.hits += 1;
        let action = match &mut state.schedule {
            Some(s) => s.next(),
            None => Action::Off,
        };
        if action != Action::Off {
            state.fired += 1;
        }
        action
        // Lock released here: the sleep/panic below must not hold it.
    };
    match action {
        Action::Off => false,
        Action::Trigger => true,
        Action::DelayMs(ms) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            false
        }
        Action::Panic => panic!("failpoint {site:?} injected a panic"),
    }
}

/// Arm `site` with the same action on every hit.
pub fn set(site: &str, action: Action) {
    registry().sites.entry(site.to_string()).or_default().schedule = Some(Schedule::Fixed(action));
}

/// Arm `site` with a finite script, one action per hit (then off).
pub fn script(site: &str, actions: Vec<Action>) {
    registry().sites.entry(site.to_string()).or_default().schedule =
        Some(Schedule::Script(actions, 0));
}

/// Arm `site` with a seeded random schedule drawing from `mix`. The
/// decision sequence is a pure function of `seed`, so any failure it
/// provokes replays exactly from the same seed.
pub fn seeded(site: &str, seed: u64, mix: FaultMix) {
    registry().sites.entry(site.to_string()).or_default().schedule =
        Some(Schedule::Seeded(SmallRng::seed_from_u64(seed), mix));
}

/// Disarm `site` (its counters survive until [`reset`]).
pub fn clear(site: &str) {
    if let Some(state) = registry().sites.get_mut(site) {
        state.schedule = None;
    }
}

/// Disarm every site and zero every counter.
pub fn reset() {
    registry().sites.clear();
}

/// Times `site` was evaluated (armed or not).
pub fn hits(site: &str) -> u64 {
    registry().sites.get(site).map_or(0, |s| s.hits)
}

/// Times `site` actually did something (trigger, delay, or panic).
pub fn fired(site: &str) -> u64 {
    registry().sites.get(site).map_or(0, |s| s.fired)
}

/// RAII guard for one failpoint scenario.
///
/// The registry is process-global and Rust runs tests in one binary
/// concurrently, so scenarios must not overlap: `begin()` takes a global
/// scenario lock (held for the guard's lifetime) and `Drop` resets the
/// registry. Tests that arm failpoints should hold one of these for
/// their whole body.
pub struct Scenario {
    _guard: MutexGuard<'static, ()>,
}

impl Scenario {
    /// Acquire the scenario lock and start from a clean registry.
    pub fn begin() -> Self {
        static SCENARIO_LOCK: Mutex<()> = Mutex::new(());
        // A previous scenario that panicked mid-test poisons the lock;
        // the registry reset below restores the invariant either way.
        let guard = SCENARIO_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        reset();
        Scenario { _guard: guard }
    }
}

impl Drop for Scenario {
    fn drop(&mut self) {
        reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_catalogue_is_sorted_and_unique() {
        assert!(SITES.windows(2).all(|w| w[0] < w[1]), "SITES must be sorted and deduplicated");
        assert!(SITES.iter().all(|s| s.contains('.')), "site names are dotted lowercase");
    }

    #[test]
    fn unarmed_sites_do_nothing() {
        let _s = Scenario::begin();
        assert!(!hit("tests.nothing"));
        assert_eq!(hits("tests.nothing"), 1);
        assert_eq!(fired("tests.nothing"), 0);
    }

    #[test]
    fn fixed_trigger_fires_every_hit() {
        let _s = Scenario::begin();
        set("tests.fixed", Action::Trigger);
        for _ in 0..5 {
            assert!(hit("tests.fixed"));
        }
        assert_eq!(fired("tests.fixed"), 5);
        clear("tests.fixed");
        assert!(!hit("tests.fixed"));
        assert_eq!(hits("tests.fixed"), 6);
    }

    #[test]
    fn scripts_run_once_then_disarm() {
        let _s = Scenario::begin();
        script("tests.script", vec![Action::Off, Action::Trigger, Action::DelayMs(0)]);
        assert!(!hit("tests.script"));
        assert!(hit("tests.script"));
        assert!(!hit("tests.script")); // the delay
        assert!(!hit("tests.script")); // past the end
        assert_eq!(fired("tests.script"), 2);
    }

    #[test]
    fn seeded_schedules_replay_exactly() {
        let _s = Scenario::begin();
        let mix = FaultMix { trigger: 0.3, delay: 0.2, panic: 0.0, max_delay_ms: 1 };
        let run = |seed: u64| -> Vec<bool> {
            seeded("tests.seeded", seed, mix);
            (0..64).map(|_| hit("tests.seeded")).collect()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must replay the same schedule");
        assert!(a.iter().any(|&t| t), "p=0.3 over 64 hits should trigger at least once");
        let c = run(8);
        assert_ne!(a, c, "different seeds should explore different schedules");
    }

    #[test]
    fn injected_panic_names_the_site() {
        let _s = Scenario::begin();
        set("tests.panic", Action::Panic);
        let err = std::panic::catch_unwind(|| hit("tests.panic")).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("tests.panic"), "panic message must name the site: {msg}");
        // The registry survives the panic and keeps counting.
        assert_eq!(fired("tests.panic"), 1);
    }

    #[test]
    fn scenario_drop_resets_the_registry() {
        {
            let _s = Scenario::begin();
            set("tests.reset", Action::Trigger);
            assert!(hit("tests.reset"));
        }
        let _s = Scenario::begin();
        assert!(!hit("tests.reset"));
        assert_eq!(hits("tests.reset"), 1, "counters must reset between scenarios");
    }
}
