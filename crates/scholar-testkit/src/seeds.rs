//! The seed-sweep driver: run a property over a battery of seeds, print
//! the seed of any failure, and replay exactly.
//!
//! Every chaos property in the suite runs through [`for_seeds`], which
//! gives the whole testkit one reproduction story:
//!
//! * a fixed seed battery (`0..count`) that runs everywhere, every time;
//! * optional *fresh* seeds on top, controlled by environment variables
//!   so CI can explore new schedules each run without losing
//!   reproducibility (`SCHOLAR_CHAOS_EXTRA` = how many,
//!   `SCHOLAR_CHAOS_BASE` = where they start — CI passes its run id);
//! * on failure, a `CHAOS-SEED` line naming the property and the exact
//!   seed, plus the replay env var (`SCHOLAR_CHAOS_REPLAY=<label>:<seed>`)
//!   that re-runs only that case.
//!
//! Schedules derive every random decision from the seed through
//! [`srand::rngs::SmallRng`], so the replay is byte-identical.

use srand::rngs::SmallRng;
use srand::SeedableRng;

/// Environment variable: number of fresh seeds to append to the fixed
/// battery (default 0).
pub const ENV_EXTRA: &str = "SCHOLAR_CHAOS_EXTRA";
/// Environment variable: base value fresh seeds count up from.
pub const ENV_BASE: &str = "SCHOLAR_CHAOS_BASE";
/// Environment variable: `label:seed` — run only that property and seed.
pub const ENV_REPLAY: &str = "SCHOLAR_CHAOS_REPLAY";

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.trim().parse().ok()
}

/// The seeds `for_seeds(label, count, ..)` will run: the fixed battery
/// plus any fresh seeds requested via the environment, or just the
/// replayed seed when [`ENV_REPLAY`] selects this label.
pub fn seed_battery(label: &str, count: u64) -> Vec<u64> {
    if let Ok(replay) = std::env::var(ENV_REPLAY) {
        return match replay.rsplit_once(':') {
            Some((l, s)) if l == label => {
                vec![s
                    .trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("{ENV_REPLAY}={replay:?}: seed is not a u64"))]
            }
            // A replay of some other property: this one has nothing to do.
            _ => Vec::new(),
        };
    }
    let mut seeds: Vec<u64> = (0..count).collect();
    let extra = env_u64(ENV_EXTRA).unwrap_or(0);
    let base = env_u64(ENV_BASE).unwrap_or(0);
    // Fresh seeds live far away from the fixed battery so the two sets
    // never collide however large the battery grows.
    seeds.extend((0..extra).map(|i| 0x5eed_0000_0000_0000u64 ^ base.wrapping_add(i)));
    seeds
}

/// Run `body` once per seed in the battery for `label`, handing it a
/// generator seeded for that case. A panic in any case is annotated with
/// a `CHAOS-SEED` line naming the label, the seed, and the replay
/// incantation, then re-raised.
pub fn for_seeds(label: &str, count: u64, body: impl Fn(u64, &mut SmallRng)) {
    let seeds = seed_battery(label, count);
    for &seed in &seeds {
        // Decorrelate the per-case stream from the raw seed value so
        // batteries of small consecutive seeds still start far apart.
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xc4a05);
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(seed, &mut rng)));
        if let Err(cause) = outcome {
            eprintln!(
                "CHAOS-SEED {label} seed={seed} \
                 (replay with {ENV_REPLAY}={label}:{seed})"
            );
            std::panic::resume_unwind(cause);
        }
    }
    eprintln!("chaos: {label}: {} seeded schedule(s) green", seeds.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_is_fixed_range_without_env() {
        // Tests in this binary do not set the env vars, so the battery is
        // exactly the fixed range.
        assert_eq!(seed_battery("tests.battery", 4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn sweep_runs_every_seed_deterministically() {
        use std::sync::Mutex;
        let seen = Mutex::new(Vec::new());
        for_seeds("tests.sweep", 6, |seed, rng| {
            seen.lock().unwrap().push((seed, rng.next_u64()));
        });
        let first = std::mem::take(&mut *seen.lock().unwrap());
        for_seeds("tests.sweep", 6, |seed, rng| {
            seen.lock().unwrap().push((seed, rng.next_u64()));
        });
        let second = seen.into_inner().unwrap();
        assert_eq!(first, second, "same battery must replay the same streams");
        assert_eq!(first.len(), 6);
    }

    #[test]
    fn failing_seed_is_reported() {
        let err = std::panic::catch_unwind(|| {
            for_seeds("tests.fail", 8, |seed, _| {
                assert_ne!(seed, 5, "seed five is cursed");
            });
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("cursed"), "original assertion must survive: {msg}");
    }
}
