//! A byte-level chaos client for the HTTP serving layer.
//!
//! The server's defensive parsing was written against a list of known
//! hostile shapes (slowloris, oversized heads, garbage request lines).
//! This module *generates* hostile shapes from a seed instead: split
//! writes at arbitrary byte boundaries, stalls, truncated heads,
//! mid-request disconnects, binary garbage. Each strike is a pure
//! function of the rng state, so a failing sequence replays exactly from
//! its seed.
//!
//! The client never asserts anything about an individual strike's
//! response beyond basic well-formedness — a truncated request may race
//! the server's reader and legitimately get either a `400` or nothing.
//! What it *does* let the suite assert is the aggregate contract:
//! [`assert_pool_live`] (no strike may kill a worker) and exact
//! `/metrics` accounting via [`http_get`] (every response the server
//! admits to must be complete and internally consistent).

use srand::rngs::SmallRng;
use srand::Rng;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

/// What one chaos strike did, for debugging failing seeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Strike {
    /// A well-formed GET written in `chunks` randomly-sized pieces with
    /// tiny stalls between them.
    SplitWrites {
        /// Number of write calls the request was split into.
        chunks: usize,
    },
    /// A request head cut off after `bytes` bytes, then FIN.
    Truncated {
        /// Bytes actually written before the half-close.
        bytes: usize,
    },
    /// A connection dropped (RST via linger-less close) mid-request
    /// without ever half-closing politely.
    MidRequestDisconnect,
    /// Connect, write nothing, hold the socket open briefly, vanish.
    SilentConnection,
    /// Random bytes that are not HTTP at all.
    Garbage {
        /// How many bytes of noise were written.
        bytes: usize,
    },
}

/// One complete, well-formed HTTP GET exchange. Returns
/// `(status, body)` and asserts the response itself is whole: one status
/// line, a `Content-Length` that matches the body byte count exactly,
/// and a body that parses as JSON. Any torn or half-written response
/// fails here.
pub fn http_get(addr: SocketAddr, target: &str) -> (u16, sjson::Value) {
    let raw = exchange(addr, format!("GET {target} HTTP/1.1\r\nHost: chaos\r\n\r\n").as_bytes());
    let text = String::from_utf8_lossy(&raw);
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in response {text:?}"));
    let (head, body) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("response has no head terminator: {text:?}"));
    let declared: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("response head has no Content-Length: {head:?}"));
    assert_eq!(declared, body.len(), "Content-Length does not match the body actually sent");
    let value = sjson::parse(body)
        .unwrap_or_else(|e| panic!("response body is not valid JSON ({e:?}): {body:?}"));
    (status, value)
}

fn exchange(addr: SocketAddr, raw: &[u8]) -> Vec<u8> {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(raw).expect("write request");
    read_to_end_tolerant(&mut s)
}

/// Read until EOF, tolerating a reset after bytes arrived (the server
/// closes with unread input pending for oversized requests, turning the
/// close into an RST on some platforms).
fn read_to_end_tolerant(s: &mut TcpStream) -> Vec<u8> {
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match s.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => out.extend_from_slice(&buf[..n]),
            Err(_) if !out.is_empty() => break,
            Err(e) => panic!("read failed before any response arrived: {e}"),
        }
    }
    out
}

/// Drain whatever the server sends, asserting nothing: a strike's
/// connection may legitimately be reset before a single byte arrives
/// (e.g. an armed `serve.accept` failpoint drops it at the door).
fn drain_quietly(s: &mut TcpStream) {
    let mut buf = [0u8; 4096];
    while let Ok(n) = s.read(&mut buf) {
        if n == 0 {
            break;
        }
    }
}

/// Execute one seeded strike against `addr`. Never asserts on the
/// response (half the point is provoking paths where there isn't one);
/// returns what was done so failing seeds describe themselves.
pub fn strike(addr: SocketAddr, rng: &mut SmallRng) -> Strike {
    let request = format!(
        "GET /top?k={}&year_min={}&year_max={} HTTP/1.1\r\nHost: chaos\r\n\r\n",
        rng.gen_range(0u64..30),
        rng.gen_range(1980i32..2030),
        rng.gen_range(1980i32..2030),
    );
    let raw = request.as_bytes();
    match rng.gen_range(0u32..5) {
        0 => {
            // Split the request across many tiny writes with stalls well
            // under the server's read timeout: must still be answered.
            let chunks = rng.gen_range(2usize..8);
            let mut s = TcpStream::connect(addr).expect("connect");
            let mut written = 0;
            for c in 0..chunks {
                let end =
                    if c + 1 == chunks { raw.len() } else { rng.gen_range(written..raw.len() + 1) };
                if end > written {
                    // Best-effort: the server may drop the connection
                    // between chunks (an armed accept failpoint, a read
                    // timeout), turning the next write into EPIPE.
                    if s.write_all(&raw[written..end]).is_err() {
                        break;
                    }
                    written = end;
                }
                std::thread::sleep(Duration::from_millis(rng.gen_range(0u64..3)));
            }
            drain_quietly(&mut s);
            Strike::SplitWrites { chunks }
        }
        1 => {
            // Truncate the head mid-way and half-close: the server sees
            // EOF before the terminator and should answer 400.
            let bytes = rng.gen_range(1usize..raw.len());
            let mut s = TcpStream::connect(addr).expect("connect");
            let _ = s.write_all(&raw[..bytes]);
            let _ = s.shutdown(Shutdown::Write);
            drain_quietly(&mut s);
            Strike::Truncated { bytes }
        }
        2 => {
            // Write part of a request then vanish without reading or
            // half-closing; the server's write may hit a dead socket.
            let bytes = rng.gen_range(1usize..raw.len() + 1);
            let s = TcpStream::connect(addr).expect("connect");
            let _ = (&s).write_all(&raw[..bytes]);
            drop(s);
            Strike::MidRequestDisconnect
        }
        3 => {
            // Connect and say nothing, briefly: occupies a worker until
            // its read times out or we hang up.
            let s = TcpStream::connect(addr).expect("connect");
            std::thread::sleep(Duration::from_millis(rng.gen_range(0u64..4)));
            drop(s);
            Strike::SilentConnection
        }
        _ => {
            // Bytes that were never HTTP.
            let n = rng.gen_range(1usize..96);
            let noise: Vec<u8> = (0..n).map(|_| (rng.gen_range(0u64..256)) as u8).collect();
            let mut s = TcpStream::connect(addr).expect("connect");
            let _ = s.write_all(&noise);
            let _ = s.shutdown(Shutdown::Write);
            drain_quietly(&mut s);
            Strike::Garbage { bytes: n }
        }
    }
}

/// Assert the worker pool is fully alive: `workers + 2` consecutive
/// `/health` probes must all answer `200`. With a fixed pool and a FIFO
/// hand-off queue, that many successes is impossible if any worker died
/// — a dead worker would strand at least one probe.
pub fn assert_pool_live(addr: SocketAddr, workers: usize) {
    for probe in 0..workers + 2 {
        let (status, body) = http_get(addr, "/health");
        assert_eq!(status, 200, "liveness probe {probe} failed: a worker likely died");
        assert_eq!(
            body.get("status").and_then(|v| v.as_str()),
            Some("ok"),
            "liveness probe {probe} got a malformed health body"
        );
    }
}
