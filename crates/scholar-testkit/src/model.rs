//! A reference model of the serving index semantics.
//!
//! [`ModelIndex`] re-implements the `ScoreIndex` query contract in the
//! most obviously-correct way possible: keep every article as a plain
//! row, answer `top` by brute-force filter + full sort, answer `detail`
//! by scanning the sorted order. No posting lists, no heaps, no merge —
//! nothing shared with the real implementation, so agreement between the
//! two is evidence, not tautology.
//!
//! The model is deliberately typed in plain `u32`/`i32`/`f64` so this
//! crate stays below the serving stack in the dependency graph (the
//! production crates depend on the testkit for the failpoint registry;
//! the comparison against real `ScoreIndex` values happens in the chaos
//! integration suite, which sees both sides).

/// One article row as the model sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelArticle {
    /// Dense article id.
    pub id: u32,
    /// Publication year.
    pub year: i32,
    /// Dense venue id.
    pub venue: u32,
    /// Dense author ids on the byline.
    pub authors: Vec<u32>,
    /// Published score.
    pub score: f64,
}

/// A top-k query in model terms (mirrors `scholar_serve::TopQuery`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModelQuery {
    /// How many results to return.
    pub k: usize,
    /// Restrict to one venue.
    pub venue: Option<u32>,
    /// Restrict to articles with this author on the byline.
    pub author: Option<u32>,
    /// Earliest publication year, inclusive.
    pub year_min: Option<i32>,
    /// Latest publication year, inclusive.
    pub year_max: Option<i32>,
}

/// One model result row (mirrors `scholar_serve::Hit`).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelHit {
    /// Global rank (1 = best article of the whole corpus).
    pub rank: usize,
    /// Article id.
    pub id: u32,
    /// Published score.
    pub score: f64,
}

/// The ranking comparator the whole stack promises: score descending,
/// dense id ascending on ties.
fn ranking_cmp(a: &ModelArticle, b: &ModelArticle) -> std::cmp::Ordering {
    b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal).then(a.id.cmp(&b.id))
}

/// The brute-force reference index.
#[derive(Debug, Clone)]
pub struct ModelIndex {
    /// Rows sorted into the published order.
    order: Vec<ModelArticle>,
}

impl ModelIndex {
    /// Build the model from unordered rows.
    pub fn new(mut rows: Vec<ModelArticle>) -> Self {
        rows.sort_by(ranking_cmp);
        ModelIndex { order: rows }
    }

    /// Number of articles.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when the model holds no articles.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    fn matches(a: &ModelArticle, q: &ModelQuery) -> bool {
        q.venue.is_none_or(|v| a.venue == v)
            && q.author.is_none_or(|u| a.authors.contains(&u))
            && q.year_min.is_none_or(|lo| a.year >= lo)
            && q.year_max.is_none_or(|hi| a.year <= hi)
    }

    /// Answer a top-k query by brute force: walk the published order,
    /// keep the first `k` rows matching every filter. Rank is the
    /// *global* position, matching the `ScoreIndex::top` contract.
    pub fn top(&self, q: &ModelQuery) -> Vec<ModelHit> {
        self.order
            .iter()
            .enumerate()
            .filter(|(_, a)| Self::matches(a, q))
            .take(q.k)
            .map(|(pos, a)| ModelHit { rank: pos + 1, id: a.id, score: a.score })
            .collect()
    }

    /// The model of `ScoreIndex::detail`: rank, percentile, and `want`
    /// ranking neighbors on each side (inclusive of the article itself).
    pub fn detail(&self, id: u32, want: usize) -> Option<(usize, f64, Vec<ModelHit>)> {
        let n = self.order.len();
        let pos = self.order.iter().position(|a| a.id == id)?;
        let from = pos.saturating_sub(want);
        let to = (pos + want + 1).min(n);
        let neighbors = self.order[from..to]
            .iter()
            .enumerate()
            .map(|(i, a)| ModelHit { rank: from + i + 1, id: a.id, score: a.score })
            .collect();
        Some((pos + 1, (n - pos) as f64 / n as f64, neighbors))
    }

    /// Internal-consistency check for any result list claiming to be in
    /// published order: ranks strictly increase and scores never
    /// increase. A response torn across two index generations violates
    /// one of these with overwhelming probability.
    pub fn assert_well_ordered(hits: &[ModelHit]) {
        for w in hits.windows(2) {
            assert!(
                w[0].rank < w[1].rank,
                "ranks must strictly increase: {} then {}",
                w[0].rank,
                w[1].rank
            );
            assert!(
                w[0].score >= w[1].score,
                "scores must be non-increasing: {} then {}",
                w[0].score,
                w[1].score
            );
        }
    }
}

/// Assert a sequence of observed generations is monotone non-decreasing —
/// the `SharedIndex` contract that no reader ever sees the index move
/// backwards in time.
pub fn assert_monotone_generations(observed: &[u64]) {
    for w in observed.windows(2) {
        assert!(w[0] <= w[1], "generation went backwards: {} then {}", w[0], w[1]);
    }
}

/// Draw a random query from a seeded generator: every filter is present
/// or absent independently, bounds may be inverted, ids may be unknown —
/// the adversarial shapes the serving layer must answer (with an empty
/// list, never a panic).
pub fn arb_query(
    rng: &mut srand::rngs::SmallRng,
    n: usize,
    n_venues: u32,
    n_authors: u32,
    years: (i32, i32),
) -> ModelQuery {
    use srand::Rng;
    let mut q = ModelQuery { k: rng.gen_range(0usize..n + 3), ..Default::default() };
    if rng.gen_range(0u32..3) == 0 {
        // Sometimes an id one past the end: unknown entities match nothing.
        q.venue = Some(rng.gen_range(0u32..n_venues + 1));
    }
    if rng.gen_range(0u32..3) == 0 {
        q.author = Some(rng.gen_range(0u32..n_authors + 1));
    }
    let (y0, y1) = years;
    if rng.gen_range(0u32..2) == 0 {
        q.year_min = Some(rng.gen_range(y0 - 1..y1 + 2));
    }
    if rng.gen_range(0u32..2) == 0 {
        // Independent of year_min, so ~half the ranged queries with both
        // bounds are inverted or empty.
        q.year_max = Some(rng.gen_range(y0 - 1..y1 + 2));
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use srand::{rngs::SmallRng, SeedableRng};

    fn rows() -> Vec<ModelArticle> {
        // Scores chosen with deliberate ties (ids 1/3 and 0/4).
        vec![
            ModelArticle { id: 0, year: 2000, venue: 0, authors: vec![0], score: 0.1 },
            ModelArticle { id: 1, year: 2001, venue: 1, authors: vec![0, 1], score: 0.3 },
            ModelArticle { id: 2, year: 2002, venue: 0, authors: vec![1], score: 0.2 },
            ModelArticle { id: 3, year: 2003, venue: 1, authors: vec![], score: 0.3 },
            ModelArticle { id: 4, year: 2004, venue: 0, authors: vec![0], score: 0.1 },
        ]
    }

    #[test]
    fn order_breaks_ties_by_id() {
        let m = ModelIndex::new(rows());
        let ids: Vec<u32> =
            m.top(&ModelQuery { k: 5, ..Default::default() }).iter().map(|h| h.id).collect();
        assert_eq!(ids, vec![1, 3, 2, 0, 4]);
    }

    #[test]
    fn filters_keep_global_ranks() {
        let m = ModelIndex::new(rows());
        let hits = m.top(&ModelQuery { k: 5, venue: Some(0), ..Default::default() });
        assert_eq!(
            hits.iter().map(|h| (h.rank, h.id)).collect::<Vec<_>>(),
            vec![(3, 2), (4, 0), (5, 4)]
        );
        ModelIndex::assert_well_ordered(&hits);
    }

    #[test]
    fn inverted_and_unknown_filters_match_nothing() {
        let m = ModelIndex::new(rows());
        let inverted =
            ModelQuery { k: 5, year_min: Some(2004), year_max: Some(2000), ..Default::default() };
        assert!(m.top(&inverted).is_empty());
        let unknown = ModelQuery { k: 5, venue: Some(99), ..Default::default() };
        assert!(m.top(&unknown).is_empty());
    }

    #[test]
    fn detail_matches_order() {
        let m = ModelIndex::new(rows());
        let (rank, pct, neighbors) = m.detail(2, 1).unwrap();
        assert_eq!(rank, 3);
        assert!((pct - 3.0 / 5.0).abs() < 1e-12);
        assert_eq!(neighbors.iter().map(|h| h.id).collect::<Vec<_>>(), vec![3, 2, 0]);
        assert!(m.detail(99, 1).is_none());
    }

    #[test]
    fn arb_queries_are_diverse() {
        let mut rng = SmallRng::seed_from_u64(5);
        let qs: Vec<ModelQuery> =
            (0..200).map(|_| arb_query(&mut rng, 10, 3, 4, (1990, 2010))).collect();
        assert!(qs.iter().any(|q| q.venue.is_some()));
        assert!(qs.iter().any(|q| q.author.is_some()));
        assert!(qs.iter().any(|q| q.year_min.zip(q.year_max).is_some_and(|(lo, hi)| lo > hi)));
        assert!(qs.iter().any(|q| q.k == 0));
    }

    #[test]
    #[should_panic(expected = "generation went backwards")]
    fn monotone_generation_checker_catches_regressions() {
        assert_monotone_generations(&[1, 2, 2, 1]);
    }
}
