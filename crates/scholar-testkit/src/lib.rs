#![warn(missing_docs)]

//! # scholar-testkit — deterministic fault injection and seeded chaos
//!
//! The serving stack's failure modes (worker deaths, publish races,
//! half-written requests) were historically found by reviewers reading
//! code. This crate turns each of those classes into machinery that can
//! *provoke* them on demand, deterministically:
//!
//! * [`fp`] — a process-global **failpoint registry**. Production crates
//!   mark named sites with a `failpoint!` macro that compiles to nothing
//!   unless the crate's `failpoints` feature is on; tests arm the sites
//!   with fixed actions, finite scripts, or seeded random schedules that
//!   return errors, inject delays, or panic.
//! * [`model`] — a **reference model** of the `ScoreIndex` /
//!   `SharedIndex` query semantics (brute-force filter + sort), run
//!   against the real implementation under seeded interleavings to catch
//!   torn reads, non-monotone generations, and ranking divergence.
//! * [`chaos`] — a **byte-level chaos client** for the HTTP server:
//!   split writes, stalls, truncated heads, mid-request disconnects, all
//!   drawn from a seeded generator, plus liveness and metrics-exactness
//!   probes.
//! * [`seeds`] — the seed-sweep driver: every failing case prints its
//!   seed, and the same binary re-run with that seed reproduces the
//!   failure byte-for-byte. CI adds fresh seeds on top of the fixed set
//!   via environment variables.
//!
//! The registry and harness live in this always-compiled crate; only the
//! *call sites* in production crates are feature-gated, so the default
//! build carries zero fault-injection overhead.

pub mod chaos;
pub mod fp;
pub mod model;
pub mod seeds;

pub use fp::{Action, FaultMix, Scenario};
pub use model::{ModelArticle, ModelHit, ModelIndex, ModelQuery};
pub use seeds::for_seeds;
