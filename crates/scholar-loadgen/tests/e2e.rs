//! The load generator against a real `scholar-serve` instance: every
//! ticket becomes exactly one completed request, keep-alive actually
//! reuses connections, and the status assertions catch what they
//! should.

use scholar_corpus::generator::Preset;
use scholar_loadgen::{run, LoadConfig, StatusRanges};
use scholar_serve::{serve, Metrics, Reindexer, ServeConfig};
use std::sync::Arc;
use std::time::Duration;

fn start(seed: u64) -> (Reindexer, scholar_serve::ServerHandle) {
    let corpus = Preset::Tiny.generate(seed);
    let (shared, reindexer) = Reindexer::start(qrank::QRankConfig::default(), corpus, |_| {});
    let metrics = Arc::new(Metrics::new());
    let config =
        ServeConfig { workers: 2, read_timeout: Duration::from_millis(500), ..Default::default() };
    let server = serve(shared, metrics, &config).expect("bind");
    (reindexer, server)
}

#[test]
fn every_ticket_becomes_one_completed_request() {
    let (reindexer, server) = start(61);
    let config = LoadConfig {
        addr: server.addr(),
        connections: 3,
        requests: 240,
        seed: 9,
        keep_alive: true,
        targets: vec!["/top?k=5".into(), "/health".into(), "/top?k=12&year_min=2005".into()],
        accept: StatusRanges::ok(),
    };
    let report = run(&config).expect("run");
    assert_eq!(report.completed, 240);
    assert_eq!(report.violations, 0, "statuses: {:?}", report.violation_samples);
    assert_eq!(report.transport_errors, 0);
    assert_eq!(report.hist.count(), 240);
    assert!(report.throughput_rps() > 0.0);
    // Keep-alive holds on Linux (epoll backend): three workers, three
    // connects. The blocking backend closes per request instead.
    if server.backend() == scholar_serve::Backend::Epoll {
        assert_eq!(report.connects, 3, "keep-alive failed to hold connections open");
    } else {
        assert_eq!(report.connects, 240);
    }
    drop(server);
    reindexer.shutdown();
}

#[test]
fn no_keep_alive_pays_one_connect_per_request() {
    let (reindexer, server) = start(62);
    let config = LoadConfig {
        addr: server.addr(),
        connections: 2,
        requests: 40,
        keep_alive: false,
        ..Default::default()
    };
    let report = run(&config).expect("run");
    assert_eq!(report.completed, 40);
    assert_eq!(report.connects, 40);
    assert_eq!(report.transport_errors, 0);
    drop(server);
    reindexer.shutdown();
}

#[test]
fn status_violations_are_counted_not_panicked() {
    let (reindexer, server) = start(63);
    let config = LoadConfig {
        addr: server.addr(),
        connections: 2,
        requests: 30,
        // /nope is a 404 and 404 is not accepted here, so every request
        // to it must show up as a violation with its status sampled.
        targets: vec!["/health".into(), "/nope".into()],
        accept: StatusRanges::ok(),
        ..Default::default()
    };
    let report = run(&config).expect("run");
    assert_eq!(report.completed, 30, "violations must still complete");
    assert!(report.violations > 0, "the 404s went unnoticed");
    assert!(report.violation_samples.iter().all(|&s| s == 404));
    // And widening the accepted set makes the same traffic clean.
    let lenient = LoadConfig { accept: StatusRanges::ok_or_not_found(), ..config };
    assert_eq!(run(&lenient).expect("run").violations, 0);
    drop(server);
    reindexer.shutdown();
}
