//! Deterministic replay of a recorded RLOGv1 request log.
//!
//! [`super::run`] *generates* traffic from a seed; this module
//! *re-issues* traffic a live server actually saw, turning a recorded
//! log into a portable regression fixture. The driver restores the
//! recorded ordering exactly — records are grouped by recorded
//! connection id and sorted by per-connection sequence number, and each
//! replayed connection issues its requests strictly in that order — so
//! two replays of the same log against equivalent server states produce
//! byte-identical responses.
//!
//! The proof artifact is a set of **per-endpoint digests**: every
//! response folds `(target, status, body)` into an FNV-1a chain in
//! `(conn, seq)` order, one chain per endpoint class plus an `overall`
//! chain. The fold order is fixed by the log, not by thread scheduling,
//! so the digests are a pure function of (log, server state) no matter
//! how many replay workers run. `/metrics` responses are replayed but
//! excluded from digesting — latency histograms make their bodies
//! legitimately nondeterministic; everything else is covered.
//!
//! Digests serialize to a line-oriented sidecar (`<endpoint> <16-hex>`
//! per line, `overall` last) that ships next to the `.rlog` fixture and
//! is diffed by the CLI `replay` subcommand and the CI regression job.

use crate::hist::Histogram;
use scholar_serve::shadow::{endpoint_class, ENDPOINTS};
use scholar_serve::ReqRecord;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over one byte slice (same parameters as the workspace's
/// snapshot/WAL/RLOG checksums, reimplemented here so the digest
/// definition is self-contained in the replay layer).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fold one response hash into a digest chain.
fn fold(digest: u64, h: u64) -> u64 {
    (digest ^ h).wrapping_mul(FNV_PRIME)
}

/// Hash one replayed exchange: the request target, the response status,
/// and the exact response body bytes.
fn exchange_hash(target: &str, status: u16, body: &[u8]) -> u64 {
    let mut buf = Vec::with_capacity(target.len() + 3 + body.len());
    buf.extend_from_slice(target.as_bytes());
    buf.push(0);
    buf.extend_from_slice(&status.to_le_bytes());
    buf.extend_from_slice(body);
    fnv64(&buf)
}

/// How to replay: where, how wide, and whether to ask for keep-alive.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Server to replay against.
    pub addr: SocketAddr,
    /// Worker threads. Recorded connections are partitioned across
    /// workers; per-connection order is preserved regardless.
    pub connections: usize,
    /// Ask the server to keep connections open. The blocking backend
    /// closes after every response either way; the driver reconnects
    /// transparently, so the same log replays against both backends.
    pub keep_alive: bool,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            connections: 2,
            keep_alive: true,
        }
    }
}

/// One endpoint class's share of the replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndpointDigest {
    /// Endpoint class name (see [`scholar_serve::shadow::ENDPOINTS`]).
    pub endpoint: String,
    /// Requests replayed against this class.
    pub requests: u64,
    /// FNV-1a digest chain over this class's responses in `(conn, seq)`
    /// order. Zero when `requests` is zero.
    pub digest: u64,
}

/// What a replay run produced.
pub struct ReplayReport {
    /// Requests that completed with a framed response.
    pub replayed: u64,
    /// Connect/read/write failures. Any transport error makes the
    /// digests unusable as fixtures — callers should treat nonzero as a
    /// failed run.
    pub transport_errors: u64,
    /// Responses whose status differed from the recorded one.
    pub status_mismatches: u64,
    /// Per-endpoint digests, sorted by endpoint name, only for classes
    /// that saw traffic. `/metrics` is never included (nondeterministic
    /// body).
    pub endpoints: Vec<EndpointDigest>,
    /// Digest chain over every digestible response in `(conn, seq)`
    /// order.
    pub overall: u64,
    /// Wall-clock time of the replay.
    pub elapsed: Duration,
    /// Latency histogram (microseconds per request).
    pub hist: Histogram,
}

impl ReplayReport {
    /// The digest sidecar: one `<endpoint> <16-hex-digest>` line per
    /// endpoint with traffic, then `overall <16-hex>`. Stable line
    /// order (sorted endpoints, overall last) so sidecars diff cleanly.
    pub fn format_digests(&self) -> String {
        let mut out = String::new();
        for e in &self.endpoints {
            out.push_str(&format!("{} {:016x}\n", e.endpoint, e.digest));
        }
        out.push_str(&format!("overall {:016x}\n", self.overall));
        out
    }

    /// Compare against a parsed sidecar. Returns human-readable drift
    /// messages; empty means every digest matches.
    pub fn diff_digests(&self, expected: &[(String, u64)]) -> Vec<String> {
        let mut drift = Vec::new();
        let actual: Vec<(String, u64)> = self
            .endpoints
            .iter()
            .map(|e| (e.endpoint.clone(), e.digest))
            .chain(std::iter::once(("overall".to_string(), self.overall)))
            .collect();
        for (name, want) in expected {
            match actual.iter().find(|(n, _)| n == name) {
                Some((_, got)) if got == want => {}
                Some((_, got)) => drift
                    .push(format!("digest drift on {name}: expected {want:016x}, got {got:016x}")),
                None => drift.push(format!("endpoint {name} expected but saw no traffic")),
            }
        }
        for (name, _) in &actual {
            if !expected.iter().any(|(n, _)| n == name) {
                drift.push(format!("endpoint {name} saw traffic but is not in the expected set"));
            }
        }
        drift
    }

    /// The report as JSON (CLI output shape).
    pub fn to_json(&self) -> sjson::Value {
        let mut endpoints = sjson::ObjectBuilder::new();
        for e in &self.endpoints {
            endpoints = endpoints.field(
                &e.endpoint,
                sjson::ObjectBuilder::new()
                    .field("requests", e.requests as i64)
                    .field("digest", format!("{:016x}", e.digest).as_str())
                    .build(),
            );
        }
        sjson::ObjectBuilder::new()
            .field("replayed", self.replayed as i64)
            .field("transport_errors", self.transport_errors as i64)
            .field("status_mismatches", self.status_mismatches as i64)
            .field("overall_digest", format!("{:016x}", self.overall).as_str())
            .field("endpoints", endpoints.build())
            .field("elapsed_ms", self.elapsed.as_millis() as i64)
            .field("latency_p50_us", self.hist.percentile(0.50) as i64)
            .field("latency_p99_us", self.hist.percentile(0.99) as i64)
            .build()
    }
}

/// Parse a digest sidecar produced by [`ReplayReport::format_digests`].
pub fn parse_digests(text: &str) -> Result<Vec<(String, u64)>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, hex) = line
            .split_once(' ')
            .ok_or_else(|| format!("line {}: expected '<endpoint> <hex>'", i + 1))?;
        let digest = u64::from_str_radix(hex.trim(), 16)
            .map_err(|_| format!("line {}: bad hex digest {hex:?}", i + 1))?;
        out.push((name.to_string(), digest));
    }
    if out.is_empty() {
        return Err("empty digest file".to_string());
    }
    Ok(out)
}

/// One completed exchange, keyed for deterministic folding.
struct Outcome {
    conn: u64,
    seq: u64,
    class: usize,
    hash: Option<u64>, // None for /metrics (excluded from digests)
    status_mismatch: bool,
}

struct WorkerOut {
    outcomes: Vec<Outcome>,
    transport_errors: u64,
    hist: Histogram,
}

/// Replay `records` against `config.addr` and digest the responses.
///
/// Records are grouped by recorded connection id; each group replays
/// strictly in `seq` order on its own (re)connection. Groups are
/// partitioned round-robin across workers, and the digests fold in
/// `(conn, seq)` order after every worker finishes, so the result is
/// independent of scheduling.
pub fn replay(records: &[ReqRecord], config: &ReplayConfig) -> io::Result<ReplayReport> {
    if config.connections == 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "zero connections"));
    }
    // Restore the recorded order: by connection, then by sequence.
    let mut ordered: Vec<&ReqRecord> = records.iter().collect();
    ordered.sort_by_key(|r| (r.conn, r.seq));
    // Group into per-connection runs.
    let mut groups: Vec<Vec<&ReqRecord>> = Vec::new();
    for r in ordered {
        match groups.last_mut() {
            Some(g) if g.last().is_some_and(|p| p.conn == r.conn) => g.push(r),
            _ => groups.push(vec![r]),
        }
    }
    // Round-robin partition across workers.
    let workers = config.connections.min(groups.len()).max(1);
    let mut shards: Vec<Vec<Vec<ReqRecord>>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, g) in groups.into_iter().enumerate() {
        shards[i % workers].push(g.into_iter().cloned().collect());
    }

    let t0 = Instant::now();
    let handles: Vec<_> = shards
        .into_iter()
        .map(|shard| {
            let addr = config.addr;
            let keep_alive = config.keep_alive;
            std::thread::spawn(move || replay_worker(addr, keep_alive, shard))
        })
        .collect();

    let mut outcomes = Vec::with_capacity(records.len());
    let mut report = ReplayReport {
        replayed: 0,
        transport_errors: 0,
        status_mismatches: 0,
        endpoints: Vec::new(),
        overall: FNV_OFFSET,
        elapsed: Duration::ZERO,
        hist: Histogram::new(),
    };
    for h in handles {
        let out = h.join().expect("replay worker panicked");
        report.transport_errors += out.transport_errors;
        report.hist.merge(&out.hist);
        outcomes.extend(out.outcomes);
    }
    report.elapsed = t0.elapsed();

    // Deterministic fold: (conn, seq) order, independent of scheduling.
    outcomes.sort_by_key(|o| (o.conn, o.seq));
    let mut per_endpoint: Vec<(u64, u64)> = vec![(0, FNV_OFFSET); ENDPOINTS.len()];
    for o in &outcomes {
        report.replayed += 1;
        if o.status_mismatch {
            report.status_mismatches += 1;
        }
        if let Some(h) = o.hash {
            let slot = per_endpoint.get_mut(o.class).expect("class is an ENDPOINTS index");
            slot.0 += 1;
            slot.1 = fold(slot.1, h);
            report.overall = fold(report.overall, h);
        }
    }
    let mut endpoints: Vec<EndpointDigest> = ENDPOINTS
        .iter()
        .zip(per_endpoint)
        .filter(|(_, (requests, _))| *requests > 0)
        .map(|(name, (requests, digest))| EndpointDigest {
            endpoint: (*name).to_string(),
            requests,
            digest,
        })
        .collect();
    endpoints.sort_by(|a, b| a.endpoint.cmp(&b.endpoint));
    report.endpoints = endpoints;
    Ok(report)
}

fn replay_worker(addr: SocketAddr, keep_alive: bool, shard: Vec<Vec<ReqRecord>>) -> WorkerOut {
    let mut out = WorkerOut { outcomes: Vec::new(), transport_errors: 0, hist: Histogram::new() };
    let mut request = Vec::with_capacity(256);
    for group in shard {
        // Each recorded connection replays on its own connection so the
        // server sees the same per-connection request order.
        let mut conn: Option<ReplayConn> = None;
        for r in group {
            request.clear();
            request.extend_from_slice(b"GET ");
            request.extend_from_slice(r.target.as_bytes());
            request.extend_from_slice(b" HTTP/1.1\r\nHost: replay\r\n");
            if keep_alive {
                request.extend_from_slice(b"Connection: keep-alive\r\n");
            }
            request.extend_from_slice(b"\r\n");
            let t0 = Instant::now();
            match exchange(&mut conn, addr, &request, keep_alive) {
                Ok((status, body)) => {
                    out.hist.record(t0.elapsed().as_micros() as u64);
                    let path = r.target.split('?').next().unwrap_or(&r.target);
                    let class = endpoint_class(path);
                    let digestible = ENDPOINTS.get(class) != Some(&"metrics");
                    out.outcomes.push(Outcome {
                        conn: r.conn,
                        seq: r.seq,
                        class,
                        hash: digestible.then(|| exchange_hash(&r.target, status, &body)),
                        status_mismatch: status != r.status,
                    });
                }
                Err(_) => {
                    out.transport_errors += 1;
                    conn = None;
                }
            }
        }
    }
    out
}

struct ReplayConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// Write one request, read one framed response with its body. The
/// blocking backend closes after every response; a fresh connect per
/// request keeps the same log replayable against both backends.
fn exchange(
    conn: &mut Option<ReplayConn>,
    addr: SocketAddr,
    request: &[u8],
    keep_alive: bool,
) -> io::Result<(u16, Vec<u8>)> {
    if conn.is_none() {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        *conn = Some(ReplayConn { stream, buf: Vec::with_capacity(16 * 1024) });
    }
    let c = conn.as_mut().expect("connection just ensured above");
    c.stream.write_all(request)?;
    let (status, body, keeps) = read_framed_body(c)?;
    if !(keep_alive && keeps) {
        *conn = None;
    }
    Ok((status, body))
}

fn proto_err(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// Read one response off `c`, returning status, body bytes, and whether
/// the server offered keep-alive. Pipelined surplus stays in `c.buf`.
fn read_framed_body(c: &mut ReplayConn) -> io::Result<(u16, Vec<u8>, bool)> {
    let mut chunk = [0u8; 8 * 1024];
    let head_end = loop {
        if let Some(pos) = c.buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        match c.stream.read(&mut chunk)? {
            0 => return Err(proto_err("connection closed mid-head")),
            n => c.buf.extend_from_slice(&chunk[..n]),
        }
    };
    let head = std::str::from_utf8(&c.buf[..head_end]).map_err(|_| proto_err("non-utf8 head"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| proto_err("no status line"))?;
    let mut content_length: Option<usize> = None;
    let mut keeps = false;
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            } else if name.eq_ignore_ascii_case("connection") {
                keeps = value.trim().eq_ignore_ascii_case("keep-alive");
            }
        }
    }
    let len = content_length.ok_or_else(|| proto_err("no content-length"))?;
    while c.buf.len() < head_end + len {
        match c.stream.read(&mut chunk)? {
            0 => return Err(proto_err("connection closed mid-body")),
            n => c.buf.extend_from_slice(&chunk[..n]),
        }
    }
    let body = c.buf[head_end..head_end + len].to_vec();
    c.buf.drain(..head_end + len);
    Ok((status, body, keeps))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(conn: u64, seq: u64, target: &str, status: u16) -> ReqRecord {
        ReqRecord { conn, seq, generation: 1, status, latency_us: 0, target: target.to_string() }
    }

    #[test]
    fn digest_fold_is_order_sensitive_and_deterministic() {
        let a = exchange_hash("/top?k=3", 200, b"one");
        let b = exchange_hash("/top?k=5", 200, b"two");
        assert_ne!(fold(fold(FNV_OFFSET, a), b), fold(fold(FNV_OFFSET, b), a));
        assert_eq!(fold(fold(FNV_OFFSET, a), b), fold(fold(FNV_OFFSET, a), b));
    }

    #[test]
    fn sidecar_round_trips_and_diffs() {
        let report = ReplayReport {
            replayed: 3,
            transport_errors: 0,
            status_mismatches: 0,
            endpoints: vec![
                EndpointDigest { endpoint: "article".into(), requests: 1, digest: 0xabc },
                EndpointDigest { endpoint: "top".into(), requests: 2, digest: 0xdef },
            ],
            overall: 0x123,
            elapsed: Duration::ZERO,
            hist: Histogram::new(),
        };
        let text = report.format_digests();
        let parsed = parse_digests(&text).unwrap();
        assert_eq!(
            parsed,
            vec![
                ("article".to_string(), 0xabc),
                ("top".to_string(), 0xdef),
                ("overall".to_string(), 0x123),
            ]
        );
        assert!(report.diff_digests(&parsed).is_empty());

        let mut drifted = parsed.clone();
        drifted[1].1 ^= 1;
        let drift = report.diff_digests(&drifted);
        assert_eq!(drift.len(), 1);
        assert!(drift[0].contains("top"), "drift message names the endpoint: {drift:?}");

        assert!(parse_digests("").is_err());
        assert!(parse_digests("top nothex").is_err());
    }

    #[test]
    fn replay_groups_preserve_per_connection_order() {
        // Replay against a tiny in-test server that echoes an ordinal
        // per connection; per-connection digests only match when the
        // driver preserves (conn, seq) order.
        use std::io::BufRead;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // Serve exactly two connections, one request each visible
            // order assertion happens client-side via digests.
            for _ in 0..4 {
                let (mut s, _) = listener.accept().unwrap();
                let mut line = String::new();
                let mut reader = std::io::BufReader::new(s.try_clone().unwrap());
                reader.read_line(&mut line).unwrap();
                // Drain headers.
                loop {
                    let mut h = String::new();
                    reader.read_line(&mut h).unwrap();
                    if h == "\r\n" || h.is_empty() {
                        break;
                    }
                }
                let target = line.split_whitespace().nth(1).unwrap_or("/").to_string();
                let body = format!("echo:{target}");
                let resp = format!(
                    "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                    body.len(),
                    body
                );
                s.write_all(resp.as_bytes()).unwrap();
            }
        });
        let records = vec![
            record(1, 0, "/top?k=1", 200),
            record(1, 1, "/top?k=2", 200),
            record(2, 0, "/article/7", 200),
            record(2, 1, "/article/9", 404),
        ];
        let report =
            replay(&records, &ReplayConfig { addr, connections: 2, keep_alive: false }).unwrap();
        server.join().unwrap();
        assert_eq!(report.replayed, 4);
        assert_eq!(report.transport_errors, 0);
        // The echo server always answers 200; record 4 expected 404.
        assert_eq!(report.status_mismatches, 1);
        let names: Vec<&str> = report.endpoints.iter().map(|e| e.endpoint.as_str()).collect();
        assert_eq!(names, vec!["article", "top"]);

        // Same log, different worker count: digests must be identical.
        let listener2 = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr2 = listener2.local_addr().unwrap();
        let server2 = std::thread::spawn(move || {
            for _ in 0..4 {
                let (mut s, _) = listener2.accept().unwrap();
                let mut line = String::new();
                let mut reader = std::io::BufReader::new(s.try_clone().unwrap());
                reader.read_line(&mut line).unwrap();
                loop {
                    let mut h = String::new();
                    reader.read_line(&mut h).unwrap();
                    if h == "\r\n" || h.is_empty() {
                        break;
                    }
                }
                let target = line.split_whitespace().nth(1).unwrap_or("/").to_string();
                let body = format!("echo:{target}");
                let resp = format!(
                    "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                    body.len(),
                    body
                );
                s.write_all(resp.as_bytes()).unwrap();
            }
        });
        let report2 =
            replay(&records, &ReplayConfig { addr: addr2, connections: 1, keep_alive: false })
                .unwrap();
        server2.join().unwrap();
        assert_eq!(report.overall, report2.overall);
        assert_eq!(report.format_digests(), report2.format_digests());
    }
}
