//! CLI front end for [`scholar_loadgen`]: drive a running server and
//! print the JSON report.
//!
//! ```sh
//! scholar-loadgen --addr 127.0.0.1:8080 --requests 50000 \
//!     --connections 8 --seed 1 --target /top?k=10 --target /health \
//!     --accept 200-299,404
//! ```

use scholar_loadgen::{run, LoadConfig, StatusRanges};
use std::process::ExitCode;

const USAGE: &str = "usage: scholar-loadgen --addr HOST:PORT [options]
  --addr HOST:PORT      server to drive (required)
  --connections N       worker connections (default 4)
  --requests N          total requests (default 1000)
  --seed N              target-selection seed (default 0)
  --target PATH         repeatable; default /top?k=10
  --accept SPEC         accepted statuses, e.g. 200-299,404 (default 2xx)
  --no-keep-alive       one connection per request
  --smoke               tiny fixed workload (CI liveness check)";

fn fail(message: &str) -> ExitCode {
    eprintln!("scholar-loadgen: {message}\n{USAGE}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut config = LoadConfig::default();
    let mut targets: Vec<String> = Vec::new();
    let mut addr = None;
    let mut smoke = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => match value("--addr").map(|v| v.parse()) {
                Ok(Ok(a)) => addr = Some(a),
                Ok(Err(e)) => return fail(&format!("bad --addr: {e}")),
                Err(e) => return fail(&e),
            },
            "--connections" => match value("--connections").map(|v| v.parse()) {
                Ok(Ok(n)) => config.connections = n,
                _ => return fail("bad --connections"),
            },
            "--requests" => match value("--requests").map(|v| v.parse()) {
                Ok(Ok(n)) => config.requests = n,
                _ => return fail("bad --requests"),
            },
            "--seed" => match value("--seed").map(|v| v.parse()) {
                Ok(Ok(n)) => config.seed = n,
                _ => return fail("bad --seed"),
            },
            "--target" => match value("--target") {
                Ok(t) => targets.push(t),
                Err(e) => return fail(&e),
            },
            "--accept" => match value("--accept").map(|v| StatusRanges::parse(&v)) {
                Ok(Ok(r)) => config.accept = r,
                Ok(Err(e)) => return fail(&e),
                Err(e) => return fail(&e),
            },
            "--no-keep-alive" => config.keep_alive = false,
            "--smoke" => smoke = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument {other:?}")),
        }
    }
    let Some(addr) = addr else {
        return fail("--addr is required");
    };
    config.addr = addr;
    if !targets.is_empty() {
        config.targets = targets;
    }
    if smoke {
        config.connections = config.connections.min(2);
        config.requests = config.requests.min(200);
    }

    match run(&config) {
        Ok(report) => {
            // writeln! (not println!) so a closed pipe — `loadgen | head` —
            // reports an error instead of panicking.
            use std::io::Write;
            let json = report.to_json().to_string_pretty();
            if let Err(e) = writeln!(std::io::stdout(), "{json}") {
                return fail(&e.to_string());
            }
            if report.violations > 0 || report.transport_errors > 0 {
                eprintln!(
                    "scholar-loadgen: {} violation(s) (sample statuses {:?}), {} transport error(s)",
                    report.violations, report.violation_samples, report.transport_errors
                );
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("run failed: {e}")),
    }
}
