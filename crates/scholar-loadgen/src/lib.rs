#![warn(missing_docs)]

//! Seeded, closed-loop HTTP load generator for `scholar-serve`.
//!
//! Benchmarks in this workspace need a traffic source that is
//! *deterministic* (a seed fully fixes the request sequence), *honest*
//! (every response is checked against an accepted status set and framed
//! byte-exactly — a torn response is an error, not a fast sample), and
//! *cheap enough* not to be the bottleneck it is measuring. External
//! tools fail all three, so this crate is the workspace's own:
//!
//! - **Closed loop**: a coordinator thread draws the target sequence
//!   from a seeded [`srand`] stream and feeds it through a *bounded*
//!   channel to `connections` worker threads, each owning one
//!   keep-alive connection. Workers issue the next request only after
//!   the previous response is fully read, so concurrency is exactly
//!   the connection count and offered load self-regulates to what the
//!   server actually sustains.
//! - **Status assertions**: a [`StatusRanges`] set decides which
//!   statuses count as accepted; anything else is recorded as a
//!   violation with a sample of offending statuses kept for the error
//!   message, not panicked on mid-flight.
//! - **HDR-style capture**: per-worker [`Histogram`]s (log2 octaves,
//!   linear subbuckets — see [`hist`]) merged into one report, so the
//!   p999 of a million samples costs a few KB, not a sort.
//!
//! ```no_run
//! use scholar_loadgen::{run, LoadConfig};
//! let report = run(&LoadConfig {
//!     addr: "127.0.0.1:8080".parse().unwrap(),
//!     requests: 10_000,
//!     ..Default::default()
//! })
//! .unwrap();
//! println!("{} req/s, p99 {}us", report.throughput_rps(), report.hist.percentile(0.99));
//! ```

pub mod hist;
pub mod replay;

pub use hist::Histogram;
pub use replay::{parse_digests, replay, ReplayConfig, ReplayReport};

use srand::rngs::SmallRng;
use srand::{Rng, SeedableRng};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Inclusive status ranges a response may land in without being
/// counted as a violation.
#[derive(Debug, Clone)]
pub struct StatusRanges(Vec<(u16, u16)>);

impl StatusRanges {
    /// Accept exactly the given inclusive ranges.
    pub fn new(ranges: Vec<(u16, u16)>) -> Self {
        StatusRanges(ranges)
    }

    /// Accept any 2xx.
    pub fn ok() -> Self {
        StatusRanges(vec![(200, 299)])
    }

    /// Accept 2xx plus 404 — the mix a bench probing random article ids
    /// legitimately produces.
    pub fn ok_or_not_found() -> Self {
        StatusRanges(vec![(200, 299), (404, 404)])
    }

    /// Is `status` inside an accepted range?
    pub fn contains(&self, status: u16) -> bool {
        self.0.iter().any(|&(lo, hi)| (lo..=hi).contains(&status))
    }

    /// Parse `"200-299,404"` style spec (used by the CLI).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut ranges = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            let (lo, hi) = match part.split_once('-') {
                Some((a, b)) => (a, b),
                None => (part, part),
            };
            let lo: u16 = lo.trim().parse().map_err(|_| format!("bad status in {part:?}"))?;
            let hi: u16 = hi.trim().parse().map_err(|_| format!("bad status in {part:?}"))?;
            if lo > hi {
                return Err(format!("inverted range {part:?}"));
            }
            ranges.push((lo, hi));
        }
        if ranges.is_empty() {
            return Err("empty status spec".to_string());
        }
        Ok(StatusRanges(ranges))
    }
}

/// One load-generation run, fully determined by its fields: the same
/// config against the same server state produces the same request
/// sequence (the latencies, of course, are the measurement).
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server to drive.
    pub addr: SocketAddr,
    /// Worker threads, one persistent connection each.
    pub connections: usize,
    /// Total requests across all workers.
    pub requests: u64,
    /// Seed for the target-selection stream.
    pub seed: u64,
    /// Ask the server to keep connections open between requests. With
    /// `false` every request pays a fresh TCP handshake (the pre-event-
    /// loop behavior, kept measurable on purpose).
    pub keep_alive: bool,
    /// Request targets, drawn uniformly by the seeded stream.
    pub targets: Vec<String>,
    /// Statuses that count as success.
    pub accept: StatusRanges,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            connections: 4,
            requests: 1_000,
            seed: 0,
            keep_alive: true,
            targets: vec!["/top?k=10".to_string()],
            accept: StatusRanges::ok(),
        }
    }
}

/// What a run measured.
pub struct Report {
    /// Requests that produced a complete, framed response.
    pub completed: u64,
    /// Responses outside the accepted status ranges.
    pub violations: u64,
    /// Up to eight offending statuses, for the failure message.
    pub violation_samples: Vec<u16>,
    /// Transport failures (connect/write/read errors, torn frames).
    pub transport_errors: u64,
    /// TCP connects performed — `connections` exactly, when keep-alive
    /// holds; one per request when the server closes every time.
    pub connects: u64,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Merged latency histogram (microseconds per request).
    pub hist: Histogram,
}

impl Report {
    /// Completed requests per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.completed as f64 / self.elapsed.as_secs_f64()
    }

    /// Fold another run's tallies into this one. Elapsed times add, so
    /// the merged report reads as one longer sequential run — the shape
    /// multi-round bench phases want when they repeat a fixed load until
    /// some external condition (e.g. enough generation swaps) is met.
    pub fn merge(&mut self, other: &Report) {
        self.completed += other.completed;
        self.violations += other.violations;
        for &s in &other.violation_samples {
            if self.violation_samples.len() < 8 {
                self.violation_samples.push(s);
            }
        }
        self.transport_errors += other.transport_errors;
        self.connects += other.connects;
        self.elapsed += other.elapsed;
        self.hist.merge(&other.hist);
    }

    /// The report as JSON, in the shape the bench artifacts embed.
    pub fn to_json(&self) -> sjson::Value {
        sjson::ObjectBuilder::new()
            .field("completed", self.completed as i64)
            .field("violations", self.violations as i64)
            .field("transport_errors", self.transport_errors as i64)
            .field("connects", self.connects as i64)
            .field("elapsed_ms", self.elapsed.as_millis() as i64)
            .field("throughput_req_per_sec", self.throughput_rps())
            .field("latency_p50_us", self.hist.percentile(0.50) as i64)
            .field("latency_p90_us", self.hist.percentile(0.90) as i64)
            .field("latency_p99_us", self.hist.percentile(0.99) as i64)
            .field("latency_p999_us", self.hist.percentile(0.999) as i64)
            .field("latency_max_us", self.hist.max() as i64)
            .build()
    }
}

/// Tallies one worker brings home.
struct WorkerStats {
    completed: u64,
    violations: u64,
    violation_samples: Vec<u16>,
    transport_errors: u64,
    connects: u64,
    hist: Histogram,
}

/// One persistent connection plus its read buffer.
struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// Run the configured load and collect a merged report.
///
/// Errors only on configuration problems (no targets, zero workers);
/// per-request failures are counted in the report instead, so a flaky
/// server yields data, not a crash.
pub fn run(config: &LoadConfig) -> io::Result<Report> {
    if config.targets.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "no targets"));
    }
    if config.connections == 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "zero connections"));
    }

    // Bounded ticket channel: the coordinator stays at most one small
    // buffer ahead, so the sequence is seeded-deterministic while the
    // *pace* is set entirely by the workers draining it (closed loop).
    let depth = config.connections * 2;
    let (tx, rx) = mpsc::sync_channel::<usize>(depth);
    let rx = Arc::new(Mutex::new(rx));

    let t0 = Instant::now();
    let workers: Vec<_> = (0..config.connections)
        .map(|_| {
            let rx = Arc::clone(&rx);
            let targets = config.targets.clone();
            let addr = config.addr;
            let keep_alive = config.keep_alive;
            let accept = config.accept.clone();
            std::thread::spawn(move || worker(&rx, addr, &targets, keep_alive, &accept))
        })
        .collect();

    let mut rng = SmallRng::seed_from_u64(config.seed);
    for _ in 0..config.requests {
        let pick = rng.gen_range(0usize..config.targets.len());
        if tx.send(pick).is_err() {
            break; // every worker died; the stats will say why
        }
    }
    drop(tx); // closing the channel is the stop signal

    let mut report = Report {
        completed: 0,
        violations: 0,
        violation_samples: Vec::new(),
        transport_errors: 0,
        connects: 0,
        elapsed: Duration::ZERO,
        hist: Histogram::new(),
    };
    for w in workers {
        let stats = w.join().expect("loadgen worker panicked");
        report.completed += stats.completed;
        report.violations += stats.violations;
        for s in stats.violation_samples {
            if report.violation_samples.len() < 8 {
                report.violation_samples.push(s);
            }
        }
        report.transport_errors += stats.transport_errors;
        report.connects += stats.connects;
        report.hist.merge(&stats.hist);
    }
    report.elapsed = t0.elapsed();
    Ok(report)
}

fn worker(
    rx: &Mutex<mpsc::Receiver<usize>>,
    addr: SocketAddr,
    targets: &[String],
    keep_alive: bool,
    accept: &StatusRanges,
) -> WorkerStats {
    let mut stats = WorkerStats {
        completed: 0,
        violations: 0,
        violation_samples: Vec::new(),
        transport_errors: 0,
        connects: 0,
        hist: Histogram::new(),
    };
    let mut conn: Option<Conn> = None;
    let mut request = Vec::with_capacity(256);
    loop {
        // Take one ticket; the coordinator hanging up ends the run.
        let pick = match rx.lock().expect("ticket channel poisoned").recv() {
            Ok(p) => p,
            Err(_) => break,
        };
        let target = match targets.get(pick) {
            Some(t) => t,
            None => continue, // unreachable: picks are in range by construction
        };
        request.clear();
        request.extend_from_slice(b"GET ");
        request.extend_from_slice(target.as_bytes());
        request.extend_from_slice(b" HTTP/1.1\r\nHost: loadgen\r\n");
        if keep_alive {
            request.extend_from_slice(b"Connection: keep-alive\r\n");
        }
        request.extend_from_slice(b"\r\n");

        let t0 = Instant::now();
        match exchange(&mut conn, addr, &request, &mut stats.connects) {
            Ok((status, server_keeps)) => {
                stats.hist.record(t0.elapsed().as_micros() as u64);
                stats.completed += 1;
                if !accept.contains(status) {
                    stats.violations += 1;
                    if stats.violation_samples.len() < 8 {
                        stats.violation_samples.push(status);
                    }
                }
                if !(keep_alive && server_keeps) {
                    conn = None;
                }
            }
            Err(_) => {
                stats.transport_errors += 1;
                conn = None;
            }
        }
    }
    stats
}

/// Write one request, read one framed response. Returns the status and
/// whether the server offered to keep the connection.
fn exchange(
    conn: &mut Option<Conn>,
    addr: SocketAddr,
    request: &[u8],
    connects: &mut u64,
) -> io::Result<(u16, bool)> {
    if conn.is_none() {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        *connects += 1;
        *conn = Some(Conn { stream, buf: Vec::with_capacity(16 * 1024) });
    }
    let c = conn.as_mut().expect("connection just ensured above");
    c.stream.write_all(request)?;
    read_framed(c)
}

fn proto_err(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// Read head-until-`\r\n\r\n` plus `Content-Length` body bytes off
/// `c`, leaving any pipelined surplus in `c.buf` for the next call.
fn read_framed(c: &mut Conn) -> io::Result<(u16, bool)> {
    let mut chunk = [0u8; 8 * 1024];
    let head_end = loop {
        if let Some(pos) = c.buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        match c.stream.read(&mut chunk)? {
            0 => return Err(proto_err("connection closed mid-head")),
            n => c.buf.extend_from_slice(&chunk[..n]),
        }
    };
    let head = std::str::from_utf8(&c.buf[..head_end]).map_err(|_| proto_err("non-utf8 head"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| proto_err("no status line"))?;
    let mut content_length: Option<usize> = None;
    let mut keeps = false;
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            } else if name.eq_ignore_ascii_case("connection") {
                keeps = value.trim().eq_ignore_ascii_case("keep-alive");
            }
        }
    }
    let len = content_length.ok_or_else(|| proto_err("no content-length"))?;
    while c.buf.len() < head_end + len {
        match c.stream.read(&mut chunk)? {
            0 => return Err(proto_err("connection closed mid-body")),
            n => c.buf.extend_from_slice(&chunk[..n]),
        }
    }
    c.buf.drain(..head_end + len);
    Ok((status, keeps))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_ranges_parse_and_match() {
        let r = StatusRanges::parse("200-299, 404").unwrap();
        assert!(r.contains(200) && r.contains(250) && r.contains(404));
        assert!(!r.contains(199) && !r.contains(300) && !r.contains(500));
        assert!(StatusRanges::parse("500-200").is_err());
        assert!(StatusRanges::parse("").is_err());
        assert!(StatusRanges::parse("banana").is_err());
    }

    #[test]
    fn target_sequence_is_a_pure_function_of_the_seed() {
        let draw = |seed: u64| -> Vec<usize> {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..64).map(|_| rng.gen_range(0usize..5)).collect()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn merged_reports_add_tallies_and_keep_the_sample_cap() {
        let mk = |completed: u64, us: u64, samples: &[u16]| {
            let mut hist = Histogram::new();
            hist.record(us);
            Report {
                completed,
                violations: samples.len() as u64,
                violation_samples: samples.to_vec(),
                transport_errors: 1,
                connects: 2,
                elapsed: Duration::from_millis(100),
                hist,
            }
        };
        let mut a = mk(10, 50, &[500; 6]);
        a.merge(&mk(5, 5000, &[404; 6]));
        assert_eq!(a.completed, 15);
        assert_eq!(a.violations, 12);
        assert_eq!(a.violation_samples.len(), 8, "sample cap must hold across merges");
        assert_eq!(a.transport_errors, 2);
        assert_eq!(a.connects, 4);
        assert_eq!(a.elapsed, Duration::from_millis(200));
        assert_eq!(a.hist.count(), 2);
        assert!(a.hist.percentile(0.99) >= 5000 - 64);
    }

    #[test]
    fn run_rejects_degenerate_configs() {
        let no_targets = LoadConfig { targets: vec![], ..Default::default() };
        assert!(run(&no_targets).is_err());
        let no_workers = LoadConfig { connections: 0, ..Default::default() };
        assert!(run(&no_workers).is_err());
    }
}
