//! HDR-style latency histogram: log2 octaves split into linear
//! subbuckets, so the whole microsecond range from 0 to ~6 days fits in
//! a few KB with a bounded ~1.6% relative error above the exact region.
//!
//! Layout (`SUB` = 64): values below `SUB` get one bucket each — exact
//! counts where the interesting sub-100µs action is. Above that, a
//! value with top bit `m` lands in octave `m - 5`, subdivided linearly
//! into `SUB` buckets, each bucket spanning `2^(octave-1)` values. The
//! recorded representative is the bucket's inclusive *upper* bound, so
//! reported percentiles never flatter the system under test.

/// Subbuckets per octave (and size of the exact low region).
const SUB: u64 = 64;
/// log2(SUB).
const SUB_BITS: u32 = 6;
/// Octaves above the exact region; caps the tracked range at
/// `64 << 33` µs ≈ 6.4 days, far past any sane request latency.
const OCTAVES: usize = 34;

/// Total bucket count.
const BUCKETS: usize = SUB as usize * (OCTAVES + 1);

/// A fixed-size latency histogram over `u64` microsecond samples.
#[derive(Clone)]
pub struct Histogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    // Top bit position; `v >= SUB` so `msb >= SUB_BITS`.
    let msb = 63 - v.leading_zeros();
    let octave = (msb - SUB_BITS + 1) as usize;
    let octave = octave.min(OCTAVES); // clamp over-range samples
    let sub = ((v >> (octave - 1)).min(2 * SUB - 1) - SUB) as usize;
    SUB as usize * octave + sub
}

/// Inclusive upper bound of the bucket at `index`.
fn bucket_upper(index: usize) -> u64 {
    if index < SUB as usize {
        return index as u64;
    }
    let octave = index / SUB as usize;
    let sub = (index % SUB as usize) as u64;
    ((SUB + sub + 1) << (octave - 1)) - 1
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { counts: Box::new([0; BUCKETS]), total: 0, max: 0 }
    }

    /// Record one sample (microseconds).
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.total += 1;
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest sample recorded, exact (not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]` — the bucket upper bound
    /// below which at least `q` of the samples fall. Returns 0 on an
    /// empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report past the true maximum: the top occupied
                // bucket's upper bound can overshoot it.
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_region_is_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB {
            h.record(v);
        }
        // 64 samples 0..=63: the median is 32 exactly, p100 is 63.
        assert_eq!(h.percentile(0.5), 31);
        assert_eq!(h.percentile(1.0), 63);
        assert_eq!(h.count(), SUB);
    }

    #[test]
    fn relative_error_is_bounded_above_the_exact_region() {
        for v in [64u64, 100, 999, 12_345, 1_000_000, 987_654_321] {
            let idx = bucket_index(v);
            let upper = bucket_upper(idx);
            assert!(upper >= v, "upper bound below sample for {v}");
            // One subbucket spans 2^(octave-1) = upper-range / SUB:
            // the overshoot is at most ~1/64 ≈ 1.6%.
            assert!(
                (upper - v) as f64 <= v as f64 / 32.0,
                "bucket overshoot too wide for {v}: upper {upper}"
            );
        }
    }

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut prev = bucket_index(0);
        let mut prev_upper = bucket_upper(prev);
        for v in 1..200_000u64 {
            let idx = bucket_index(v);
            assert!(idx == prev || idx == prev + 1, "gap at {v}");
            if idx != prev {
                assert_eq!(bucket_upper(prev), v - 1, "bucket seam misplaced at {v}");
                assert!(bucket_upper(idx) > prev_upper);
                prev = idx;
                prev_upper = bucket_upper(idx);
            }
        }
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let samples: Vec<u64> = (0..1000u64).map(|i| i * i % 77_777).collect();
        let mut whole = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &s) in samples.iter().enumerate() {
            whole.record(s);
            if i % 2 == 0 {
                a.record(s)
            } else {
                b.record(s)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.percentile(q), whole.percentile(q));
        }
    }

    #[test]
    fn percentiles_never_exceed_the_true_max() {
        let mut h = Histogram::new();
        h.record(1_000_003);
        assert_eq!(h.percentile(1.0), 1_000_003);
        assert_eq!(h.max(), 1_000_003);
    }
}
