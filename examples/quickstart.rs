//! Quickstart: generate a corpus, run QRank, inspect the top articles.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use scholar::rank::scores::top_k;
use scholar::{Preset, QRank};

fn main() {
    // 1. A corpus. `Preset::AanLike` matches the scale of the ACL
    //    Anthology Network; swap in `scholar::corpus::loader` to read a
    //    real dataset instead.
    let corpus = Preset::Tiny.generate(42);
    println!(
        "corpus: {} articles, {} citations, {} authors, {} venues\n",
        corpus.num_articles(),
        corpus.num_citations(),
        corpus.num_authors(),
        corpus.num_venues()
    );

    // 2. Rank. `QRank::default()` uses the tuned defaults; see
    //    `QRankConfig` for every knob.
    let ranker = QRank::default();
    let result = ranker.run(&corpus);
    println!(
        "ranked in {} TWPR iterations + {} reinforcement rounds (converged: {})\n",
        result.twpr_diagnostics.iterations, result.outer.iterations, result.outer.converged
    );

    // 3. Inspect.
    println!("top 10 articles by QRank:");
    for (pos, idx) in top_k(&result.article_scores, 10).into_iter().enumerate() {
        let a = &corpus.articles()[idx];
        println!(
            "  {:>2}. [{:.5}] {} ({}, {})",
            pos + 1,
            result.article_scores[idx],
            a.title,
            a.year,
            corpus.venue(a.venue).name
        );
    }

    println!("\ntop 5 venues by QRank venue score:");
    for (pos, idx) in top_k(&result.venue_scores, 5).into_iter().enumerate() {
        println!(
            "  {:>2}. [{:.5}] {}",
            pos + 1,
            result.venue_scores[idx],
            corpus.venues()[idx].name
        );
    }
}
