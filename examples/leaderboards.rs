//! Venue and author leaderboards, including era-restricted venue prestige.
//!
//! ```sh
//! cargo run --release --example leaderboards
//! ```

use scholar::rank::scores::top_k;
use scholar::rank::venue_author::{venue_scores_from_articles, venue_scores_in_window};
use scholar::{Preset, QRank};

fn main() {
    let corpus = Preset::Tiny.generate(23);
    let result = QRank::default().run(&corpus);

    println!("== author leaderboard (QRank author scores) ==");
    for (pos, idx) in top_k(&result.author_scores, 8).into_iter().enumerate() {
        let pubs = corpus.articles_by_author()[idx].len();
        println!(
            "  {:>2}. [{:.5}] {:<16} ({} articles)",
            pos + 1,
            result.author_scores[idx],
            corpus.authors()[idx].name,
            pubs
        );
    }

    println!("\n== venue leaderboard (QRank venue scores) ==");
    for (pos, idx) in top_k(&result.venue_scores, 5).into_iter().enumerate() {
        let count = corpus.articles_by_venue()[idx].len();
        println!(
            "  {:>2}. [{:.5}] {:<12} ({} articles)",
            pos + 1,
            result.venue_scores[idx],
            corpus.venues()[idx].name,
            count
        );
    }

    // Era-restricted venue prestige: the same venues scored only on what
    // they published recently, which penalizes coasting on old classics.
    let (first, last) = corpus.year_range().unwrap();
    let recent_from = last - 5;
    let all_time = venue_scores_from_articles(&corpus, &result.article_scores);
    let recent = venue_scores_in_window(&corpus, &result.article_scores, recent_from, last);

    println!("\n== venue prestige: all-time vs last-5-years (mean article score) ==");
    println!("  {:<12} {:>12} {:>12}", "venue", "all-time", "recent");
    for idx in top_k(&all_time, 5) {
        println!(
            "  {:<12} {:>12.6} {:>12.6}",
            corpus.venues()[idx].name,
            all_time[idx],
            recent[idx]
        );
    }
    println!("\n(corpus years {first}-{last}; 'recent' window {recent_from}-{last})");
}
