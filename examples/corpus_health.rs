//! Corpus health dashboard: the bibliometric diagnostics an operator of a
//! scholarly search index monitors, plus a comparison of QRank venue
//! scores against the classic journal impact factor.
//!
//! ```sh
//! cargo run --release --example corpus_health
//! ```

use scholar::corpus::analysis::{
    citation_age_histogram, fractional_productivity, h_index, mean_citation_age,
    self_citation_rate, venue_insularity,
};
use scholar::corpus::stats::corpus_stats;
use scholar::rank::scores::top_k;
use scholar::rank::venue_author::impact_factor;
use scholar::{Preset, QRank};

fn main() {
    let corpus = Preset::Tiny.generate(63);
    println!("{}\n", corpus_stats(&corpus));

    // Citation-age profile.
    let hist = citation_age_histogram(&corpus);
    let total: usize = hist.iter().sum();
    println!("citation-age profile (mean {:.1}y):", mean_citation_age(&corpus).unwrap());
    for (age, &n) in hist.iter().enumerate().take(10) {
        let bar = "#".repeat((n * 50 / total.max(1)).min(50));
        println!("  {age:>2}y {n:>5} {bar}");
    }

    println!("\nself-citation rate: {:.1}%", self_citation_rate(&corpus).unwrap_or(0.0) * 100.0);

    // Venue insularity vs size.
    let ins = venue_insularity(&corpus);
    let by_venue = corpus.articles_by_venue();
    println!("\nvenue insularity (fraction of citations staying in-venue):");
    for v in corpus.venues().iter().take(5) {
        println!(
            "  {:<12} {:>5.1}%  ({} articles)",
            v.name,
            ins[v.id.index()] * 100.0,
            by_venue[v.id.index()].len()
        );
    }

    // h-index leaderboard vs fractional productivity.
    let h = h_index(&corpus);
    let hf: Vec<f64> = h.iter().map(|&x| x as f64).collect();
    let prod = fractional_productivity(&corpus);
    println!("\ntop authors by within-corpus h-index:");
    for idx in top_k(&hf, 5) {
        println!(
            "  h={:<3} {:<16} ({:.1} fractional articles)",
            h[idx],
            corpus.authors()[idx].name,
            prod[idx]
        );
    }

    // QRank venue prestige vs 2-year impact factor.
    let result = QRank::default().run(&corpus);
    let last = corpus.year_range().unwrap().1;
    let jif = impact_factor(&corpus, last, 2);
    println!("\nvenue prestige: QRank score vs 2-year impact factor ({last}):");
    println!("  {:<12} {:>10} {:>8}", "venue", "QRank", "JIF");
    for idx in top_k(&result.venue_scores, 5) {
        println!(
            "  {:<12} {:>10.5} {:>8.2}",
            corpus.venues()[idx].name,
            result.venue_scores[idx],
            jif[idx]
        );
    }
}
