//! What-if analysis of the time-decay rate ρ: how much does the top of
//! the ranking change as citations to old work are discounted harder?
//!
//! ```sh
//! cargo run --release --example decay_whatif
//! ```

use scholar::eval::metrics::jaccard_at_k;
use scholar::eval::series::SeriesSet;
use scholar::rank::scores::top_k;
use scholar::{Preset, QRank, QRankConfig, Ranker};

fn main() {
    let corpus = Preset::Tiny.generate(31);
    let rhos = [0.0, 0.05, 0.1, 0.2, 0.4, 0.8];

    let baseline = QRank::new(QRankConfig::default().with_rho(0.0)).rank(&corpus);
    let (first, last) = corpus.year_range().unwrap();

    let mut overlap = Vec::new();
    let mut mean_top_year = Vec::new();
    for &rho in &rhos {
        let scores = QRank::new(QRankConfig::default().with_rho(rho)).rank(&corpus);
        overlap.push(jaccard_at_k(&baseline, &scores, 25));
        let years: Vec<f64> =
            top_k(&scores, 25).into_iter().map(|i| corpus.articles()[i].year as f64).collect();
        mean_top_year.push(years.iter().sum::<f64>() / years.len() as f64);
    }

    let mut fig = SeriesSet::new("effect of the decay rate on the top-25", "rho", rhos.to_vec());
    fig.add("jaccard@25 vs rho=0", overlap);
    fig.add("mean year of top-25", mean_top_year.clone());
    println!("{fig}");

    println!(
        "reading: as rho grows, the top-25 drifts away from the rho=0 ranking\n\
         (falling jaccard) and becomes more recent (mean year rises toward {last};\n\
         corpus spans {first}-{last}). This is R-Fig 1's mechanism in isolation."
    );
}
