//! Cold-start scoring: rank brand-new submissions that are not in the
//! index yet, using only venue and author prestige.
//!
//! ```sh
//! cargo run --release --example cold_start
//! ```

use scholar::corpus::model::{AuthorId, VenueId};
use scholar::rank::scores::top_k;
use scholar::{ColdStartScorer, Preset, QRank, QRankConfig};

fn main() {
    let corpus = Preset::Tiny.generate(11);
    let config = QRankConfig::default();
    let result = QRank::new(config.clone()).run(&corpus);
    let scorer = ColdStartScorer::new(&result, config.lambda_venue, config.lambda_author);

    // Pick interesting venues/authors from the finished run.
    let best_venue = VenueId(top_k(&result.venue_scores, 1)[0] as u32);
    let worst_venue = {
        let order = top_k(&result.venue_scores, result.venue_scores.len());
        VenueId(*order.last().unwrap() as u32)
    };
    let star_author = AuthorId(top_k(&result.author_scores, 1)[0] as u32);
    let fresh_author = {
        let order = top_k(&result.author_scores, result.author_scores.len());
        AuthorId(*order.last().unwrap() as u32)
    };

    println!(
        "best venue: {} | weakest venue: {}",
        corpus.venue(best_venue).name,
        corpus.venue(worst_venue).name
    );
    println!(
        "star author: {} | unknown author: {}\n",
        corpus.author(star_author).name,
        corpus.author(fresh_author).name
    );

    // Four hypothetical submissions, none of which exist in the corpus.
    let candidates = [
        ("star author @ top venue", (best_venue, vec![star_author])),
        ("star author @ weak venue", (worst_venue, vec![star_author])),
        ("unknown author @ top venue", (best_venue, vec![fresh_author])),
        ("unknown author @ weak venue", (worst_venue, vec![fresh_author])),
    ];
    let specs: Vec<(VenueId, Vec<AuthorId>)> =
        candidates.iter().map(|(_, spec)| spec.clone()).collect();

    println!("cold-start ranking of tomorrow's submissions:");
    for (rank, (idx, score)) in scorer.rank_candidates(&specs).into_iter().enumerate() {
        let percentile = scorer.percentile_among(score, &result, &corpus);
        println!(
            "  {}. {:<28} score {:.3e} (would land at the {:>4.1}th percentile of the index)",
            rank + 1,
            candidates[idx].0,
            score,
            percentile * 100.0
        );
    }

    println!(
        "\nWhy this matters: a pure citation ranker scores all four candidates\n\
         identically (zero citations). QRank's venue/author components price\n\
         them from day one — the cold-start fix the framework was built for."
    );
}
