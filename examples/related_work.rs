//! Seeded exploration with personalized PageRank: "what else should I
//! read, given this reading list?"
//!
//! ```sh
//! cargo run --release --example related_work
//! ```

use scholar::rank::personalized::{related_articles, PersonalizedConfig};
use scholar::rank::scores::top_k;
use scholar::{CitationCount, Preset, Ranker};

fn main() {
    let corpus = Preset::Tiny.generate(99);

    // Pretend the user's reading list is the two most-cited articles from
    // the corpus's middle years (a realistic "I know the classics of this
    // subfield" starting point).
    let (first, last) = corpus.year_range().unwrap();
    let mid_lo = first + (last - first) / 3;
    let mid_hi = last - (last - first) / 3;
    let cc = CitationCount.rank(&corpus);
    let reading_list: Vec<scholar::corpus::ArticleId> = top_k(&cc, corpus.num_articles())
        .into_iter()
        .filter(|&i| {
            let y = corpus.articles()[i].year;
            y >= mid_lo && y <= mid_hi
        })
        .take(2)
        .map(|i| scholar::corpus::ArticleId(i as u32))
        .collect();

    println!("reading list:");
    for &id in &reading_list {
        let a = corpus.article(id);
        println!("  - {} ({}, {} citations received)", a.title, a.year, {
            corpus.citation_counts()[id.index()]
        });
    }

    let related = related_articles(&corpus, &reading_list, 8, &PersonalizedConfig::default());
    println!("\nmost related articles (personalized-PageRank lift over global):");
    for (pos, (id, lift)) in related.iter().enumerate() {
        let a = corpus.article(*id);
        println!("  {}. [{:+.2e}] {} ({})", pos + 1, lift, a.title, a.year);
    }

    println!(
        "\nThe lift is personalized-minus-global score: positive means the\n\
         article matters specifically from this reading list's perspective,\n\
         not merely because it is globally important."
    );
}
