//! Incremental re-ranking: fold this year's publications into an existing
//! index without recomputing from scratch.
//!
//! ```sh
//! cargo run --release --example incremental_reindex
//! ```

use scholar::core::{grow_corpus, IncrementalRanker};
use scholar::corpus::model::Article;
use scholar::corpus::{snapshot_until, ArticleId, Preset};
use scholar::rank::scores::top_k;
use scholar::QRankConfig;

fn main() {
    // The world as of two years before the end of the corpus.
    let full = Preset::Tiny.generate(77);
    let (_, last) = full.year_range().unwrap();
    let snap = snapshot_until(&full, last - 2);
    println!("initial index: {} articles (through {})", snap.corpus.num_articles(), last - 2);

    let mut index = IncrementalRanker::new(QRankConfig::default(), snap.corpus.clone());
    println!("initial ranking: {} inner iterations\n", index.result().twpr_diagnostics.iterations);

    // Two yearly update batches arrive.
    let mut current_snap = snap;
    for year in (last - 1)..=last {
        let next_snap = snapshot_until(&full, year);
        let batch: Vec<Article> = full
            .articles()
            .iter()
            .filter(|a| a.year == year)
            .map(|a| Article {
                id: ArticleId(0), // reassigned on growth
                title: a.title.clone(),
                year: a.year,
                venue: a.venue,
                authors: a.authors.clone(),
                references: a
                    .references
                    .iter()
                    .filter_map(|&r| current_snap.to_snapshot(r))
                    .collect(),
                merit: a.merit,
            })
            .collect();
        let grown = grow_corpus(index.corpus(), batch);
        let stats = index.extend(grown);
        println!(
            "year {year}: +{} articles, warm re-rank took {} inner iterations",
            stats.added_articles, stats.warm_iterations
        );
        current_snap = next_snap;
    }

    println!("\ntop 5 after the final update:");
    let result = index.result();
    for (pos, i) in top_k(&result.article_scores, 5).into_iter().enumerate() {
        let a = &index.corpus().articles()[i];
        println!("  {}. [{:.5}] {} ({})", pos + 1, result.article_scores[i], a.title, a.year);
    }
}
