//! The full evaluation pipeline on an AAN-format corpus.
//!
//! Demonstrates the real-data path end to end: a corpus is serialized in
//! the ACL Anthology Network release format (metadata + `==>` citation
//! file), loaded back through the AAN loader, snapshotted at a cutoff
//! year, ranked by every method, and scored against future-citation
//! ground truth — exactly what you would do with the real
//! `acl-metadata.txt` / `acl.txt` download.
//!
//! ```sh
//! cargo run --release --example aan_pipeline
//! ```

use scholar::corpus::loader::{aan, LoadOptions};
use scholar::corpus::{snapshot_until, Preset};
use scholar::eval::groundtruth::future_citations;
use scholar::eval::tables::{fmt_metric, fmt_seconds, Table};
use scholar::eval::Experiment;

fn main() {
    // Stand-in for the AAN download (see DESIGN.md §5): a generated
    // corpus written in the AAN release format.
    let generated = Preset::Tiny.generate(7);
    let metadata = aan::write_metadata(&generated);
    let citations = aan::write_citations(&generated);
    println!(
        "wrote AAN-format release: {} bytes metadata, {} bytes citations",
        metadata.len(),
        citations.len()
    );

    // Load through the real-format loader.
    let corpus = aan::read_aan(metadata.as_bytes(), citations.as_bytes(), &LoadOptions::default())
        .expect("AAN load failed");
    println!("loaded: {} articles, {} citations\n", corpus.num_articles(), corpus.num_citations());

    // Rank with data up to the 80% cutoff; ground truth = citations in the
    // following 5 years. Merit survives the round trip only in the
    // generated corpus, so the future-citation truth (which needs none) is
    // the right one here.
    let (first, last) = corpus.year_range().expect("non-empty corpus");
    let cutoff = first + ((last - first) as f64 * 0.8) as i32;
    let snap = snapshot_until(&corpus, cutoff);
    // NOTE: future citations come from the FULL corpus, so the ground
    // truth sees what the rankers cannot.
    let truth = future_citations(&corpus, &snap, 5);
    println!(
        "snapshot at {}: {} articles visible; truth = {}\n",
        cutoff,
        snap.corpus.num_articles(),
        truth.description
    );

    let experiment = Experiment { corpus: &snap.corpus, truth: &truth };
    let rows = experiment.run(&scholar::evaluation_rankers());

    let mut table = Table::new(
        "future-citation prediction (AAN-format pipeline)",
        &["method", "pairwise", "spearman", "kendall", "ndcg@50", "time"],
    );
    for row in &rows {
        table.row(vec![
            row.method.clone(),
            fmt_metric(row.pairwise_accuracy),
            fmt_metric(row.spearman),
            fmt_metric(row.kendall),
            fmt_metric(row.ndcg_at_50),
            fmt_seconds(row.seconds),
        ]);
    }
    println!("{table}");
}
