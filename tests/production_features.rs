//! Integration of the production features on one corpus: cold-start
//! scoring, explanations, incremental re-ranking, and rank fusion working
//! together the way a deployed system would use them.

use scholar::core::{grow_corpus, Explainer, IncrementalRanker};
use scholar::corpus::model::Article;
use scholar::corpus::{snapshot_until, ArticleId, Preset};
use scholar::rank::fusion::{FusedRanker, FusionRule};
use scholar::rank::scores::top_k;
use scholar::{CitationCount, ColdStartScorer, QRank, QRankConfig, Ranker, TimeWeightedPageRank};

#[test]
fn cold_start_scores_align_with_eventual_reality() {
    // Freeze the world two years early; cold-score the articles that are
    // about to appear from their venue/byline alone; check the scores
    // correlate with the citations those articles eventually receive.
    // Needs an AAN-shaped corpus — on the tiny preset the future cohort is
    // ~100 articles with near-tied citation counts and the measurement is
    // pure noise.
    let full = scholar::corpus::CorpusGenerator::new(scholar::GeneratorConfig {
        initial_articles_per_year: 50.0,
        ..Preset::AanLike.config(42)
    })
    .generate();
    let (_, last) = full.year_range().unwrap();
    let snap = snapshot_until(&full, last - 2);
    let cfg = QRankConfig::default();
    let result = QRank::new(cfg.clone()).run(&snap.corpus);
    let scorer = ColdStartScorer::new(&result, cfg.lambda_venue, cfg.lambda_author);

    let final_counts = full.citation_counts();
    let mut preds = Vec::new();
    let mut actuals = Vec::new();
    for a in full.articles() {
        if a.year <= last - 2 || a.authors.is_empty() {
            continue;
        }
        // Authors that existed before the cutoff keep their ids (author
        // table is shared across snapshots).
        let known: Vec<_> =
            a.authors.iter().copied().filter(|u| u.index() < snap.corpus.num_authors()).collect();
        if known.is_empty() {
            continue;
        }
        preds.push(scorer.score(a.venue, &known));
        actuals.push(final_counts[a.id.index()] as f64);
    }
    assert!(preds.len() > 50, "need a meaningful future cohort, got {}", preds.len());
    let acc = scholar::eval::metrics::pairwise_accuracy(&actuals, &preds);
    assert!(
        acc > 0.55,
        "venue/author priors alone should beat chance at predicting the future cohort's citations, got {acc:.3}"
    );
}

#[test]
fn explanations_cover_the_whole_top_ten() {
    let corpus = Preset::Tiny.generate(82);
    let cfg = QRankConfig::default();
    let result = QRank::new(cfg.clone()).run(&corpus);
    let explainer = Explainer::new(&corpus, &cfg, &result);
    for idx in top_k(&result.article_scores, 10) {
        let e = explainer.explain(ArticleId(idx as u32), 3, &cfg);
        let share_sum = e.citation_share + e.venue_share + e.author_share;
        assert!((share_sum - 1.0).abs() < 1e-9);
        assert!(e.top_citers.len() <= 3);
        let text = e.render(&corpus);
        assert!(text.contains("signal mix"));
    }
}

#[test]
fn incremental_pipeline_tracks_cold_recompute_through_growth() {
    let full = Preset::Tiny.generate(83);
    let (_, last) = full.year_range().unwrap();
    let base = snapshot_until(&full, last - 3);
    let mut index = IncrementalRanker::new(QRankConfig::default(), base.corpus.clone());

    let mut current = base;
    for year in (last - 2)..=last {
        let next = snapshot_until(&full, year);
        let batch: Vec<Article> = full
            .articles()
            .iter()
            .filter(|a| a.year == year)
            .map(|a| Article {
                id: ArticleId(0),
                title: a.title.clone(),
                year: a.year,
                venue: a.venue,
                authors: a.authors.clone(),
                references: a.references.iter().filter_map(|&r| current.to_snapshot(r)).collect(),
                merit: a.merit,
            })
            .collect();
        let grown = grow_corpus(index.corpus(), batch);
        index.extend(grown);
        current = next;
    }

    // After all updates the incremental index must match a from-scratch
    // run on the final snapshot.
    let cold = QRank::default().run(index.corpus());
    let l1: f64 = index
        .result()
        .article_scores
        .iter()
        .zip(&cold.article_scores)
        .map(|(a, b)| (a - b).abs())
        .sum();
    assert!(l1 < 1e-6, "incremental drifted from cold recompute by {l1}");
}

#[test]
fn fusion_is_at_least_as_stable_as_its_parts() {
    // Rank-fused output under citation subsampling should not be less
    // stable than its most fragile component.
    let corpus = Preset::Tiny.generate(84);
    let sparse = scholar::corpus::perturb::sample_citations(&corpus, 0.5, 7);

    let stability = |ranker: &dyn Ranker| {
        let full = ranker.rank(&corpus);
        let thin = ranker.rank(&sparse);
        scholar::eval::metrics::kendall_tau_b(&full, &thin)
    };

    let fused = FusedRanker::new(
        vec![Box::new(CitationCount), Box::new(TimeWeightedPageRank::default())],
        FusionRule::default(),
    );
    let s_fused = stability(&fused);
    let s_cc = stability(&CitationCount);
    let s_twpr = stability(&TimeWeightedPageRank::default());
    let worst = s_cc.min(s_twpr);
    assert!(
        s_fused > worst - 0.05,
        "fusion stability {s_fused:.3} fell below its weakest part {worst:.3}"
    );
}

#[test]
fn rbo_confirms_method_families() {
    // RBO over the top of the ranking should group time-aware methods
    // together and away from plain PageRank.
    let corpus = Preset::Tiny.generate(85);
    let twpr = TimeWeightedPageRank::default().rank(&corpus);
    let qrank = QRank::default().rank(&corpus);
    let pagerank = scholar::PageRank::default().rank(&corpus);
    let within_family = scholar::eval::metrics::rbo(&twpr, &qrank, 0.9, 100);
    let across = scholar::eval::metrics::rbo(&pagerank, &qrank, 0.9, 100);
    assert!(
        within_family > across,
        "TWPR↔QRank head agreement ({within_family:.3}) should exceed PageRank↔QRank ({across:.3})"
    );
}
