//! Cross-crate integration: the full evaluation pipeline on a generated
//! corpus, asserting the *shape* of the paper's headline results
//! (DESIGN.md §4 "expected shape").

use scholar::corpus::snapshot_until;
use scholar::eval::groundtruth::future_citations;
use scholar::eval::metrics::pairwise_accuracy_auto;
use scholar::{
    CitationCount, Corpus, PageRank, Preset, QRank, QRankConfig, Ranker, TimeWeightedPageRank,
};

/// An AAN-shaped corpus small enough for CI: same structural parameters,
/// ~4k articles.
fn eval_corpus() -> Corpus {
    let cfg =
        scholar::GeneratorConfig { initial_articles_per_year: 50.0, ..Preset::AanLike.config(99) };
    scholar::corpus::CorpusGenerator::new(cfg).generate()
}

struct Split {
    snap: scholar::corpus::Snapshot,
    truth: scholar::GroundTruth,
}

fn split(corpus: &Corpus) -> Split {
    let (first, last) = corpus.year_range().unwrap();
    let cutoff = first + ((last - first) as f64 * 0.8) as i32;
    let snap = snapshot_until(corpus, cutoff);
    let truth = future_citations(corpus, &snap, 5);
    Split { snap, truth }
}

fn accuracy(ranker: &dyn Ranker, s: &Split) -> f64 {
    let scores = ranker.rank(&s.snap.corpus);
    pairwise_accuracy_auto(&s.truth.values, &scores, 7)
}

#[test]
fn all_rankers_beat_chance_on_future_citations() {
    let corpus = eval_corpus();
    let s = split(&corpus);
    for ranker in scholar::evaluation_rankers() {
        let acc = accuracy(ranker.as_ref(), &s);
        assert!(
            acc > 0.55,
            "{} should beat chance at predicting future citations, got {acc:.3}",
            ranker.name()
        );
    }
}

#[test]
fn headline_shape_twpr_beats_pagerank() {
    // The core claim of the time-weighted walk: modeling time beats not
    // modeling it on future-citation prediction.
    let corpus = eval_corpus();
    let s = split(&corpus);
    let pr = accuracy(&PageRank::default(), &s);
    let twpr = accuracy(&TimeWeightedPageRank::default(), &s);
    assert!(twpr > pr + 0.02, "TWPR ({twpr:.3}) should clearly beat PageRank ({pr:.3})");
}

#[test]
fn headline_shape_qrank_beats_plain_baselines() {
    let corpus = eval_corpus();
    let s = split(&corpus);
    let qr = accuracy(&QRank::default(), &s);
    let pr = accuracy(&PageRank::default(), &s);
    let cc = accuracy(&CitationCount, &s);
    assert!(qr > pr, "QRank ({qr:.3}) should beat PageRank ({pr:.3})");
    assert!(qr > cc, "QRank ({qr:.3}) should beat citation count ({cc:.3})");
}

#[test]
fn cold_start_shape_qrank_margin_is_largest_on_new_articles() {
    // The venue/author layers must pay off most on articles with the least
    // citation history (R-Fig 5's shape).
    let corpus = eval_corpus();
    let s = split(&corpus);
    let qr_scores = QRank::default().rank(&s.snap.corpus);
    let pr_scores = PageRank::default().rank(&s.snap.corpus);

    let slice_accuracy = |scores: &[f64], max_age: i32| -> f64 {
        let keep: Vec<usize> = s
            .snap
            .corpus
            .articles()
            .iter()
            .filter(|a| s.snap.cutoff - a.year < max_age)
            .map(|a| a.id.index())
            .collect();
        let t: Vec<f64> = keep.iter().map(|&i| s.truth.values[i]).collect();
        let p: Vec<f64> = keep.iter().map(|&i| scores[i]).collect();
        pairwise_accuracy_auto(&t, &p, 7)
    };

    let qr_new = slice_accuracy(&qr_scores, 3);
    let pr_new = slice_accuracy(&pr_scores, 3);
    assert!(
        qr_new > pr_new + 0.03,
        "on articles <3y old, QRank ({qr_new:.3}) must clearly beat PageRank ({pr_new:.3})"
    );
}

#[test]
fn ablations_cost_accuracy() {
    // Removing everything (down to plain PageRank) must cost accuracy
    // relative to the full model.
    let corpus = eval_corpus();
    let s = split(&corpus);
    let base = QRankConfig::default();
    let full = pairwise_accuracy_auto(
        &s.truth.values,
        &scholar::Ablation::Full.rank(&base, &s.snap.corpus),
        7,
    );
    let gutted = pairwise_accuracy_auto(
        &s.truth.values,
        &scholar::Ablation::PlainPageRank.rank(&base, &s.snap.corpus),
        7,
    );
    assert!(
        full > gutted + 0.02,
        "full QRank ({full:.3}) must clearly beat its fully-ablated form ({gutted:.3})"
    );
}

#[test]
fn award_articles_rank_high_under_qrank() {
    let corpus = eval_corpus();
    let awards = scholar::eval::groundtruth::award_set(&corpus, 5, 0.02);
    let scores = QRank::default().rank(&corpus);
    let k = corpus.num_articles() / 10; // top decile
    let p = scholar::eval::metrics::recall_at_k(&awards, &scores, k);
    assert!(p > 0.3, "top decile of QRank should recover >30% of award articles, got {p:.3}");
}

#[test]
fn expert_pairs_agree_with_qrank() {
    let corpus = eval_corpus();
    let pairs = scholar::eval::groundtruth::expert_pairs(&corpus, 2000, 3.0, 5);
    assert!(pairs.len() >= 500);
    let scores = QRank::default().rank(&corpus);
    let agreement = scholar::eval::groundtruth::pair_agreement(&pairs, &scores);
    let cc = CitationCount.rank(&corpus);
    let cc_agreement = scholar::eval::groundtruth::pair_agreement(&pairs, &cc);
    assert!(
        agreement > 0.6,
        "QRank should agree with clear-margin expert pairs, got {agreement:.3}"
    );
    assert!(
        agreement >= cc_agreement - 0.05,
        "QRank ({agreement:.3}) should not fall far behind citation count ({cc_agreement:.3})"
    );
}
