//! The chaos suite: deterministic fault injection and model-based
//! checking for the serve/reindex pipeline.
//!
//! Compiled only with the `failpoints` feature — the default test build
//! carries none of this (and none of the failpoint overhead):
//!
//! ```text
//! cargo test -p scholar --features failpoints --test chaos
//! ```
//!
//! Three pillars, all driven through `scholar_testkit`:
//!
//! 1. **Failpoint schedules** — seeded fault mixes armed at the named
//!    sites inside scholar-serve, the corpus loaders, and the incremental
//!    ranker. Every schedule is a pure function of its seed.
//! 2. **Model-based checking** — the brute-force `ModelIndex` re-derives
//!    the query contract independently; the real `ScoreIndex` and the
//!    hot-swap layer must agree with it under adversarial queries and
//!    seeded publish interleavings.
//! 3. **Byte-level HTTP chaos** — split writes, truncations, disconnects,
//!    and garbage against a live server, with the worker pool proven
//!    alive and `/metrics` accounting proven exact afterwards.
//!
//! Every failing case prints a `CHAOS-SEED <label> seed=<n>` line; re-run
//! exactly that case with `SCHOLAR_CHAOS_REPLAY=<label>:<n>`.

#![cfg(feature = "failpoints")]

use scholar::core::incremental::{grow_corpus, IncrementalRanker};
use scholar::corpus::model::{Article, ArticleId, AuthorId, VenueId};
use scholar::corpus::{Corpus, CorpusBuilder};
use scholar::serve::shadow::Decision;
use scholar::serve::{
    read_rlog, serve, Backend, DurableOptions, Metrics, Recorder, Reindexer, ReqRecord, ScoreIndex,
    ServeConfig, ShadowThresholds, SharedIndex, StateError, TopQuery,
};
use scholar::QRankConfig;
use scholar_testkit::chaos;
use scholar_testkit::fp::{self, Action, FaultMix, Scenario};
use scholar_testkit::model::{
    arb_query, assert_monotone_generations, ModelArticle, ModelIndex, ModelQuery,
};
use scholar_testkit::seeds::for_seeds;
use srand::{rngs::SmallRng, Rng, SeedableRng};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------- helpers

/// A small random corpus plus a tie-heavy score vector: scores come from
/// a tiny palette so every query exercises the tie-breaking contract.
fn arb_indexed(rng: &mut SmallRng) -> (Arc<Corpus>, Vec<f64>) {
    let n = rng.gen_range(5usize..40);
    let nv = rng.gen_range(1u32..5);
    let na = rng.gen_range(1u32..6);
    let mut b = CorpusBuilder::new();
    for v in 0..nv {
        b.venue(&format!("V{v}"));
    }
    for a in 0..na {
        b.author(&format!("A{a}"));
    }
    for i in 0..n {
        let year = rng.gen_range(1990i32..2015);
        let venue = VenueId(rng.gen_range(0u32..nv));
        let mut authors: Vec<AuthorId> =
            (0..rng.gen_range(0usize..3)).map(|_| AuthorId(rng.gen_range(0u32..na))).collect();
        authors.sort();
        authors.dedup();
        let refs: Vec<ArticleId> = (0..rng.gen_range(0usize..4))
            .map(|_| rng.gen_range(0usize..n))
            .filter(|&r| r != i)
            .map(|r| ArticleId(r as u32))
            .collect();
        b.add_article(&format!("c{i}"), year, venue, authors, refs, None);
    }
    let corpus = Arc::new(b.finish().expect("arbitrary corpus must build"));
    let palette = [0.0, 0.1, 0.1 + f64::EPSILON, 0.25, 0.5];
    let scores = (0..n).map(|_| palette[rng.gen_range(0usize..palette.len())]).collect();
    (corpus, scores)
}

/// The same `(corpus, scores)` pair in the model's plain-typed terms.
fn model_rows(corpus: &Corpus, scores: &[f64]) -> Vec<ModelArticle> {
    corpus
        .articles()
        .iter()
        .map(|a| ModelArticle {
            id: a.id.0,
            year: a.year,
            venue: a.venue.0,
            authors: a.authors.iter().map(|u| u.0).collect(),
            score: scores[a.id.index()],
        })
        .collect()
}

fn to_top_query(q: &ModelQuery) -> TopQuery {
    TopQuery {
        k: q.k,
        venue: q.venue,
        author: q.author,
        year_min: q.year_min,
        year_max: q.year_max,
    }
}

fn batch_article(i: usize, refs: Vec<ArticleId>) -> Article {
    Article {
        id: ArticleId(0),
        title: format!("chaos-batch-{i}"),
        year: 2012,
        venue: VenueId(0),
        authors: vec![AuthorId(0)],
        references: refs,
        merit: None,
    }
}

/// A tiny fixed corpus for the reindexer scenarios (cheap to re-rank).
fn small_corpus(seed: u64) -> Corpus {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xc0de);
    let mut b = CorpusBuilder::new();
    b.venue("V0");
    b.author("A0");
    for i in 0..25usize {
        let refs: Vec<ArticleId> = (0..rng.gen_range(0usize..3))
            .map(|_| rng.gen_range(0usize..25))
            .filter(|&r| r < i)
            .map(|r| ArticleId(r as u32))
            .collect();
        b.add_article(
            &format!("s{i}"),
            1990 + (i as i32 % 20),
            VenueId(0),
            vec![AuthorId(0)],
            refs,
            None,
        );
    }
    b.finish().unwrap()
}

// ---------------------------------------------- pillar 2: model checking

#[test]
fn score_index_agrees_with_model_under_adversarial_queries() {
    let _s = Scenario::begin();
    for_seeds("model.query", 64, |_seed, rng| {
        let (corpus, scores) = arb_indexed(rng);
        let n = corpus.num_articles();
        let nv = corpus.num_venues() as u32;
        let na = corpus.num_authors() as u32;
        let years = corpus.year_range().unwrap();
        let index = ScoreIndex::build(Arc::clone(&corpus), scores.clone());
        let model = ModelIndex::new(model_rows(&corpus, &scores));
        for _ in 0..30 {
            let mq = arb_query(rng, n, nv, na, years);
            let got = index.top(&to_top_query(&mq));
            let want = model.top(&mq);
            assert_eq!(got.len(), want.len(), "hit count diverged for {mq:?}");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!((g.rank, g.id.0), (w.rank, w.id), "hit diverged for {mq:?}");
                assert_eq!(g.score.to_bits(), w.score.to_bits(), "score diverged for {mq:?}");
            }
            ModelIndex::assert_well_ordered(&want);
        }
        // `detail` agrees too, including out-of-range ids.
        for _ in 0..8 {
            let id = rng.gen_range(0u32..n as u32 + 3);
            let want = rng.gen_range(0usize..4);
            match (index.detail(ArticleId(id), want), model.detail(id, want)) {
                (None, None) => {}
                (Some(d), Some((rank, pct, neighbors))) => {
                    assert_eq!(d.rank, rank, "rank diverged for article {id}");
                    assert!((d.percentile - pct).abs() < 1e-15);
                    assert_eq!(d.neighbors.len(), neighbors.len());
                    for (g, w) in d.neighbors.iter().zip(&neighbors) {
                        assert_eq!((g.rank, g.id.0), (w.rank, w.id));
                    }
                }
                (got, want) => {
                    panic!("detail presence diverged for article {id}: {got:?} vs {want:?}")
                }
            }
        }
    });
}

#[test]
fn chaos_cases_replay_byte_identically() {
    // The reproduction story end to end: the same seed must produce the
    // same corpus, the same queries, and bit-for-bit the same answers.
    let _s = Scenario::begin();
    let run = |seed: u64| -> Vec<(usize, u32, u64)> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (corpus, scores) = arb_indexed(&mut rng);
        let index = ScoreIndex::build(Arc::clone(&corpus), scores);
        let years = corpus.year_range().unwrap();
        let mut out = Vec::new();
        for _ in 0..20 {
            let mq = arb_query(
                &mut rng,
                corpus.num_articles(),
                corpus.num_venues() as u32,
                corpus.num_authors() as u32,
                years,
            );
            for h in index.top(&to_top_query(&mq)) {
                out.push((h.rank, h.id.0, h.score.to_bits()));
            }
        }
        out
    };
    for seed in [0u64, 17, 0x5eed] {
        assert_eq!(run(seed), run(seed), "seed {seed} did not replay identically");
    }
}

#[test]
fn swap_layer_agrees_with_model_under_seeded_interleavings() {
    let _s = Scenario::begin();
    for_seeds("swap.race", 32, |seed, rng| {
        let (corpus, scores) = arb_indexed(rng);
        let shared =
            Arc::new(SharedIndex::new(ScoreIndex::build(Arc::clone(&corpus), scores.clone())));
        // Stretch the publish critical section so racing publishers pile
        // up on the write lock in seed-dependent orders.
        fp::seeded("swap.publish", seed, FaultMix::delays(0.7, 4));

        const PUBLISHERS: usize = 3;
        const PER_PUBLISHER: u64 = 3;
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let stop = Arc::clone(&stop);
                let model = ModelIndex::new(model_rows(&corpus, &scores));
                std::thread::spawn(move || {
                    let mut observed = Vec::new();
                    while !stop.load(Ordering::SeqCst) {
                        // The counter a reader sees before loading can
                        // never run ahead of what it then loads.
                        let before = shared.generation();
                        let snap = shared.load();
                        assert!(
                            snap.generation() >= before,
                            "generation counter ({before}) ran ahead of the loadable \
                             index ({})",
                            snap.generation()
                        );
                        observed.push(snap.generation());
                        // Every snapshot answers queries like a fresh
                        // model of itself: no torn index is ever visible.
                        let hits = snap.top(&TopQuery { k: 5, ..Default::default() });
                        let want = model.top(&ModelQuery { k: 5, ..Default::default() });
                        assert_eq!(hits.len(), want.len());
                        for (g, w) in hits.iter().zip(&want) {
                            assert_eq!((g.rank, g.id.0), (w.rank, w.id));
                        }
                    }
                    observed
                })
            })
            .collect();

        let publishers: Vec<_> = (0..PUBLISHERS)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let corpus = Arc::clone(&corpus);
                let scores = scores.clone();
                std::thread::spawn(move || {
                    for _ in 0..PER_PUBLISHER {
                        shared.publish(ScoreIndex::build(Arc::clone(&corpus), scores.clone()));
                    }
                })
            })
            .collect();
        for p in publishers {
            p.join().expect("publisher panicked");
        }
        stop.store(true, Ordering::SeqCst);
        for r in readers {
            let observed = r.join().expect("reader panicked");
            assert_monotone_generations(&observed);
        }
        // Exactly one generation per publish, in a contiguous sequence.
        assert_eq!(shared.generation(), 1 + PUBLISHERS as u64 * PER_PUBLISHER);
        assert_eq!(shared.load().generation(), shared.generation());
        fp::clear("swap.publish");
    });
}

// ------------------------------------------------ pillar 3: HTTP chaos

#[test]
fn byte_chaos_keeps_the_pool_live_and_metrics_exact() {
    let _s = Scenario::begin();
    let mut setup = SmallRng::seed_from_u64(0xbeef);
    let (corpus, scores) = arb_indexed(&mut setup);
    let shared = Arc::new(SharedIndex::new(ScoreIndex::build(corpus, scores)));
    let metrics = Arc::new(Metrics::new());
    let config = ServeConfig {
        workers: 3,
        queue_depth: 16,
        read_timeout: Duration::from_millis(300),
        ..Default::default()
    };
    let mut server = serve(shared, Arc::clone(&metrics), &config).expect("bind");
    let addr = server.addr();

    for_seeds("serve.chaos", 48, |seed, rng| {
        // Faults on every serve-side site the harness owns: dropped
        // accepts, slow workers, panicking handlers.
        fp::seeded("serve.accept", seed, FaultMix::errors(0.10));
        fp::seeded("serve.handle", seed ^ 1, FaultMix::delays(0.30, 3));
        fp::seeded("serve.respond", seed ^ 2, FaultMix::panics(0.20));
        for _ in 0..6 {
            let _ = chaos::strike(addr, rng);
        }
        // Well-formed requests while the handler still panics at random:
        // every one must come back whole, as 200 or as a recorded 500.
        fp::clear("serve.accept");
        for _ in 0..4 {
            let (status, body) = chaos::http_get(addr, "/top?k=5");
            assert!(
                status == 200 || status == 500,
                "well-formed request got unexpected status {status}: {body:?}"
            );
        }
        // With all faults off, the full pool must still be standing.
        fp::clear("serve.handle");
        fp::clear("serve.respond");
        chaos::assert_pool_live(addr, config.workers);
    });

    // Quiescent point: every connection above has completed. The
    // accounting must balance to the request — histogram mass equals the
    // request counter, and every request is classified exactly once.
    std::thread::sleep(Duration::from_millis(50));
    let (status, m) = chaos::http_get(addr, "/metrics");
    assert_eq!(status, 200);
    let field = |name: &str| -> i64 {
        m.get(name).and_then(|v| v.as_i64()).unwrap_or_else(|| panic!("missing metric {name}"))
    };
    let requests = field("requests");
    // The /metrics request that produced this snapshot records itself
    // only after rendering, so the snapshot is self-consistent.
    assert!(requests > 0);
    assert_eq!(
        field("ok") + field("client_errors") + field("server_errors"),
        requests,
        "every request must be classified exactly once"
    );
    let hist: i64 = m
        .get("latency")
        .and_then(|l| l.get("histogram"))
        .and_then(|h| h.as_array())
        .expect("histogram array")
        .iter()
        .map(|b| b.get("count").and_then(|c| c.as_i64()).unwrap())
        .sum();
    assert_eq!(hist, requests, "histogram bucket counts must sum to the request counter");
    // Every injected respond-panic was converted into a recorded 500 by
    // the inner catch — none leaked to the outer worker catch, which
    // would count a panic without a response.
    assert_eq!(field("panics"), field("server_errors"), "panic path lost a 500");
    assert_eq!(metrics.in_flight.load(Ordering::SeqCst), 0);
    server.shutdown();
}

/// Torn socket I/O in the event loop's fill/flush paths: an injected
/// read or write error must kill exactly that connection — the client
/// sees a short or absent response, never a corrupt one — and the loop
/// must keep serving with exact accounting afterwards.
#[test]
fn torn_socket_io_closes_the_connection_not_the_server() {
    let _s = Scenario::begin();
    let mut setup = SmallRng::seed_from_u64(0x10f4);
    let (corpus, scores) = arb_indexed(&mut setup);
    let shared = Arc::new(SharedIndex::new(ScoreIndex::build(corpus, scores)));
    let metrics = Arc::new(Metrics::new());
    let config =
        ServeConfig { workers: 2, read_timeout: Duration::from_millis(300), ..Default::default() };
    let mut server = serve(shared, Arc::clone(&metrics), &config).expect("bind");
    let addr = server.addr();
    if server.backend() != Backend::Epoll {
        // The serve.io.* sites instrument the event loop's own
        // read/write paths; the blocking backend goes through std
        // streams directly and has no equivalent seam.
        server.shutdown();
        return;
    }

    for_seeds("serve.io", 16, |seed, rng| {
        fp::seeded("serve.io.read", seed, FaultMix::errors(0.3));
        fp::seeded("serve.io.write", seed ^ 3, FaultMix::errors(0.3));
        for _ in 0..6 {
            use std::io::{Read, Write};
            let mut s = std::net::TcpStream::connect(addr).expect("connect");
            let _ = s.write_all(b"GET /top?k=4 HTTP/1.1\r\nHost: t\r\n\r\n");
            let mut out = Vec::new();
            let _ = s.read_to_end(&mut out); // EOF or RST are both fine
            if !out.is_empty() {
                // Whatever does arrive is a prefix of a real response.
                assert!(
                    out.starts_with(b"HTTP/1.1 "),
                    "torn I/O corrupted the stream: {:?}",
                    String::from_utf8_lossy(&out)
                );
            }
        }
        fp::clear("serve.io.read");
        fp::clear("serve.io.write");
        chaos::assert_pool_live(addr, config.workers);
        let _ = rng; // schedules are driven purely by the seeded sites
    });
    assert!(fp::fired("serve.io.read") + fp::fired("serve.io.write") > 0, "no I/O fault fired");

    // Quiescent invariants survive connection-level carnage: every
    // *recorded* request classified exactly once, nothing in flight, no
    // leaked connection slots.
    std::thread::sleep(Duration::from_millis(50));
    let requests = metrics.requests.load(Ordering::SeqCst);
    let classified = metrics.ok.load(Ordering::SeqCst)
        + metrics.client_errors.load(Ordering::SeqCst)
        + metrics.server_errors.load(Ordering::SeqCst);
    assert_eq!(classified, requests);
    assert_eq!(metrics.in_flight.load(Ordering::SeqCst), 0);
    assert_eq!(metrics.connections_active.load(Ordering::SeqCst), 0);
    server.shutdown();
}

// -------------------------------------------- pillar 1: fault schedules

#[test]
fn loader_fault_schedules_fail_clean_or_load_whole() {
    let _s = Scenario::begin();
    // Baseline: a valid jsonl dump the loader reads happily when no
    // fault fires.
    let mut setup = SmallRng::seed_from_u64(0xfeed);
    let (corpus, _) = arb_indexed(&mut setup);
    let mut jsonl = Vec::new();
    scholar::corpus::loader::jsonl::write_jsonl(&corpus, &mut jsonl).unwrap();
    let opts = scholar::corpus::loader::LoadOptions::default();
    let n = corpus.num_articles();
    let cites = corpus.num_citations();

    let outcomes = std::sync::Mutex::new((0u32, 0u32, 0u32)); // ok, io, parse
    for_seeds("corpus.faults", 48, |seed, rng| {
        let p_io = rng.gen_range(0.0f64..0.02);
        let p_parse = rng.gen_range(0.0f64..0.02);
        fp::seeded("corpus.jsonl.io", seed, FaultMix::errors(p_io));
        fp::seeded("corpus.jsonl.parse", seed ^ 7, FaultMix::errors(p_parse));
        for _ in 0..6 {
            match scholar::corpus::loader::jsonl::read_jsonl(&jsonl[..], &opts) {
                // All-or-nothing: a load that survives the schedule must
                // be the *whole* corpus, never a silent prefix.
                Ok(c) => {
                    assert_eq!(c.num_articles(), n, "partial corpus leaked through");
                    assert_eq!(c.num_citations(), cites);
                    outcomes.lock().unwrap().0 += 1;
                }
                Err(scholar::corpus::CorpusError::Io(e)) => {
                    assert!(e.to_string().contains("corpus.jsonl.io"));
                    outcomes.lock().unwrap().1 += 1;
                }
                Err(scholar::corpus::CorpusError::Parse { line, message }) => {
                    assert!(message.contains("corpus.jsonl.parse"), "unexpected parse: {message}");
                    assert!(line >= 1 && line <= n, "injected parse fault lost its line number");
                    outcomes.lock().unwrap().2 += 1;
                }
                Err(other) => panic!("unexpected error shape: {other}"),
            }
        }
        fp::clear("corpus.jsonl.io");
        fp::clear("corpus.jsonl.parse");
    });
    let (ok, io, parse) = *outcomes.lock().unwrap();
    assert!(ok > 0, "no schedule let a load through");
    assert!(io > 0, "no schedule exercised the I/O fault");
    assert!(parse > 0, "no schedule exercised the parse fault");
}

#[test]
fn aan_and_mag_fault_sites_surface_as_parse_errors() {
    let _s = Scenario::begin();
    let opts = scholar::corpus::loader::LoadOptions::default();
    fp::set("corpus.aan.parse", Action::Trigger);
    let err = scholar::corpus::loader::aan::read_aan(
        "id\tA paper\t2001\n".as_bytes(),
        "".as_bytes(),
        &opts,
    )
    .unwrap_err();
    assert!(err.to_string().contains("corpus.aan.parse"), "{err}");
    fp::clear("corpus.aan.parse");

    fp::set("corpus.mag.parse", Action::Trigger);
    let err = scholar::corpus::loader::mag::read_mag(
        "1\t2001\tV\tT\n".as_bytes(),
        "".as_bytes(),
        "".as_bytes(),
        &opts,
    )
    .unwrap_err();
    assert!(err.to_string().contains("corpus.mag.parse"), "{err}");
}

// --------------------------------------- PR 3 regression scenarios

#[test]
fn regression_inverted_year_range_is_rejected_not_fatal() {
    // The remotely-triggerable merge_years panic from PR 3: the server
    // must answer 400 and keep every worker.
    let _s = Scenario::begin();
    let mut setup = SmallRng::seed_from_u64(0x1237);
    let (corpus, scores) = arb_indexed(&mut setup);
    let shared = Arc::new(SharedIndex::new(ScoreIndex::build(corpus, scores)));
    let config = ServeConfig { workers: 2, ..Default::default() };
    let mut server = serve(shared, Arc::new(Metrics::new()), &config).expect("bind");
    let (status, body) = chaos::http_get(server.addr(), "/top?year_min=2010&year_max=1990");
    assert_eq!(status, 400);
    assert!(body.get("message").unwrap().as_str().unwrap().contains("inverted"));
    chaos::assert_pool_live(server.addr(), config.workers);
    server.shutdown();
}

#[test]
fn regression_panic_storm_does_not_drain_the_pool() {
    // PR 3's pool-drain review finding, now driven through the failpoint
    // registry instead of a hand-rolled poisoned index: a burst of
    // handler panics must not kill a single worker, and each panic must
    // surface as a counted 500.
    let _s = Scenario::begin();
    let mut setup = SmallRng::seed_from_u64(0x900d);
    let (corpus, scores) = arb_indexed(&mut setup);
    let shared = Arc::new(SharedIndex::new(ScoreIndex::build(corpus, scores)));
    let metrics = Arc::new(Metrics::new());
    let config = ServeConfig { workers: 2, ..Default::default() };
    let mut server = serve(shared, Arc::clone(&metrics), &config).expect("bind");
    let addr = server.addr();

    for_seeds("serve.drain", 8, |seed, rng| {
        let storm = rng.gen_range(1usize..5);
        let before = metrics.panics.load(Ordering::SeqCst);
        fp::script("serve.respond", vec![Action::Panic; storm]);
        for i in 0..storm {
            let (status, body) = chaos::http_get(addr, "/top?k=3");
            assert_eq!(status, 500, "storm request {i} (seed {seed}) was not a clean 500");
            assert!(body.get("message").is_some());
        }
        fp::clear("serve.respond");
        chaos::assert_pool_live(addr, config.workers);
        assert_eq!(
            metrics.panics.load(Ordering::SeqCst),
            before + storm as u64,
            "every injected panic must be counted"
        );
    });
    assert_eq!(
        metrics.server_errors.load(Ordering::SeqCst),
        metrics.panics.load(Ordering::SeqCst),
        "every caught panic must have produced a recorded 500"
    );
    server.shutdown();
}

#[test]
fn regression_mid_coalesce_shutdown_still_publishes() {
    // PR 3's finish-the-batch guarantee, made deterministic: a delay at
    // the coalesce site guarantees the Stop lands while a batch is in
    // hand, for every seed, instead of relying on thread timing.
    let _s = Scenario::begin();
    for_seeds("swap.stop", 16, |_seed, rng| {
        fp::set("reindex.coalesce", Action::DelayMs(rng.gen_range(5u64..40)));
        let corpus = small_corpus(rng.next_u64());
        let n0 = corpus.num_articles();
        let (shared, reindexer) = Reindexer::start(QRankConfig::default(), corpus, |_| {});
        let batches = rng.gen_range(1usize..3);
        for i in 0..batches {
            reindexer.submit(vec![batch_article(i, vec![ArticleId(i as u32)])]).unwrap();
        }
        let ranker = reindexer.shutdown();
        assert_eq!(
            ranker.corpus().num_articles(),
            n0 + batches,
            "an accepted batch was dropped on shutdown"
        );
        let idx = shared.load();
        assert_eq!(idx.num_articles(), n0 + batches);
        assert!(idx.generation() >= 2, "the batch in hand was never published");
        fp::clear("reindex.coalesce");
    });
}

#[test]
fn reindexer_death_leaves_the_published_index_serving() {
    // A fault inside the incremental solve kills the reindex thread, not
    // the serving path: queries keep answering from the last published
    // generation, and the failure surfaces on join, not silently.
    let _s = Scenario::begin();
    fp::script("incremental.extend", vec![Action::Panic]);
    let corpus = small_corpus(1);
    let n0 = corpus.num_articles();
    let (shared, reindexer) = Reindexer::start(QRankConfig::default(), corpus, |_| {});
    reindexer.submit(vec![batch_article(0, vec![ArticleId(0)])]).unwrap();

    // Wait for the injected death, bounded.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while fp::fired("incremental.extend") == 0 {
        assert!(std::time::Instant::now() < deadline, "extend site never hit");
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(20));
    // Readers still get the old generation, whole and consistent.
    let snap = shared.load();
    assert_eq!(snap.generation(), 1);
    assert_eq!(snap.num_articles(), n0);
    assert_eq!(snap.top(&TopQuery { k: 5, ..Default::default() }).len(), 5);
    // Submitting into the dead reindexer must NOT panic the caller (the
    // control plane): it reports the dead thread as a typed error.
    // Regression for the old `expect("reindexer thread is alive")`.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        match reindexer.submit(vec![batch_article(1, vec![ArticleId(1)])]) {
            Err(scholar::serve::SubmitError::ThreadDead { journaled }) => {
                assert!(!journaled, "no state dir was configured");
                break;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
            // The channel closes when the unwinding thread drops the
            // receiver; a submit racing ahead of the unwind can still
            // win. Retry until the death is observable.
            Ok(()) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "submit never observed the dead reindexer"
                );
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
    // The death is loud at shutdown, not swallowed.
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| reindexer.shutdown()))
        .expect_err("a dead reindexer must fail the join");
    let msg = err
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| err.downcast_ref::<&str>().copied())
        .unwrap_or("");
    assert!(msg.contains("reindexer thread panicked"), "unexpected panic payload: {msg}");
}

#[test]
fn reindex_publish_delay_never_tears_a_reader() {
    // Delay between solve and publish (the widest reader-visible window):
    // readers must see only complete generations throughout.
    let _s = Scenario::begin();
    fp::set("reindex.publish", Action::DelayMs(15));
    let corpus = small_corpus(2);
    let n0 = corpus.num_articles();
    let (shared, reindexer) = Reindexer::start(QRankConfig::default(), corpus, |_| {});
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let reader = {
        let shared = Arc::clone(&shared);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut observed = Vec::new();
            while !stop.load(Ordering::SeqCst) {
                let snap = shared.load();
                observed.push(snap.generation());
                // A snapshot's article count must match its generation:
                // gen 1 has the base corpus, anything later has grown.
                if snap.generation() == 1 {
                    assert_eq!(snap.num_articles(), n0);
                } else {
                    assert!(snap.num_articles() > n0);
                }
            }
            observed
        })
    };
    for i in 0..2 {
        reindexer.submit(vec![batch_article(i, vec![ArticleId(i as u32)])]).unwrap();
    }
    reindexer.shutdown();
    stop.store(true, Ordering::SeqCst);
    assert_monotone_generations(&reader.join().expect("reader panicked"));
    assert!(shared.load().num_articles() > n0);
}

// ------------------------------------- pillar 1b: colstore write chaos

/// A small fixed corpus for the colstore kill-during-write sweep (few
/// enough I/O steps that the sweep can cover every one of them,
/// including the per-file renames and the final meta commit).
fn colstore_corpus() -> Corpus {
    let mut b = CorpusBuilder::new();
    let v0 = b.venue("V0");
    let v1 = b.venue("V1");
    let u0 = b.author("U0");
    let u1 = b.author("U1");
    let a0 = b.add_article("a0", 1999, v0, vec![u0], vec![], None);
    let a1 = b.add_article("a1", 2004, v1, vec![u0, u1], vec![a0], None);
    b.add_article("a2", 2010, v0, vec![u1], vec![a0, a1], None);
    b.finish().expect("fixed corpus must build")
}

/// Kill a colstore build at *every* I/O step in turn (create, column
/// writes, seals, per-file renames, meta commit). The contract is
/// all-or-nothing: a killed write must never leave an openable store,
/// and a disarmed retry into the same directory must publish the full
/// store with the identical content-derived generation.
#[test]
fn colstore_kill_during_write_is_all_or_nothing() {
    let _s = Scenario::begin();
    let corpus = colstore_corpus();
    let base = std::env::temp_dir().join(format!("scholar-chaos-colstore-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let clean = base.join("clean");
    let generation = corpus.write_colstore(&clean).expect("fault-free write");

    let mut steps = 0usize;
    loop {
        let dir = base.join(format!("kill-{steps}"));
        let mut script = vec![Action::Off; steps];
        script.push(Action::Trigger);
        fp::script("corpus.colstore.io", script);
        let res = corpus.write_colstore(&dir);
        fp::clear("corpus.colstore.io");
        match res {
            Err(e) => {
                assert!(e.to_string().contains("corpus.colstore.io"), "{e}");
                assert!(
                    scholar::corpus::colstore::ColStore::open(&dir).is_err(),
                    "write killed at I/O step {steps} left an openable store"
                );
                // Disarmed retry into the same directory heals fully.
                let regen = corpus.write_colstore(&dir).expect("disarmed retry");
                assert_eq!(regen, generation, "retry must stamp the identical generation");
                let store = scholar::corpus::colstore::ColStore::open(&dir).unwrap();
                store.verify().unwrap();
                assert_eq!(store.num_articles(), corpus.num_articles());
            }
            // The trigger landed past the last I/O step: the write ran
            // fault-free, so the sweep has covered every step. Done.
            Ok(regen) => {
                assert_eq!(regen, generation);
                break;
            }
        }
        steps += 1;
    }
    // 6 column creates + per-article writes + 7 seals + 7 renames must
    // all have been individually killed; a tiny count means the sweep
    // silently stopped short of the publish phase.
    assert!(steps > 20, "sweep covered only {steps} I/O steps");
    std::fs::remove_dir_all(&base).unwrap();
}

// --------------------- pillar 1c: durable-state kill-and-recover chaos
//
// The crash-safety contract of DESIGN.md §2.11, swept at every injected
// I/O step of the snapshot and journal paths: a kill at any point must
// be all-or-nothing on disk, and a disarmed restart must serve exactly
// the batches `submit` acknowledged — bit for bit against the
// deterministic pipeline rebuild, never merely "close".

/// Fold `batches` through the pipeline the journal is a log of (cold
/// rank of the base, one extend per batch). A correct recovery serves
/// exactly these bit patterns.
fn oracle_scores(corpus: &Corpus, batches: &[Vec<Article>]) -> Vec<f64> {
    let mut ranker = IncrementalRanker::new(QRankConfig::default(), corpus.clone());
    for b in batches {
        let grown = grow_corpus(ranker.corpus(), b.clone());
        ranker.extend(grown);
    }
    ranker.result().article_scores.clone()
}

fn assert_serves_exactly(shared: &SharedIndex, want: &[f64]) {
    let snap = shared.load();
    assert_eq!(snap.num_articles(), want.len(), "recovered corpus has the wrong article count");
    for (i, w) in want.iter().enumerate() {
        assert_eq!(
            snap.scores()[i].to_bits(),
            w.to_bits(),
            "recovered score {i} diverged from the pipeline rebuild"
        );
    }
}

fn durable_dir(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("scholar-chaos-durable-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn one_batch(i: usize) -> Vec<Article> {
    vec![batch_article(i, vec![ArticleId(i as u32)])]
}

fn await_published(reindexer: &Reindexer, n: u64) {
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while reindexer.batches_published() < n {
        assert!(std::time::Instant::now() < deadline, "publish of batch {n} never landed");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Kill a cold durable start at every `snapshot.io` step in turn. A
/// killed start must fail loudly, leaving neither a published snapshot
/// nor tmp debris, and a disarmed retry into the same directory must
/// come up serving the exact cold-rank scores.
#[test]
fn cold_start_kill_sweep_never_publishes_a_torn_snapshot() {
    let _s = Scenario::begin();
    let corpus = small_corpus(11);
    let want = oracle_scores(&corpus, &[]);
    let base = durable_dir("cold");
    let mut steps = 0usize;
    loop {
        let dir = base.join(format!("kill-{steps}"));
        let mut script = vec![Action::Off; steps];
        script.push(Action::Trigger);
        fp::script("snapshot.io", script);
        let res = Reindexer::start_durable(
            QRankConfig::default(),
            corpus.clone(),
            DurableOptions::new(&dir),
            |_| {},
        );
        fp::clear("snapshot.io");
        match res {
            Err(e) => {
                assert!(e.to_string().contains("snapshot.io"), "{e}");
                assert!(
                    !scholar::serve::snapshot::snapshot_path(&dir).exists(),
                    "kill at I/O step {steps} left a published snapshot"
                );
                assert!(
                    !dir.join("snapshot.snap.tmp").exists(),
                    "kill at I/O step {steps} leaked the tmp file"
                );
                let (shared, reindexer, report) = Reindexer::start_durable(
                    QRankConfig::default(),
                    corpus.clone(),
                    DurableOptions::new(&dir),
                    |_| {},
                )
                .expect("disarmed retry");
                assert!(!report.restored_from_snapshot, "a killed start left restorable state");
                assert_serves_exactly(&shared, &want);
                reindexer.shutdown();
            }
            // Trigger landed past the last I/O step: the start ran
            // fault-free, so every step has been individually killed.
            Ok((shared, reindexer, report)) => {
                assert!(!report.restored_from_snapshot);
                assert_serves_exactly(&shared, &want);
                reindexer.shutdown();
                break;
            }
        }
        steps += 1;
    }
    assert!(steps >= 6, "sweep covered only {steps} snapshot I/O steps");
    std::fs::remove_dir_all(&base).unwrap();
}

/// Kill the journal at every `wal.append` I/O step across a run of
/// submits. A faulted submit must not acknowledge; every acknowledged
/// submit must survive restart — `replayed_batches` equals the acked
/// count exactly (no lost batch, no invented batch, no torn tail) and
/// the recovered scores match the pipeline rebuild of the acked batches.
#[test]
fn wal_append_kill_sweep_loses_no_acknowledged_batch() {
    let _s = Scenario::begin();
    let corpus = small_corpus(12);
    let all: Vec<Vec<Article>> = (0..4).map(one_batch).collect();
    let base = durable_dir("append");
    let mut steps = 0usize;
    let mut faulted_runs = 0usize;
    loop {
        let dir = base.join(format!("kill-{steps}"));
        let (_shared, reindexer, _report) = Reindexer::start_durable(
            QRankConfig::default(),
            corpus.clone(),
            DurableOptions::new(&dir),
            |_| {},
        )
        .expect("fault-free cold start");
        let mut script = vec![Action::Off; steps];
        script.push(Action::Trigger);
        fp::script("wal.append", script);
        let mut acked = Vec::new();
        let mut faulted = false;
        for (i, b) in all.iter().enumerate() {
            match reindexer.submit(b.clone()) {
                Ok(()) => acked.push(i),
                Err(scholar::serve::SubmitError::Journal(e)) => {
                    assert!(e.to_string().contains("wal.append"), "{e}");
                    faulted = true;
                }
                Err(other) => panic!("unexpected submit error: {other}"),
            }
        }
        fp::clear("wal.append");
        await_published(&reindexer, acked.len() as u64);
        reindexer.shutdown();

        let (shared, r2, report) = Reindexer::start_durable(
            QRankConfig::default(),
            corpus.clone(),
            DurableOptions::new(&dir),
            |_| {},
        )
        .expect("restart after journal faults");
        assert!(report.restored_from_snapshot);
        assert_eq!(
            report.replayed_batches,
            acked.len(),
            "journal lost or invented an acknowledged batch (kill at step {steps})"
        );
        assert!(!report.torn_tail, "failed-append rollback left a torn tail (step {steps})");
        let want: Vec<Vec<Article>> = acked.iter().map(|&i| all[i].clone()).collect();
        assert_serves_exactly(&shared, &oracle_scores(&corpus, &want));
        r2.shutdown();
        if !faulted {
            break;
        }
        faulted_runs += 1;
        steps += 1;
    }
    // 4 submits × 2 journal I/O steps each: every one individually killed.
    assert_eq!(faulted_runs, 8, "sweep coverage changed — update the floor");
    std::fs::remove_dir_all(&base).unwrap();
}

/// Kill a *restart* at every I/O step of every durable-state site. A
/// killed restart must fail cleanly (never serve state of unknown
/// provenance), leave the on-disk state restorable, and a disarmed retry
/// must serve every journaled batch bit-identically.
#[test]
fn restart_kill_sweep_fails_clean_and_recovers_disarmed() {
    let _s = Scenario::begin();
    let corpus = small_corpus(13);
    let all: Vec<Vec<Article>> = (0..3).map(one_batch).collect();
    let want = oracle_scores(&corpus, &all);
    let base = durable_dir("restart");
    let pristine = base.join("pristine");
    {
        let (_shared, reindexer, _report) = Reindexer::start_durable(
            QRankConfig::default(),
            corpus.clone(),
            DurableOptions::new(&pristine),
            |_| {},
        )
        .expect("seed run");
        for b in &all {
            reindexer.submit(b.clone()).expect("seed submit");
        }
        await_published(&reindexer, all.len() as u64);
        reindexer.shutdown();
    }

    let mut total_kills = 0usize;
    for site in ["snapshot.io", "wal.replay", "wal.append"] {
        let mut steps = 0usize;
        loop {
            let dir = base.join(format!("{site}-{steps}"));
            std::fs::create_dir_all(&dir).unwrap();
            for f in ["snapshot.snap", "wal.log"] {
                std::fs::copy(pristine.join(f), dir.join(f)).unwrap();
            }
            let mut script = vec![Action::Off; steps];
            script.push(Action::Trigger);
            fp::script(site, script);
            let res = Reindexer::start_durable(
                QRankConfig::default(),
                corpus.clone(),
                DurableOptions::new(&dir),
                |_| {},
            );
            fp::clear(site);
            match res {
                Err(e) => {
                    assert!(
                        e.to_string().contains(site),
                        "kill at {site} step {steps} surfaced the wrong error: {e}"
                    );
                    total_kills += 1;
                    // Whatever the kill interrupted (load, re-snapshot,
                    // journal rotation), the state on disk must still
                    // restore completely once the fault clears.
                    let (shared, r2, report) = Reindexer::start_durable(
                        QRankConfig::default(),
                        corpus.clone(),
                        DurableOptions::new(&dir),
                        |_| {},
                    )
                    .expect("disarmed retry");
                    assert!(report.restored_from_snapshot, "retry after {site} kill re-ranked");
                    assert_serves_exactly(&shared, &want);
                    r2.shutdown();
                }
                Ok((shared, r2, report)) => {
                    assert!(report.restored_from_snapshot);
                    assert_eq!(report.replayed_batches, all.len());
                    assert!(!report.torn_tail);
                    assert_serves_exactly(&shared, &want);
                    r2.shutdown();
                    break;
                }
            }
            steps += 1;
        }
    }
    assert!(total_kills >= 10, "sweep covered only {total_kills} restart I/O steps");
    std::fs::remove_dir_all(&base).unwrap();
}

/// A failing background snapshot must degrade restart *speed*, never
/// durability or serving: publishes keep landing while every snapshot
/// attempt dies, and a later restart replays every journaled batch.
#[test]
fn snapshot_publish_failure_keeps_serving_and_durability() {
    let _s = Scenario::begin();
    let corpus = small_corpus(14);
    let dir = durable_dir("degrade");
    let mut opts = DurableOptions::new(&dir);
    opts.snapshot_every = 1;
    let (shared, reindexer, _report) =
        Reindexer::start_durable(QRankConfig::default(), corpus.clone(), opts, |_| {})
            .expect("cold start");
    // Every snapshot-on-publish attempt from here on dies.
    fp::set("snapshot.io", Action::Trigger);
    let all: Vec<Vec<Article>> = (0..2).map(one_batch).collect();
    for b in &all {
        reindexer.submit(b.clone()).expect("submit must not depend on snapshots");
    }
    await_published(&reindexer, all.len() as u64);
    assert!(shared.load().generation() >= 2, "publishes stopped with the snapshot path down");
    // Keep the fault armed through shutdown: the final snapshot attempt
    // must fail too, so the restart below really exercises full replay.
    reindexer.shutdown();
    assert!(fp::fired("snapshot.io") > 0, "no snapshot attempt ever ran");
    fp::clear("snapshot.io");

    let (shared2, r2, report) = Reindexer::start_durable(
        QRankConfig::default(),
        corpus.clone(),
        DurableOptions::new(&dir),
        |_| {},
    )
    .expect("restart");
    assert!(report.restored_from_snapshot);
    assert_eq!(report.replayed_batches, all.len(), "a failed snapshot cost a journaled batch");
    assert_serves_exactly(&shared2, &oracle_scores(&corpus, &all));
    r2.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// An unmappable column file must fail `ColStore::open` with a clean
/// `Corrupt` error (never a panic or a half-open store), and the same
/// directory must open fine once the fault clears.
#[test]
fn colstore_map_fault_fails_open_cleanly() {
    let _s = Scenario::begin();
    let corpus = colstore_corpus();
    let dir = std::env::temp_dir().join(format!("scholar-chaos-map-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    corpus.write_colstore(&dir).expect("fault-free write");

    fp::set("corpus.colstore.map", Action::Trigger);
    let err = match scholar::corpus::colstore::ColStore::open(&dir) {
        Ok(_) => panic!("open must fail while the map fault is armed"),
        Err(e) => e,
    };
    assert!(err.to_string().contains("injected map failure"), "{err}");
    fp::clear("corpus.colstore.map");

    let store = scholar::corpus::colstore::ColStore::open(&dir).expect("fault cleared");
    store.verify().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

// ------------------------------------- pillar 1b: record/shadow chaos

fn chaos_record(seq: u64) -> ReqRecord {
    ReqRecord {
        conn: 1,
        seq,
        generation: 1,
        status: 200,
        latency_us: 100 + seq,
        target: format!("/top?k={}", 1 + seq),
    }
}

/// `replay.record.io` kill sweep: the RLOGv1 flush dies at each of its
/// I/O steps (tmp create, write+fsync, rename) in turn. The published
/// file is all-or-nothing — it keeps decoding as the *previous* complete
/// log — the recorder degrades itself loudly, and the live serving path
/// neither blocks nor loses a single request.
#[test]
fn record_flush_kill_sweep_degrades_recording_never_serving() {
    let _s = Scenario::begin();
    let path = std::env::temp_dir().join(format!("scholar-chaos-rlog-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // Publish one complete log fault-free; every faulty re-flush below
    // must leave exactly this on disk.
    let first = Recorder::new(&path, 1, 64);
    assert!(first.record(chaos_record(0)));
    first.flush().expect("fault-free flush");
    let want = read_rlog(&path).expect("baseline log").records;
    assert_eq!(want.len(), 1);

    for step in 0..3usize {
        let r = Recorder::new(&path, 1, 64);
        for seq in 0..4 {
            assert!(r.record(chaos_record(seq)));
        }
        let mut script = vec![Action::Off; step];
        script.push(Action::Trigger);
        fp::script("replay.record.io", script);
        let err = r.flush().expect_err("armed flush must fail");
        assert!(matches!(err, StateError::Io(_)), "step {step}: {err}");
        assert!(r.degraded(), "step {step}: failed flush must degrade the recorder");
        // Degraded recording is a cheap no-op, not an error storm.
        assert!(!r.record(chaos_record(99)), "degraded recorder must stop sampling");
        fp::clear("replay.record.io");
        let log = read_rlog(&path).expect("step {step}: the published log must survive");
        assert!(!log.torn_tail, "step {step}: tmp-then-rename published a tear");
        assert_eq!(log.records, want, "step {step}: a dead flush mutated the published log");
    }

    // Live path: a server whose recorder's disk is dead keeps serving.
    let corpus = Arc::new(small_corpus(55));
    let scores = IncrementalRanker::new(QRankConfig::default(), corpus.as_ref().clone())
        .result()
        .article_scores
        .clone();
    let recorder = Arc::new(Recorder::new(&path, 1, 64));
    let shared = Arc::new(SharedIndex::new(ScoreIndex::build(Arc::clone(&corpus), scores.clone())));
    let metrics = Arc::new(Metrics::new());
    let config =
        ServeConfig { workers: 2, recorder: Some(Arc::clone(&recorder)), ..Default::default() };
    let mut server = serve(Arc::clone(&shared), Arc::clone(&metrics), &config).expect("bind");
    let addr = server.addr();

    for _ in 0..6 {
        let (status, _) = chaos::http_get(addr, "/top?k=5");
        assert_eq!(status, 200);
    }
    fp::set("replay.record.io", Action::Trigger);
    recorder.flush().expect_err("armed flush must fail");
    assert!(recorder.degraded());
    fp::clear("replay.record.io");
    // Recording is down; serving must not notice.
    for _ in 0..6 {
        let (status, _) = chaos::http_get(addr, "/top?k=5");
        assert_eq!(status, 200, "a degraded recorder leaked into the live path");
    }
    chaos::assert_pool_live(addr, config.workers);
    let (status, m) = chaos::http_get(addr, "/metrics");
    assert_eq!(status, 200);
    let field = |name: &str| m.get(name).and_then(|v| v.as_i64()).unwrap();
    assert_eq!(
        field("ok") + field("client_errors") + field("server_errors"),
        field("requests"),
        "request accounting drifted while recording was degraded"
    );
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// `shadow.mirror` faults: a candidate that *panics* answering a mirror
/// poisons the slot — auto-rejected, loud report, live response already
/// sent and untouched. A mirror that merely *errors* is counted and
/// skipped: enough clean mirrors afterwards still promote the candidate.
#[test]
fn shadow_mirror_faults_poison_or_degrade_never_touch_live() {
    let _s = Scenario::begin();
    let corpus = Arc::new(small_corpus(77));
    let scores = IncrementalRanker::new(QRankConfig::default(), corpus.as_ref().clone())
        .result()
        .article_scores
        .clone();
    let shared = Arc::new(SharedIndex::new(ScoreIndex::build(Arc::clone(&corpus), scores.clone())));
    let metrics = Arc::new(Metrics::new());
    let config = ServeConfig { workers: 2, ..Default::default() };
    let mut server = serve(Arc::clone(&shared), Arc::clone(&metrics), &config).expect("bind");
    let addr = server.addr();
    let thresholds = ShadowThresholds { min_mirrored: 8, ..Default::default() };
    let deadline = || std::time::Instant::now() + Duration::from_secs(30);

    // Phase 1: the very first mirror panics inside the candidate.
    shared.stage_shadow(ScoreIndex::build(Arc::clone(&corpus), scores.clone()), thresholds.clone());
    fp::script("shadow.mirror", vec![Action::Panic]);
    let (status, _) = chaos::http_get(addr, "/top?k=5");
    assert_eq!(status, 200, "the request carrying the poisoned mirror must still answer");
    // The mirror runs after the response is written; wait out the race.
    let end = deadline();
    let report = loop {
        let report = shared.shadow_report().expect("slot must stay up to explain itself");
        if report.decision != Decision::Pending {
            break report;
        }
        assert!(std::time::Instant::now() < end, "poisoned slot never auto-rejected");
        std::thread::sleep(Duration::from_millis(2));
    };
    fp::clear("shadow.mirror");
    assert!(report.poisoned);
    assert_eq!(report.decision, Decision::Rejected);
    assert_eq!(shared.generation(), 1, "a poisoned candidate must never publish");
    let (status, body) = chaos::http_get(addr, "/shadow");
    assert_eq!(status, 200);
    assert_eq!(body.get("decision").and_then(|v| v.as_str()), Some("rejected"));
    assert!(
        !body.get("failures").and_then(|f| f.as_array()).expect("failures").is_empty(),
        "a poisoned rejection must name its reason"
    );

    // Phase 2: three injected mirror *errors* (no panic), then clean
    // mirrors. Errors degrade the evidence stream, they do not kill the
    // candidate: it still reaches min_mirrored and promotes.
    shared.stage_shadow(ScoreIndex::build(Arc::clone(&corpus), scores.clone()), thresholds);
    fp::script("shadow.mirror", vec![Action::Trigger; 3]);
    for i in 0..11 {
        let (status, _) = chaos::http_get(addr, "/top?k=5");
        assert_eq!(status, 200, "request {i} failed while mirrors were erroring");
    }
    let end = deadline();
    while shared.generation() < 2 {
        assert!(std::time::Instant::now() < end, "candidate never promoted past mirror errors");
        std::thread::sleep(Duration::from_millis(2));
    }
    fp::clear("shadow.mirror");
    let report = shared.shadow_report().expect("report stays up after promotion");
    assert_eq!(report.decision, Decision::Promoted);
    assert_eq!(report.mirror_errors, 3, "each injected fault must be counted exactly once");
    assert_eq!(report.mirrored, 8);

    chaos::assert_pool_live(addr, config.workers);
    // Accounting stayed exact through poison, errors, and promotion —
    // including the per-generation breakdown.
    let (status, m) = chaos::http_get(addr, "/metrics");
    assert_eq!(status, 200);
    let field = |v: &sjson::Value, name: &str| v.get(name).and_then(|x| x.as_i64()).unwrap();
    let requests = field(&m, "requests");
    assert_eq!(field(&m, "ok") + field(&m, "client_errors") + field(&m, "server_errors"), requests);
    let gens = m.get("generations").and_then(|g| g.as_array()).expect("generations");
    let by_gen: i64 = gens.iter().map(|g| field(g, "requests")).sum();
    assert_eq!(by_gen, requests, "generation breakdown must sum to the request counter");
    server.shutdown();
}
