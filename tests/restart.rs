//! Restart-equivalence conformance for the crash-safe serving state
//! (DESIGN.md §2.11).
//!
//! A server restored from `snapshot.snap` + `wal.log` replay must be
//! indistinguishable over HTTP from a server built by the deterministic
//! pipeline rebuild — a cold rank of the base corpus followed by one
//! `extend` per journaled batch, which is exactly the arithmetic the
//! original process performed. "Indistinguishable" here is literal:
//! byte-identical response bytes for `/top` and `/article/{id}`,
//! including the bit patterns of every serialized score.

use scholar::core::incremental::{grow_corpus, IncrementalRanker};
use scholar::corpus::model::{Article, ArticleId, AuthorId, VenueId};
use scholar::corpus::Preset;
use scholar::serve::{
    serve, Backend, DurableOptions, Metrics, Reindexer, ScoreIndex, ServeConfig, SharedIndex,
};
use scholar::QRankConfig;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn state_dir(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("scholar-restart-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// A submit batch citing already-ranked articles (the growth contract).
fn batch(tag: u32) -> Vec<Article> {
    (0..2)
        .map(|j| Article {
            id: ArticleId(0),
            title: format!("restart-batch-{tag}-{j}"),
            year: 2013 + tag as i32,
            venue: VenueId(0),
            authors: vec![AuthorId(0)],
            references: vec![ArticleId(tag * 2 + j)],
            merit: None,
        })
        .collect()
}

/// One whole HTTP exchange, raw bytes out.
fn http_get(addr: SocketAddr, target: &str) -> Vec<u8> {
    let mut s = TcpStream::connect(addr).expect("connect");
    write!(s, "GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").expect("send");
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).expect("read response");
    buf
}

fn config() -> ServeConfig {
    ServeConfig { workers: 2, backend: Backend::Auto, ..Default::default() }
}

#[test]
fn restarted_server_is_byte_identical_to_a_cold_pipeline_rebuild() {
    let dir = state_dir("conformance");
    let qconfig = QRankConfig::default();
    let base = Preset::Tiny.generate(7);
    let batches: Vec<Vec<Article>> = (0..3).map(batch).collect();

    // First life of the server: cold durable start, accept every batch
    // (waiting out each publish so every batch is its own extend, like
    // a low-traffic production trickle), then go down.
    {
        let (_shared, reindexer, report) = Reindexer::start_durable(
            qconfig.clone(),
            base.clone(),
            DurableOptions::new(&dir),
            |_| {},
        )
        .expect("cold durable start");
        assert!(!report.restored_from_snapshot);
        for (i, b) in batches.iter().enumerate() {
            reindexer.submit(b.clone()).expect("submit");
            let deadline = Instant::now() + Duration::from_secs(30);
            while reindexer.batches_published() < (i + 1) as u64 {
                assert!(Instant::now() < deadline, "publish {i} never landed");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        reindexer.shutdown();
    }

    // Second life: restore from disk.
    let (restored, reindexer, report) =
        Reindexer::start_durable(qconfig.clone(), base.clone(), DurableOptions::new(&dir), |_| {})
            .expect("restart from state dir");
    assert!(report.restored_from_snapshot, "restart must not re-rank");
    assert_eq!(report.replayed_batches, batches.len());

    // The oracle: rank the base cold and fold each accepted batch as its
    // own extend — the canonical pipeline the journal is a log of. Serve
    // it at the same generation (1) every fresh `SharedIndex` starts at.
    let mut oracle = IncrementalRanker::new(qconfig, base);
    for b in &batches {
        let grown = grow_corpus(oracle.corpus(), b.clone());
        oracle.extend(grown);
    }
    let oracle_shared = Arc::new(SharedIndex::new(ScoreIndex::build(
        Arc::new(oracle.corpus().clone()),
        oracle.result().article_scores.clone(),
    )));

    let restored_srv =
        serve(Arc::clone(&restored), Arc::new(Metrics::new()), &config()).expect("bind restored");
    let oracle_srv =
        serve(oracle_shared, Arc::new(Metrics::new()), &config()).expect("bind oracle");

    let n = restored.load().num_articles();
    let mut targets = vec![
        "/top?k=10".to_string(),
        format!("/top?k={n}"),
        "/top?k=5&year_min=2000".to_string(),
        "/top?k=7&year_max=2013".to_string(),
        "/top?k=0".to_string(),
    ];
    // Every article detail, plus ids past the corpus (404 parity).
    for id in 0..n as u32 + 2 {
        targets.push(format!("/article/{id}"));
    }
    for target in &targets {
        let got = http_get(restored_srv.addr(), target);
        let want = http_get(oracle_srv.addr(), target);
        assert!(
            got == want,
            "restarted response diverged from the pipeline rebuild for {target}:\n \
             restored: {:?}\n rebuilt:  {:?}",
            String::from_utf8_lossy(&got),
            String::from_utf8_lossy(&want)
        );
    }

    drop(restored_srv);
    drop(oracle_srv);
    reindexer.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_third_life_replays_nothing_and_still_serves_identically() {
    // Restart-of-a-restart: the second restore re-snapshots at the
    // journal high-water mark, so a third start finds a snapshot already
    // covering everything and an empty (rotated) journal.
    let dir = state_dir("third-life");
    let qconfig = QRankConfig::default();
    let base = Preset::Tiny.generate(9);

    let first =
        Reindexer::start_durable(qconfig.clone(), base.clone(), DurableOptions::new(&dir), |_| {})
            .expect("cold start");
    first.1.submit(batch(0)).expect("submit");
    let deadline = Instant::now() + Duration::from_secs(30);
    while first.1.batches_published() < 1 {
        assert!(Instant::now() < deadline, "publish never landed");
        std::thread::sleep(Duration::from_millis(2));
    }
    first.1.shutdown();

    let second =
        Reindexer::start_durable(qconfig.clone(), base.clone(), DurableOptions::new(&dir), |_| {})
            .expect("second start");
    assert_eq!(second.2.replayed_batches, 1);
    let second_top = {
        let srv = serve(Arc::clone(&second.0), Arc::new(Metrics::new()), &config()).unwrap();
        http_get(srv.addr(), "/top?k=20")
    };
    second.1.shutdown();

    let third = Reindexer::start_durable(qconfig, base, DurableOptions::new(&dir), |_| {})
        .expect("third start");
    assert!(third.2.restored_from_snapshot);
    assert_eq!(third.2.replayed_batches, 0, "second restore must have re-snapshotted");
    let third_top = {
        let srv = serve(Arc::clone(&third.0), Arc::new(Metrics::new()), &config()).unwrap();
        http_get(srv.addr(), "/top?k=20")
    };
    assert_eq!(second_top, third_top, "a replay-free restart changed the serving bytes");
    third.1.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
