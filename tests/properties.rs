//! Cross-crate property-based tests: invariants of the whole stack under
//! randomly generated corpora (not just the generator's well-behaved
//! output — these corpora include time-travel citations, empty bylines,
//! and single-venue degenerate cases).
//!
//! Cases come from a seeded in-repo generator; failures print the seed.

use scholar::corpus::model::{ArticleId, AuthorId, VenueId};
use scholar::corpus::{Corpus, CorpusBuilder};
use scholar::{QRank, QRankConfig, Ranker};
use srand::{rngs::SmallRng, Rng, SeedableRng};

const CASES: u64 = 64;

/// An arbitrary (possibly messy) corpus: 2..40 articles over 1..8 authors
/// and 1..5 venues, with random bylines and (possibly time-travel) refs.
fn arb_corpus(rng: &mut SmallRng) -> Corpus {
    let n = rng.gen_range(2usize..40);
    let na = rng.gen_range(1u32..8);
    let nv = rng.gen_range(1u32..5);
    let mut b = CorpusBuilder::new();
    for v in 0..nv {
        b.venue(&format!("V{v}"));
    }
    for a in 0..na {
        b.author(&format!("A{a}"));
    }
    for i in 0..n {
        let year = rng.gen_range(1950i32..2020);
        let venue = rng.gen_range(0u32..nv);
        let num_authors = rng.gen_range(0usize..4);
        let mut dedup_authors: Vec<AuthorId> =
            (0..num_authors).map(|_| AuthorId(rng.gen_range(0u32..na))).collect();
        dedup_authors.sort();
        dedup_authors.dedup();
        let num_refs = rng.gen_range(0usize..6);
        let refs: Vec<ArticleId> = (0..num_refs)
            .map(|_| rng.gen_range(0usize..n))
            .filter(|&r| r != i)
            .map(|r| ArticleId(r as u32))
            .collect();
        b.add_article(&format!("art{i}"), year, VenueId(venue), dedup_authors, refs, None);
    }
    b.finish().expect("arbitrary corpus must build")
}

fn for_corpora(body: impl Fn(&Corpus, &mut SmallRng)) {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x2545f4914f6cdd1d) ^ 0x5eed);
        let corpus = arb_corpus(&mut rng);
        let res =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&corpus, &mut rng)));
        if let Err(e) = res {
            eprintln!("property failed for seed {seed} ({} articles)", corpus.num_articles());
            std::panic::resume_unwind(e);
        }
    }
}

#[test]
fn every_ranker_emits_valid_distributions() {
    for_corpora(|corpus, _| {
        for ranker in scholar::evaluation_rankers() {
            let scores = ranker.rank(corpus);
            assert_eq!(scores.len(), corpus.num_articles());
            let sum: f64 = scores.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-6,
                "{} scores must sum to 1, got {}",
                ranker.name(),
                sum
            );
            assert!(
                scores.iter().all(|&s| s >= 0.0 && s.is_finite()),
                "{} produced an invalid score",
                ranker.name()
            );
        }
    });
}

#[test]
fn qrank_result_is_internally_consistent() {
    for_corpora(|corpus, _| {
        let res = QRank::default().run(corpus);
        assert_eq!(res.article_scores.len(), corpus.num_articles());
        assert_eq!(res.venue_scores.len(), corpus.num_venues());
        assert_eq!(res.author_scores.len(), corpus.num_authors());
        // Venue scores of venues with no articles are derived from the
        // structural walk only; all scores must still be finite.
        for v in res.venue_scores.iter().chain(&res.author_scores) {
            assert!(v.is_finite() && *v >= 0.0);
        }
    });
}

#[test]
fn snapshot_then_rank_never_panics() {
    for_corpora(|corpus, rng| {
        let frac = rng.gen_range(0.0f64..1.0);
        let (first, last) = corpus.year_range().unwrap();
        let cutoff = first + ((last - first) as f64 * frac) as i32;
        let snap = scholar::corpus::snapshot_until(corpus, cutoff);
        if snap.corpus.num_articles() > 0 {
            let scores = QRank::default().rank(&snap.corpus);
            let full = snap.scatter_scores(&scores, 0.0);
            assert_eq!(full.len(), corpus.num_articles());
        }
    });
}

#[test]
fn citation_graph_agrees_with_corpus() {
    for_corpora(|corpus, _| {
        let g = corpus.citation_graph();
        assert_eq!(g.len(), corpus.num_articles());
        assert_eq!(g.num_edges(), corpus.num_citations());
        let counts = corpus.citation_counts();
        for a in corpus.articles() {
            assert_eq!(g.in_degree(scholar::graph::NodeId(a.id.0)), counts[a.id.index()] as usize);
        }
    });
}

#[test]
fn lambda_mixture_interpolates_continuously() {
    // Moving a little mass between lambda components must not produce
    // wildly different rankings (continuity of the framework).
    for_corpora(|corpus, _| {
        let base = QRank::new(QRankConfig::default().with_lambdas(0.8, 0.1, 0.1)).rank(corpus);
        let nudged = QRank::new(QRankConfig::default().with_lambdas(0.78, 0.12, 0.1)).rank(corpus);
        let l1: f64 = base.iter().zip(&nudged).map(|(a, b)| (a - b).abs()).sum();
        assert!(l1 < 0.2, "2% lambda nudge moved the distribution by {l1}");
    });
}

#[test]
fn jsonl_roundtrip_on_arbitrary_corpora() {
    for_corpora(|corpus, _| {
        let mut buf = Vec::new();
        scholar::corpus::loader::jsonl::write_jsonl(corpus, &mut buf).unwrap();
        let loaded = scholar::corpus::loader::jsonl::read_jsonl(
            &buf[..],
            &scholar::corpus::loader::LoadOptions::default(),
        )
        .unwrap();
        assert_eq!(loaded.num_articles(), corpus.num_articles());
        assert_eq!(loaded.num_citations(), corpus.num_citations());
        for (a, b) in corpus.articles().iter().zip(loaded.articles()) {
            assert_eq!(a.year, b.year);
            assert_eq!(&a.references, &b.references);
        }
    });
}

#[test]
fn decayed_teleport_composition_preserves_row_sums() {
    // The full ranking operator — exp(-ρ·age) edge decay composed with
    // damping and a recency-weighted teleport — must stay row-stochastic
    // to near machine precision: each basis vector pushed through it
    // comes back with total mass 1 ± 1e-12. This is the stack-level
    // analogue of sgraph's operator test, exercised through RankContext
    // so the cached decayed graph is what gets probed.
    for_corpora(|corpus, rng| {
        let ctx = scholar::rank::RankContext::new(corpus);
        let rho = rng.gen_range(0.01f64..0.5);
        let tau = rng.gen_range(0.0f64..0.3);
        let damping = rng.gen_range(0.0f64..1.0);
        let now = corpus.year_range().map(|(_, last)| last).unwrap_or(2020);
        let decayed = ctx.decayed_citation(rho);
        let jump = ctx.recency_jump(tau, now);
        let n = corpus.num_articles();
        let mut y = vec![0.0; n];
        for i in 0..n.min(8) {
            let mut e = vec![0.0; n];
            e[i] = 1.0;
            decayed.op.apply(&e, &mut y, damping, &jump);
            let sum: f64 = y.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-12,
                "row {i} sums to {sum} (rho {rho}, tau {tau}, damping {damping})"
            );
        }
    });
}

#[test]
fn top_k_agrees_with_full_sort_under_adversarial_ties() {
    // Scores drawn from a tiny value set force massive tie blocks; the
    // documented order (score desc, index asc) must match an
    // independently computed full sort for every prefix length.
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9e3779b97f4a7c15) ^ 0x7135);
        let n = rng.gen_range(1usize..80);
        let palette = [0.0f64, 1e-300, 0.25, 0.25 + f64::EPSILON, 0.5, 1.0];
        let scores: Vec<f64> =
            (0..n).map(|_| palette[rng.gen_range(0usize..palette.len())]).collect();
        let mut expected: Vec<usize> = (0..n).collect();
        expected.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b)));
        for k in [0, 1, n / 2, n, n + 5] {
            let got = scholar::rank::scores::top_k(&scores, k);
            assert_eq!(
                got,
                expected[..k.min(n)].to_vec(),
                "seed {seed}: top_k({k}) diverged from full sort (n={n})"
            );
        }
    }
}

// ---- Loader robustness: arbitrary junk must produce Err or a valid
// corpus, never a panic. ----

fn random_printable(rng: &mut SmallRng, max_len: usize, allow_newline: bool) -> String {
    let len = rng.gen_range(0usize..max_len.max(1));
    (0..len)
        .map(|_| {
            if allow_newline && rng.gen_range(0usize..20) == 0 {
                '\n'
            } else {
                // Printable ASCII: 0x20..=0x7e.
                char::from(rng.gen_range(0x20u32..0x7f) as u8)
            }
        })
        .collect()
}

fn arb_jsonl_text(rng: &mut SmallRng) -> String {
    let lines = rng.gen_range(0usize..12);
    (0..lines)
        .map(|_| match rng.gen_range(0usize..3) {
            // Valid-ish records with random fields.
            0 => {
                let id: u32 = rng.gen_range(0u32..u32::MAX);
                let refs: Vec<String> = (0..rng.gen_range(0usize..3))
                    .map(|_| format!("\"{}\"", rng.gen_range(0u32..u32::MAX)))
                    .collect();
                if rng.gen() {
                    let y = rng.gen_range(1900i32..2100);
                    format!(
                        "{{\"id\": \"{id}\", \"year\": {y}, \"references\": [{}]}}",
                        refs.join(",")
                    )
                } else {
                    format!("{{\"id\": \"{id}\", \"references\": [{}]}}", refs.join(","))
                }
            }
            // Plain junk lines.
            1 => random_printable(rng, 40, false),
            // Truncated JSON.
            _ => "{\"id\": \"x\"".to_string(),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn jsonl_loader_never_panics() {
    for seed in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x10ad);
        let text = arb_jsonl_text(&mut rng);
        let opts = scholar::corpus::loader::LoadOptions::default();
        match scholar::corpus::loader::jsonl::read_jsonl(text.as_bytes(), &opts) {
            Ok(corpus) => {
                scholar::corpus::validate::validate(&corpus).unwrap();
                // And ranking the result must not panic either.
                let _ = scholar::PageRank::default().rank(&corpus);
            }
            Err(e) => {
                // Errors must render (no panic in Display).
                let _ = e.to_string();
            }
        }
    }
}

#[test]
fn aan_loader_never_panics() {
    for seed in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xaa4);
        let meta = random_printable(&mut rng, 200, true);
        let cites = random_printable(&mut rng, 200, true);
        let opts = scholar::corpus::loader::LoadOptions::default();
        match scholar::corpus::loader::aan::read_aan(meta.as_bytes(), cites.as_bytes(), &opts) {
            Ok(corpus) => {
                scholar::corpus::validate::validate(&corpus).unwrap();
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
}

#[test]
fn edge_list_loader_never_panics() {
    for seed in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xed6e);
        let text = random_printable(&mut rng, 200, true);
        match scholar::graph::io::read_edge_list(text.as_bytes(), None) {
            Ok(g) => g.validate().unwrap(),
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
}
