//! Cross-crate property-based tests: invariants of the whole stack under
//! randomly generated corpora (not just the generator's well-behaved
//! output — these corpora include time-travel citations, empty bylines,
//! and single-venue degenerate cases).

use proptest::prelude::*;
use scholar::corpus::model::{ArticleId, AuthorId, VenueId};
use scholar::corpus::{Corpus, CorpusBuilder};
use scholar::{QRank, QRankConfig, Ranker};

/// Strategy: an arbitrary (possibly messy) corpus.
fn arb_corpus() -> impl Strategy<Value = Corpus> {
    // (num_articles, num_authors, num_venues, per-article randomness)
    (2usize..40, 1u32..8, 1u32..5)
        .prop_flat_map(|(n, na, nv)| {
            let articles = proptest::collection::vec(
                (
                    1950i32..2020,                                  // year
                    0u32..nv,                                       // venue
                    proptest::collection::vec(0u32..na, 0..4),      // authors
                    proptest::collection::vec(0usize..n, 0..6),     // raw refs
                ),
                n,
            );
            (Just(n), Just(na), Just(nv), articles)
        })
        .prop_map(|(n, na, nv, articles)| {
            let mut b = CorpusBuilder::new();
            for v in 0..nv {
                b.venue(&format!("V{v}"));
            }
            for a in 0..na {
                b.author(&format!("A{a}"));
            }
            for (i, (year, venue, authors, refs)) in articles.into_iter().enumerate() {
                let mut dedup_authors: Vec<AuthorId> =
                    authors.into_iter().map(AuthorId).collect();
                dedup_authors.sort();
                dedup_authors.dedup();
                let refs: Vec<ArticleId> = refs
                    .into_iter()
                    .filter(|&r| r < n && r != i)
                    .map(|r| ArticleId(r as u32))
                    .collect();
                b.add_article(
                    &format!("art{i}"),
                    year,
                    VenueId(venue),
                    dedup_authors,
                    refs,
                    None,
                );
            }
            b.finish().expect("arbitrary corpus must build")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_ranker_emits_valid_distributions(corpus in arb_corpus()) {
        for ranker in scholar::evaluation_rankers() {
            let scores = ranker.rank(&corpus);
            prop_assert_eq!(scores.len(), corpus.num_articles());
            let sum: f64 = scores.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6,
                "{} scores must sum to 1, got {}", ranker.name(), sum);
            prop_assert!(scores.iter().all(|&s| s >= 0.0 && s.is_finite()),
                "{} produced an invalid score", ranker.name());
        }
    }

    #[test]
    fn qrank_result_is_internally_consistent(corpus in arb_corpus()) {
        let res = QRank::default().run(&corpus);
        prop_assert_eq!(res.article_scores.len(), corpus.num_articles());
        prop_assert_eq!(res.venue_scores.len(), corpus.num_venues());
        prop_assert_eq!(res.author_scores.len(), corpus.num_authors());
        // Venue scores of venues with no articles are derived from the
        // structural walk only; all scores must still be finite.
        for v in res.venue_scores.iter().chain(&res.author_scores) {
            prop_assert!(v.is_finite() && *v >= 0.0);
        }
    }

    #[test]
    fn snapshot_then_rank_never_panics(corpus in arb_corpus(), frac in 0.0f64..1.0) {
        let (first, last) = corpus.year_range().unwrap();
        let cutoff = first + ((last - first) as f64 * frac) as i32;
        let snap = scholar::corpus::snapshot_until(&corpus, cutoff);
        if snap.corpus.num_articles() > 0 {
            let scores = QRank::default().rank(&snap.corpus);
            let full = snap.scatter_scores(&scores, 0.0);
            prop_assert_eq!(full.len(), corpus.num_articles());
        }
    }

    #[test]
    fn citation_graph_agrees_with_corpus(corpus in arb_corpus()) {
        let g = corpus.citation_graph();
        prop_assert_eq!(g.len(), corpus.num_articles());
        prop_assert_eq!(g.num_edges(), corpus.num_citations());
        let counts = corpus.citation_counts();
        for a in corpus.articles() {
            prop_assert_eq!(
                g.in_degree(scholar::graph::NodeId(a.id.0)),
                counts[a.id.index()] as usize
            );
        }
    }

    #[test]
    fn lambda_mixture_interpolates_continuously(corpus in arb_corpus()) {
        // Moving a little mass between lambda components must not produce
        // wildly different rankings (continuity of the framework).
        let base = QRank::new(QRankConfig::default().with_lambdas(0.8, 0.1, 0.1)).rank(&corpus);
        let nudged = QRank::new(QRankConfig::default().with_lambdas(0.78, 0.12, 0.1)).rank(&corpus);
        let l1: f64 = base.iter().zip(&nudged).map(|(a, b)| (a - b).abs()).sum();
        prop_assert!(l1 < 0.2, "2% lambda nudge moved the distribution by {l1}");
    }

    #[test]
    fn jsonl_roundtrip_on_arbitrary_corpora(corpus in arb_corpus()) {
        let mut buf = Vec::new();
        scholar::corpus::loader::jsonl::write_jsonl(&corpus, &mut buf).unwrap();
        let loaded = scholar::corpus::loader::jsonl::read_jsonl(
            &buf[..],
            &scholar::corpus::loader::LoadOptions::default(),
        ).unwrap();
        prop_assert_eq!(loaded.num_articles(), corpus.num_articles());
        prop_assert_eq!(loaded.num_citations(), corpus.num_citations());
        for (a, b) in corpus.articles().iter().zip(loaded.articles()) {
            prop_assert_eq!(a.year, b.year);
            prop_assert_eq!(&a.references, &b.references);
        }
    }
}

// ---- Loader robustness: arbitrary junk must produce Err or a valid
// corpus, never a panic. ----

fn arb_jsonl_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            // Valid-ish records with random fields.
            (any::<u32>(), proptest::option::of(1900i32..2100), proptest::collection::vec(any::<u32>(), 0..3))
                .prop_map(|(id, year, refs)| {
                    let refs: Vec<String> =
                        refs.into_iter().map(|r| format!("\"{r}\"")).collect();
                    match year {
                        Some(y) => format!(
                            "{{\"id\": \"{id}\", \"year\": {y}, \"references\": [{}]}}",
                            refs.join(",")
                        ),
                        None => format!("{{\"id\": \"{id}\", \"references\": [{}]}}", refs.join(",")),
                    }
                }),
            // Plain junk lines.
            "[ -~]{0,40}".prop_map(|s| s),
            // Truncated JSON.
            Just("{\"id\": \"x\"".to_string()),
        ],
        0..12,
    )
    .prop_map(|lines| lines.join("\n"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn jsonl_loader_never_panics(text in arb_jsonl_text()) {
        let opts = scholar::corpus::loader::LoadOptions::default();
        match scholar::corpus::loader::jsonl::read_jsonl(text.as_bytes(), &opts) {
            Ok(corpus) => {
                scholar::corpus::validate::validate(&corpus).unwrap();
                // And ranking the result must not panic either.
                let _ = scholar::PageRank::default().rank(&corpus);
            }
            Err(e) => {
                // Errors must render (no panic in Display).
                let _ = e.to_string();
            }
        }
    }

    #[test]
    fn aan_loader_never_panics(meta in "[ -~\n]{0,200}", cites in "[ -~\n]{0,200}") {
        let opts = scholar::corpus::loader::LoadOptions::default();
        match scholar::corpus::loader::aan::read_aan(meta.as_bytes(), cites.as_bytes(), &opts) {
            Ok(corpus) => {
                scholar::corpus::validate::validate(&corpus).unwrap();
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }

    #[test]
    fn edge_list_loader_never_panics(text in "[ -~\n]{0,200}") {
        match scholar::graph::io::read_edge_list(text.as_bytes(), None) {
            Ok(g) => g.validate().unwrap(),
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
}
