//! Determinism guarantees: every component of the stack is bit-stable
//! across repeated runs, seeds, and thread counts.

use scholar::{Preset, QRank, QRankConfig, Ranker};

#[test]
fn generator_is_seed_deterministic() {
    let a = Preset::Tiny.generate(123);
    let b = Preset::Tiny.generate(123);
    assert_eq!(a, b);
    let c = Preset::Tiny.generate(124);
    assert_ne!(a, c, "different seeds must differ");
}

#[test]
fn every_ranker_is_deterministic() {
    let corpus = Preset::Tiny.generate(55);
    for ranker in scholar::evaluation_rankers() {
        let a = ranker.rank(&corpus);
        let b = ranker.rank(&corpus);
        assert_eq!(a, b, "{} must be deterministic", ranker.name());
    }
}

#[test]
fn thread_count_does_not_change_qrank() {
    let corpus = Preset::Tiny.generate(56);
    let seq = QRank::new(QRankConfig::default().with_threads(1)).rank(&corpus);
    for threads in [2, 3, 8] {
        let par = QRank::new(QRankConfig::default().with_threads(threads)).rank(&corpus);
        let diff: f64 = seq.iter().zip(&par).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff < 1e-9, "threads={threads} changed the result by {diff}");
    }
}

#[test]
fn sampled_metrics_are_seed_deterministic() {
    let corpus = Preset::Tiny.generate(57);
    let scores = QRank::default().rank(&corpus);
    let truth = scholar::eval::groundtruth::planted_merit(&corpus).unwrap();
    let a = scholar::eval::metrics::pairwise_accuracy_sampled(&truth.values, &scores, 50_000, 3);
    let b = scholar::eval::metrics::pairwise_accuracy_sampled(&truth.values, &scores, 50_000, 3);
    assert_eq!(a, b);
}

#[test]
fn ground_truth_builders_are_deterministic() {
    let corpus = Preset::Tiny.generate(58);
    let a1 = scholar::eval::groundtruth::award_set(&corpus, 5, 0.05);
    let a2 = scholar::eval::groundtruth::award_set(&corpus, 5, 0.05);
    assert_eq!(a1, a2);
    let p1 = scholar::eval::groundtruth::expert_pairs(&corpus, 300, 2.0, 11);
    let p2 = scholar::eval::groundtruth::expert_pairs(&corpus, 300, 2.0, 11);
    assert_eq!(p1, p2);
}
