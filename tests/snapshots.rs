//! Snapshot-consistency integration: time-restricted views behave like
//! the real passage of time.

use scholar::corpus::{snapshot_until, Preset};
use scholar::eval::metrics::{jaccard_at_k, kendall_tau_b};
use scholar::{PageRank, QRank, Ranker};

#[test]
fn snapshots_nest() {
    let c = Preset::Tiny.generate(71);
    let (first, last) = c.year_range().unwrap();
    let mid = (first + last) / 2;
    let early = snapshot_until(&c, mid);
    let late = snapshot_until(&c, last - 2);
    assert!(early.corpus.num_articles() < late.corpus.num_articles());
    // Every early article is in the late snapshot with the same year.
    for a in early.corpus.articles() {
        let full_id = early.to_full(a.id);
        let late_id = late.to_snapshot(full_id).expect("early article must be in late snapshot");
        assert_eq!(late.corpus.article(late_id).year, a.year);
    }
}

#[test]
fn snapshot_citation_counts_monotone() {
    // An article's citation count can only grow as the snapshot widens.
    let c = Preset::Tiny.generate(72);
    let (first, last) = c.year_range().unwrap();
    let mid = (first + last) / 2;
    let early = snapshot_until(&c, mid);
    let late = snapshot_until(&c, last);
    let early_counts = early.corpus.citation_counts();
    let late_counts = late.corpus.citation_counts();
    for a in early.corpus.articles() {
        let full_id = early.to_full(a.id);
        let late_id = late.to_snapshot(full_id).unwrap();
        assert!(
            late_counts[late_id.index()] >= early_counts[a.id.index()],
            "citations must be monotone over time"
        );
    }
}

#[test]
fn rankings_stabilize_as_cutoff_approaches_the_end() {
    // Kendall tau between the snapshot ranking and the final ranking
    // (over common articles) should increase with the cutoff.
    let c = Preset::Tiny.generate(73);
    let (first, last) = c.year_range().unwrap();
    let span = last - first;
    let final_scores = PageRank::default().rank(&c);

    let tau_at = |frac: f64| -> f64 {
        let cutoff = first + (span as f64 * frac) as i32;
        let snap = snapshot_until(&c, cutoff);
        let snap_scores = PageRank::default().rank(&snap.corpus);
        let final_sub: Vec<f64> = (0..snap.corpus.num_articles())
            .map(|i| final_scores[snap.full_of[i].index()])
            .collect();
        kendall_tau_b(&snap_scores, &final_sub)
    };

    let early = tau_at(0.5);
    let late = tau_at(0.9);
    assert!(
        late > early,
        "ranking at 90% cutoff ({late:.3}) should agree with the final ranking more than at 50% ({early:.3})"
    );
    assert!(late > 0.5, "near-final ranking should strongly agree, got {late:.3}");
}

#[test]
fn qrank_is_more_stable_than_pagerank_under_sparsification() {
    // The robustness claim (R-Table 4's shape): with venue/author priors,
    // QRank's ranking at an early cutoff agrees with its final ranking at
    // least as well as plain PageRank does with its own.
    let c = Preset::Tiny.generate(74);
    let (first, last) = c.year_range().unwrap();
    let cutoff = first + ((last - first) as f64 * 0.7) as i32;
    let snap = snapshot_until(&c, cutoff);

    let stability = |ranker: &dyn Ranker| -> f64 {
        let final_scores = ranker.rank(&c);
        let snap_scores = ranker.rank(&snap.corpus);
        let final_sub: Vec<f64> = (0..snap.corpus.num_articles())
            .map(|i| final_scores[snap.full_of[i].index()])
            .collect();
        kendall_tau_b(&snap_scores, &final_sub)
    };

    let qr = stability(&QRank::default());
    let pr = stability(&PageRank::default());
    assert!(qr > pr - 0.05, "QRank stability ({qr:.3}) should not fall behind PageRank ({pr:.3})");
}

#[test]
fn top_k_overlap_between_adjacent_snapshots_is_high() {
    let c = Preset::Tiny.generate(75);
    let (first, last) = c.year_range().unwrap();
    let s1 = snapshot_until(&c, last - 2);
    let s2 = snapshot_until(&c, last - 1);
    let r1 = QRank::default().rank(&s1.corpus);
    let r2 = QRank::default().rank(&s2.corpus);
    // Map s1 scores into s2's id space for comparison (s1 ⊆ s2).
    let r1_in_s2: Vec<f64> = {
        let mut v = vec![0.0; s2.corpus.num_articles()];
        for (i, &score) in r1.iter().enumerate() {
            let full = s1.full_of[i];
            let s2_id = s2.to_snapshot(full).unwrap();
            v[s2_id.index()] = score;
        }
        v
    };
    let overlap = jaccard_at_k(&r1_in_s2, &r2, 50);
    assert!(overlap > 0.5, "one extra year should not overturn the top-50 (jaccard {overlap:.3})");
    assert_eq!(first, c.year_range().unwrap().0);
}
