//! Cross-format integration: a corpus survives every serialization path
//! and produces identical rankings afterwards.

use scholar::corpus::loader::{aan, jsonl, mag, LoadOptions, MissingYearPolicy};
use scholar::{PageRank, Preset, QRank, Ranker};

fn l1(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

#[test]
fn jsonl_roundtrip_preserves_rankings() {
    let original = Preset::Tiny.generate(17);
    let mut buf = Vec::new();
    jsonl::write_jsonl(&original, &mut buf).unwrap();
    let loaded = jsonl::read_jsonl(&buf[..], &LoadOptions::default()).unwrap();

    let pr_a = PageRank::default().rank(&original);
    let pr_b = PageRank::default().rank(&loaded);
    assert!(l1(&pr_a, &pr_b) < 1e-12, "PageRank must survive the JSONL roundtrip");

    let qr_a = QRank::default().rank(&original);
    let qr_b = QRank::default().rank(&loaded);
    assert!(l1(&qr_a, &qr_b) < 1e-12, "QRank must survive the JSONL roundtrip");
}

#[test]
fn aan_roundtrip_preserves_rankings() {
    let original = Preset::Tiny.generate(18);
    let loaded = aan::roundtrip(&original).unwrap();
    let qr_a = QRank::default().rank(&original);
    let qr_b = QRank::default().rank(&loaded);
    assert!(l1(&qr_a, &qr_b) < 1e-12, "QRank must survive the AAN roundtrip");
}

#[test]
fn mag_tables_load_into_equivalent_corpus() {
    // Render a corpus into MAG-style TSV by hand, reload, compare graphs.
    let original = Preset::Tiny.generate(19);
    let mut papers = String::new();
    let mut auth = String::new();
    let mut refs = String::new();
    for a in original.articles() {
        papers.push_str(&format!(
            "{}\t{}\t{}\t{}\n",
            a.id,
            a.year,
            original.venue(a.venue).name,
            a.title
        ));
        for (pos, &u) in a.authors.iter().enumerate() {
            auth.push_str(&format!("{}\t{}\t{}\n", a.id, original.author(u).name, pos + 1));
        }
        for &r in &a.references {
            refs.push_str(&format!("{}\t{}\n", a.id, r));
        }
    }
    let loaded =
        mag::read_mag(papers.as_bytes(), auth.as_bytes(), refs.as_bytes(), &LoadOptions::default())
            .unwrap();

    assert_eq!(loaded.num_articles(), original.num_articles());
    assert_eq!(loaded.num_citations(), original.num_citations());
    assert_eq!(loaded.num_authors(), original.num_authors());
    assert_eq!(loaded.num_venues(), original.num_venues());
    for (a, b) in original.articles().iter().zip(loaded.articles()) {
        assert_eq!(a.year, b.year);
        assert_eq!(a.references, b.references);
        assert_eq!(a.authors.len(), b.authors.len());
    }
    let qr_a = QRank::default().rank(&original);
    let qr_b = QRank::default().rank(&loaded);
    assert!(l1(&qr_a, &qr_b) < 1e-12, "QRank must survive the MAG roundtrip");
}

#[test]
fn binary_graph_cache_roundtrip() {
    // The benchmark suite caches citation graphs in the sgraph binary
    // format; the cached graph must rank identically.
    let corpus = Preset::Tiny.generate(20);
    let g = corpus.citation_graph();
    let mut buf = Vec::new();
    scholar::graph::io::write_binary(&g, &mut buf).unwrap();
    let g2 = scholar::graph::io::read_binary(&buf[..]).unwrap();
    assert_eq!(g, g2);

    use scholar::graph::stochastic::PowerIterationOpts;
    use scholar::graph::RowStochastic;
    let s1 = RowStochastic::new(&g).stationary(&PowerIterationOpts::default());
    let s2 = RowStochastic::new(&g2).stationary(&PowerIterationOpts::default());
    assert!(l1(&s1.scores, &s2.scores) < 1e-15);
}

#[test]
fn loaders_tolerate_messy_real_world_data() {
    // Unknown references, missing years, missing venues — all at once.
    let messy = r#"
{"id": "A", "year": 1999, "references": ["MISSING-1", "B"]}
{"id": "B", "venue": "", "authors": ["X", "X"], "references": []}
{"id": "C", "year": 2005, "references": ["A", "B", "C-NOT-THERE"]}
"#;
    // A yearless record is a hard error unless the caller picks a policy:
    // the year-0 sentinel used to silently make articles ~2000 years old.
    let err = jsonl::read_jsonl(messy.as_bytes(), &LoadOptions::default()).unwrap_err();
    assert!(err.to_string().contains("no publication year"), "{err}");

    let opts = LoadOptions { missing_year: MissingYearPolicy::Impute(2000), ..Default::default() };
    let corpus = jsonl::read_jsonl(messy.as_bytes(), &opts).unwrap();
    assert_eq!(corpus.num_articles(), 3);
    assert_eq!(corpus.articles()[1].year, 2000);
    // Rankers must not panic on the messy corpus.
    for ranker in scholar::evaluation_rankers() {
        let scores = ranker.rank(&corpus);
        assert_eq!(scores.len(), 3);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    // Dropping instead renumbers around the yearless record.
    let opts = LoadOptions { missing_year: MissingYearPolicy::Drop, ..Default::default() };
    let dropped = jsonl::read_jsonl(messy.as_bytes(), &opts).unwrap();
    assert_eq!(dropped.num_articles(), 2);
    assert!(dropped.articles().iter().all(|a| a.year != 0));
}
