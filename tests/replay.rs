//! Workload record/replay and shadow-gated promotion (DESIGN.md §2.12).
//!
//! Three contracts, stacked:
//!
//! 1. **RLOGv1 round-trip** — a recorded request log encodes and
//!    decodes byte-identically; any truncation decodes to a clean
//!    prefix; bit rot inside a complete file is a typed error, never a
//!    panic. Same discipline as SNAPv1/WALv1.
//! 2. **Deterministic replay** — a recorded log re-issued against a
//!    fresh server produces byte-identical responses, proven by
//!    per-endpoint digests that are a pure function of (log, server
//!    state): identical across backends, replay widths, and fresh
//!    server instances. The checked-in fixture under `tests/fixtures/`
//!    pins this across processes and machines (CI replays it against a
//!    freshly built release server).
//! 3. **Shadow-gated promotion** — a staged candidate index answers
//!    mirrored live traffic; a drifted candidate is rejected with the
//!    old generation still serving and a loud report, an equivalent one
//!    is promoted, and replaying the recorded mirror log offline
//!    reproduces the online drift numbers exactly, integer for integer.
//!
//! Recording in these tests drives one connection at a time: `store` is
//! deliberately `try_lock` (the live path never blocks on recording),
//! so concurrent traffic may *drop* samples by design. Serial traffic
//! makes `dropped == 0` a certainty instead of a race, which is what
//! lets the tests pin exact record counts.
//!
//! Regenerate the fixture (after an intentional response-shape change):
//! `SCHOLAR_REGEN_FIXTURES=1 cargo test -p scholar --test replay -- fixture`

use scholar::core::incremental::IncrementalRanker;
use scholar::corpus::{Corpus, CorpusGenerator, Preset};
use scholar::serve::record::{decode_rlog, encode_rlog};
use scholar::serve::shadow::{replay_mirror, Decision};
use scholar::serve::{
    read_rlog, serve, Backend, Metrics, Recorder, ScoreIndex, ServeConfig, ServerHandle,
    ShadowReport, ShadowThresholds, SharedIndex, StateError, TopQuery,
};
use scholar::{GeneratorConfig, QRankConfig};
use scholar_loadgen::{LoadConfig, ReplayConfig, StatusRanges};
use scholar_testkit::chaos;
use scholar_testkit::model::arb_query;
use scholar_testkit::seeds::for_seeds;
use srand::{rngs::SmallRng, Rng};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn ranked_scores(corpus: &Corpus) -> Vec<f64> {
    IncrementalRanker::new(QRankConfig::default(), corpus.clone()).result().article_scores.clone()
}

fn start_server(
    corpus: &Arc<Corpus>,
    scores: &[f64],
    backend: Backend,
    recorder: Option<Arc<Recorder>>,
) -> (ServerHandle, Arc<SharedIndex>, Arc<Metrics>) {
    let shared = Arc::new(SharedIndex::new(ScoreIndex::build(Arc::clone(corpus), scores.to_vec())));
    let metrics = Arc::new(Metrics::new());
    let config = ServeConfig { workers: 2, backend, recorder, ..Default::default() };
    let server = serve(Arc::clone(&shared), Arc::clone(&metrics), &config).expect("bind server");
    (server, shared, metrics)
}

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("scholar-replay-{}-{name}", std::process::id()))
}

// ------------------------------------------------ 1. RLOGv1 round-trip

/// Render an adversarial `/top` target from the model-query generator —
/// the same query shapes the serving layer is checked against.
fn top_target(rng: &mut SmallRng) -> String {
    let q = arb_query(rng, 40, 5, 6, (1990, 2012));
    let mut t = format!("/top?k={}", q.k);
    if let Some(v) = q.venue {
        t.push_str(&format!("&venue={v}"));
    }
    if let Some(a) = q.author {
        t.push_str(&format!("&author={a}"));
    }
    if let Some(y) = q.year_min {
        t.push_str(&format!("&year_min={y}"));
    }
    if let Some(y) = q.year_max {
        t.push_str(&format!("&year_max={y}"));
    }
    t
}

fn arb_record(rng: &mut SmallRng) -> scholar::serve::ReqRecord {
    let target = match rng.gen_range(0u32..6) {
        0 | 1 => top_target(rng),
        2 => format!("/article/{}", rng.gen_range(0u32..50)),
        3 => "/metrics".to_string(),
        // Adversarial bytes: percent junk, non-ascii, and the RLOGv1
        // footer magic itself embedded in a target — a truncation
        // landing near it must still decode as a clean prefix or typed
        // corruption, never a false "complete" file and never a panic.
        4 => "/top?venue=%zz&☃=RLOGend\0".to_string(),
        _ => String::new(),
    };
    scholar::serve::ReqRecord {
        conn: if rng.gen_range(0u32..8) == 0 { u64::MAX } else { rng.gen_range(0u64..100) },
        seq: rng.gen_range(0u64..1000),
        generation: if rng.gen_range(0u32..8) == 0 { u64::MAX } else { rng.gen_range(1u64..9) },
        status: rng.gen_range(0u32..1000) as u16,
        latency_us: if rng.gen_range(0u32..8) == 0 {
            u64::MAX
        } else {
            rng.gen_range(0u64..10_000)
        },
        target,
    }
}

#[test]
fn rlog_round_trips_byte_identically_and_truncates_cleanly() {
    for_seeds("rlog.prop", 24, |_seed, rng| {
        let n = rng.gen_range(1usize..16);
        let records: Vec<_> = (0..n).map(|_| arb_record(rng)).collect();
        let sample_every = rng.gen_range(1u64..5);
        let bytes = encode_rlog(&records, sample_every);

        // Round trip: decoded records equal, re-encoding byte-identical.
        let log = decode_rlog(&bytes).expect("fault-free decode");
        assert_eq!(log.records, records);
        assert_eq!(log.sample_every, sample_every);
        assert!(!log.torn_tail);
        assert_eq!(encode_rlog(&log.records, log.sample_every), bytes, "re-encode drifted");

        // Every truncation: a clean prefix (torn) or a typed Corrupt
        // error — and never, at any cut, a panic or a false "complete".
        for cut in 0..bytes.len() {
            match decode_rlog(&bytes[..cut]) {
                Ok(torn) => {
                    assert!(torn.torn_tail, "cut at {cut} of {} claims completeness", bytes.len());
                    assert!(torn.records.len() <= records.len());
                    assert_eq!(
                        torn.records[..],
                        records[..torn.records.len()],
                        "truncation at {cut} decoded a non-prefix"
                    );
                }
                Err(StateError::Corrupt { .. }) => {}
                Err(other) => panic!("truncation at {cut} surfaced a non-typed error: {other}"),
            }
        }

        // Bit rot inside the complete file: flip one byte anywhere in
        // the record region and the checksummed decode must reject it
        // as typed corruption (the footer says "complete", so a bad
        // record is rot, not a tear and not a crash).
        let record_region = 16..bytes.len() - 16;
        let pos = rng.gen_range(record_region.start..record_region.end);
        let mut rotted = bytes.clone();
        rotted[pos] ^= 0x40;
        match decode_rlog(&rotted) {
            Err(StateError::Corrupt { .. }) => {}
            Ok(log) => {
                panic!("bit rot at {pos} decoded fine ({} records)", log.records.len())
            }
            Err(other) => panic!("bit rot at {pos} surfaced a non-typed error: {other}"),
        }
    });
}

// --------------------------------------------- 2. deterministic replay

const FIXTURE_RLOG: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/fixtures/dblp_like.rlog");
const FIXTURE_DIGESTS: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/fixtures/dblp_like.digests");
const FIXTURE_REQUESTS: u64 = 96;

/// The fixture's corpus: DBLP-shaped (venue skew, citation tail, year
/// span of the DBLP preset) scaled down so ranking takes well under a
/// second. Fully determined by the seed — every machine rebuilds the
/// same corpus, scores, and response bytes.
fn fixture_corpus() -> Corpus {
    CorpusGenerator::new(GeneratorConfig {
        initial_articles_per_year: 10.0,
        ..Preset::DblpLike.config(0xdb1f)
    })
    .generate()
}

fn fixture_targets(n_articles: usize) -> Vec<String> {
    let mut t = vec![
        "/top?k=10".to_string(),
        "/top?k=50".to_string(),
        "/top?k=5&venue=3".to_string(),
        "/top?k=25&year_min=1995".to_string(),
        "/top?k=25&venue=1&year_max=2005".to_string(),
        "/top?k=8&author=17".to_string(),
        "/top?k=12&year_min=1990&year_max=2010".to_string(),
        "/top?k=0".to_string(),
        "/health".to_string(),
    ];
    for id in [1usize, 42, 137, n_articles - 1, n_articles + 50] {
        t.push(format!("/article/{id}"));
    }
    t
}

/// Drive seeded loadgen at a recording server and return the flushed
/// log. Two serial single-connection runs: serial traffic cannot
/// contend the recorder ring (`dropped` stays 0 by construction), and
/// the two runs give the log two connection groups, so replay's
/// per-connection ordering is actually exercised.
fn record_workload(corpus: &Arc<Corpus>, scores: &[f64], rlog: &Path) -> scholar::serve::RecordLog {
    let recorder = Arc::new(Recorder::new(rlog, 1, 1 << 16));
    let (mut server, _shared, _metrics) =
        start_server(corpus, scores, Backend::Auto, Some(Arc::clone(&recorder)));
    for seed in [0x5eed_0001u64, 0x5eed_0002] {
        let report = scholar_loadgen::run(&LoadConfig {
            addr: server.addr(),
            connections: 1,
            requests: FIXTURE_REQUESTS / 2,
            seed,
            keep_alive: true,
            targets: fixture_targets(corpus.num_articles()),
            accept: StatusRanges::ok_or_not_found(),
        })
        .expect("loadgen run");
        assert_eq!(report.completed, FIXTURE_REQUESTS / 2, "loadgen lost requests");
        assert_eq!(report.transport_errors, 0);
    }
    assert_eq!(recorder.dropped(), 0, "serial traffic must never contend the ring");
    recorder.flush().expect("flush record log");
    server.shutdown();
    let log = read_rlog(rlog).expect("read back record log");
    assert!(!log.torn_tail);
    assert_eq!(log.records.len() as u64, FIXTURE_REQUESTS);
    log
}

fn replay_against(
    corpus: &Arc<Corpus>,
    scores: &[f64],
    records: &[scholar::serve::ReqRecord],
    backend: Backend,
    connections: usize,
) -> scholar_loadgen::ReplayReport {
    let (mut server, _, _) = start_server(corpus, scores, backend, None);
    let report = scholar_loadgen::replay(
        records,
        &ReplayConfig { addr: server.addr(), connections, keep_alive: true },
    )
    .expect("replay");
    server.shutdown();
    assert_eq!(report.transport_errors, 0, "{backend:?}");
    report
}

#[test]
fn fixture_replays_byte_identically_across_backends_and_fresh_servers() {
    let corpus = Arc::new(fixture_corpus());
    let scores = ranked_scores(&corpus);

    if std::env::var_os("SCHOLAR_REGEN_FIXTURES").is_some() {
        std::fs::create_dir_all(Path::new(FIXTURE_RLOG).parent().unwrap()).unwrap();
        let log = record_workload(&corpus, &scores, Path::new(FIXTURE_RLOG));
        // Digest the fixture against a fresh server and persist the
        // sidecar the regression gate compares against.
        let report = replay_against(&corpus, &scores, &log.records, Backend::Auto, 2);
        std::fs::write(FIXTURE_DIGESTS, report.format_digests()).unwrap();
        eprintln!("regenerated {FIXTURE_RLOG} and {FIXTURE_DIGESTS}");
    }

    let log = read_rlog(Path::new(FIXTURE_RLOG)).expect("checked-in fixture must decode");
    assert!(!log.torn_tail, "fixture has a torn tail");
    assert_eq!(log.records.len() as u64, FIXTURE_REQUESTS);
    let expected = scholar_loadgen::parse_digests(
        &std::fs::read_to_string(FIXTURE_DIGESTS).expect("checked-in digest sidecar"),
    )
    .expect("sidecar parses");

    // Two fresh server instances, both backends, different replay
    // widths: every digest must equal the checked-in sidecar.
    let mut seen = Vec::new();
    for (backend, connections) in [(Backend::Auto, 2usize), (Backend::Blocking, 1)] {
        let report = replay_against(&corpus, &scores, &log.records, backend, connections);
        assert_eq!(report.replayed, FIXTURE_REQUESTS, "{backend:?}");
        assert_eq!(
            report.status_mismatches, 0,
            "{backend:?} answered different statuses than the recording server"
        );
        let drift = report.diff_digests(&expected);
        assert!(
            drift.is_empty(),
            "{backend:?} response bytes drifted from the fixture:\n  {}",
            drift.join("\n  ")
        );
        seen.push(report.format_digests());
    }
    assert_eq!(seen[0], seen[1], "backends disagreed with each other");
}

#[test]
fn recorded_traffic_replays_identically_on_a_second_fresh_server() {
    // End-to-end: record live traffic on one server, replay the log on
    // two *other* fresh servers at different widths, digests must agree
    // — the portable-fixture property for logs recorded right now, not
    // just the checked-in one.
    let corpus = Arc::new(Preset::Tiny.generate(29));
    let scores = ranked_scores(&corpus);
    let rlog = tmp_path("roundtrip.rlog");
    let log = record_workload(&corpus, &scores, &rlog);
    assert_eq!(log.sample_every, 1);

    let mut digests = Vec::new();
    for connections in [1usize, 4] {
        let report = replay_against(&corpus, &scores, &log.records, Backend::Auto, connections);
        assert_eq!(report.status_mismatches, 0);
        digests.push(report.format_digests());
    }
    assert_eq!(digests[0], digests[1], "replay width changed the digests");
    std::fs::remove_file(&rlog).unwrap();
}

// ------------------------------------- 3. shadow-gated promotion e2e

fn await_decision(shared: &SharedIndex) -> ShadowReport {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let report = shared.shadow_report().expect("shadow slot vanished");
        if report.decision != Decision::Pending {
            return report;
        }
        assert!(Instant::now() < deadline, "shadow decision never landed");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn shadow_gate_rejects_drift_promotes_equivalence_and_replays_exactly() {
    let corpus = Arc::new(Preset::Tiny.generate(31));
    let scores = ranked_scores(&corpus);
    let rlog = tmp_path("mirror.rlog");
    let recorder = Arc::new(Recorder::new(&rlog, 1, 1 << 16));
    let (mut server, shared, _metrics) =
        start_server(&corpus, &scores, Backend::Auto, Some(Arc::clone(&recorder)));
    let addr = server.addr();

    // Exactly min_mirrored serial requests per phase: every request is
    // stored (serial traffic never contends the ring) and recording and
    // mirroring are coupled, so the flushed log *is* the mirrored
    // workload — which is what makes the offline replay below
    // integer-identical to the online report.
    const MIRRORS: u64 = 32;
    let thresholds = ShadowThresholds { min_mirrored: MIRRORS, ..Default::default() };
    let traffic = |seed: u64| {
        let report = scholar_loadgen::run(&LoadConfig {
            addr,
            connections: 1,
            requests: MIRRORS,
            seed,
            keep_alive: true,
            targets: fixture_targets(corpus.num_articles()),
            accept: StatusRanges::ok_or_not_found(),
        })
        .expect("loadgen");
        assert_eq!(report.completed, MIRRORS);
    };

    // Phase 1: a drifted candidate (scores reversed — wrong order,
    // wrong values) must be REJECTED, loudly, with the old generation
    // still serving.
    let mut reversed = scores.clone();
    reversed.reverse();
    let cand_gen = shared
        .stage_shadow(ScoreIndex::build(Arc::clone(&corpus), reversed.clone()), thresholds.clone());
    assert_eq!(cand_gen, 2);
    traffic(0xd21f7);
    let online = await_decision(&shared);
    // Flush before any further HTTP touches the server, so the log
    // holds exactly the mirrored workload and nothing else.
    recorder.flush().expect("flush mirror log");
    assert_eq!(online.decision, Decision::Rejected);
    assert_eq!(shared.generation(), 1, "a rejected candidate must never publish");
    assert_eq!(online.mirrored, MIRRORS);
    assert_eq!(online.mirror_errors, 0);

    // Loud over HTTP: /shadow shows the staged report with its reasons.
    let (status, body) = chaos::http_get(addr, "/shadow");
    assert_eq!(status, 200);
    assert_eq!(body.get("active").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(body.get("decision").and_then(|v| v.as_str()), Some("rejected"));
    let failures = body.get("failures").and_then(|f| f.as_array()).expect("failures array");
    assert!(!failures.is_empty(), "a rejection must name its reasons");
    // Live answers still come from generation 1.
    let (status, top) = chaos::http_get(addr, "/top?k=3");
    assert_eq!(status, 200);
    assert_eq!(top.get("generation").and_then(|v| v.as_i64()), Some(1));

    // The recorded mirror log, replayed offline against the same two
    // index builds, reproduces the online drift integers exactly.
    let log = read_rlog(&rlog).expect("read mirror log");
    assert_eq!(log.records.len() as u64, MIRRORS, "log must cover the mirrored set exactly");
    let live = shared.load();
    let candidate = ScoreIndex::build(Arc::clone(&corpus), reversed);
    let offline = replay_mirror(&log.records, &live, &candidate).report(1, 2);
    assert_eq!(offline.mirrored, online.mirrored);
    assert_eq!(offline.status_mismatches, online.status_mismatches);
    assert_eq!(offline.top_compared, online.top_compared);
    assert_eq!(offline.overlap_hits, online.overlap_hits);
    assert_eq!(offline.overlap_slots, online.overlap_slots);
    assert_eq!(offline.concordant, online.concordant);
    assert_eq!(offline.discordant, online.discordant);
    assert_eq!(offline.pairs, online.pairs);
    assert_eq!(offline.score_l1_nanos, online.score_l1_nanos);
    assert_eq!(offline.score_pairs, online.score_pairs);
    assert_eq!(offline.endpoint_mirrored, online.endpoint_mirrored);
    assert_eq!(offline.endpoint_status_mismatches, online.endpoint_status_mismatches);
    // And the decision it implies is the decision that was taken.
    assert!(!offline.failures(&thresholds).is_empty());

    // Phase 2: an equivalent candidate (identical scores) must be
    // PROMOTED once it has answered enough mirrored traffic.
    let cand_gen =
        shared.stage_shadow(ScoreIndex::build(Arc::clone(&corpus), scores.clone()), thresholds);
    assert_eq!(cand_gen, 2);
    traffic(0xa11ce);
    let deadline = Instant::now() + Duration::from_secs(30);
    while shared.generation() < 2 {
        assert!(Instant::now() < deadline, "equivalent candidate never promoted");
        std::thread::sleep(Duration::from_millis(2));
    }
    let report = shared.shadow_report().expect("report stays up after promotion");
    assert_eq!(report.decision, Decision::Promoted);
    assert_eq!(report.status_mismatches, 0);
    assert_eq!(report.overlap_hits, report.overlap_slots, "identical scores must overlap fully");
    // The promoted generation serves immediately.
    let (status, top) = chaos::http_get(addr, "/top?k=3");
    assert_eq!(status, 200);
    assert_eq!(top.get("generation").and_then(|v| v.as_i64()), Some(2));
    assert_eq!(shared.load().top(&TopQuery { k: 3, ..Default::default() }).len(), 3);

    // Metrics exactness with shadowing on: every request classified
    // exactly once, and the per-generation breakdown sums back to the
    // total — nothing double-counted by the mirror path.
    let (status, m) = chaos::http_get(addr, "/metrics");
    assert_eq!(status, 200);
    let field = |v: &sjson::Value, name: &str| -> i64 {
        v.get(name).and_then(|x| x.as_i64()).unwrap_or_else(|| panic!("missing metric {name}"))
    };
    let requests = field(&m, "requests");
    assert_eq!(
        field(&m, "ok") + field(&m, "client_errors") + field(&m, "server_errors"),
        requests,
        "class counters must sum exactly to requests with shadowing on"
    );
    let generations = m.get("generations").and_then(|g| g.as_array()).expect("generations array");
    assert!(generations.len() >= 2, "both generations must appear: {generations:?}");
    let mut by_generation = 0i64;
    for g in generations {
        assert_eq!(
            field(g, "ok") + field(g, "client_errors") + field(g, "server_errors"),
            field(g, "requests"),
            "per-generation classes must sum exactly"
        );
        by_generation += field(g, "requests");
    }
    assert_eq!(by_generation, requests, "generation breakdown must sum to the request counter");

    server.shutdown();
    std::fs::remove_file(&rlog).unwrap();
}

#[test]
fn early_manual_promotion_rejects_an_under_mirrored_candidate() {
    // try_promote_shadow before the evidence bar is a statement that no
    // more evidence is coming: the under-mirrored candidate is rejected,
    // not promoted on faith.
    let corpus = Arc::new(Preset::Tiny.generate(33));
    let scores = ranked_scores(&corpus);
    let shared = Arc::new(SharedIndex::new(ScoreIndex::build(Arc::clone(&corpus), scores.clone())));
    let thresholds = ShadowThresholds { min_mirrored: 64, ..Default::default() };
    shared.stage_shadow(ScoreIndex::build(Arc::clone(&corpus), scores), thresholds.clone());
    assert_eq!(shared.try_promote_shadow(), None);
    let report = shared.shadow_report().expect("slot stays up");
    assert_eq!(report.decision, Decision::Rejected);
    assert!(report.failures(&thresholds).iter().any(|f| f.contains("min_mirrored")));
    assert_eq!(shared.generation(), 1);
}
