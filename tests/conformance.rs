//! Trait-level conformance suite: every registered ranker must honor the
//! [`Ranker`] contract on generated corpora — finite non-negative scores,
//! one per article, summing to 1 — and the context path must agree with
//! the plain-corpus path bit-for-bit (within 1e-12 L1).

use scholar::rank::{
    AgeNormalizedCitations, FusedRanker, FusionRule, MonteCarloPageRank, RankContext,
    RecentCitations, RescaledRanker,
};
use scholar::{CitationCount, Corpus, PageRank, Preset, Ranker};
use sgraph::stochastic::l1_distance;

/// Every ranker exposed by the stack: the R-Table evaluation suite plus
/// the auxiliary/bibliometric rankers and the two combinators.
fn registered_rankers() -> Vec<Box<dyn Ranker>> {
    let mut rankers = scholar::evaluation_rankers();
    rankers.push(Box::new(MonteCarloPageRank::default()));
    rankers.push(Box::new(AgeNormalizedCitations::default()));
    rankers.push(Box::new(RecentCitations::default()));
    rankers.push(Box::new(RescaledRanker::new(Box::new(PageRank::default()), 5)));
    rankers.push(Box::new(FusedRanker::new(
        vec![Box::new(CitationCount), Box::new(PageRank::default())],
        FusionRule::ReciprocalRank { k: 60.0 },
    )));
    rankers
}

fn assert_distribution(name: &str, corpus: &Corpus, scores: &[f64]) {
    assert_eq!(
        scores.len(),
        corpus.num_articles(),
        "{name}: one score per article ({} vs {})",
        scores.len(),
        corpus.num_articles()
    );
    for (i, &s) in scores.iter().enumerate() {
        assert!(s.is_finite(), "{name}: score[{i}] = {s} is not finite");
        assert!(s >= 0.0, "{name}: score[{i}] = {s} is negative");
    }
    let sum: f64 = scores.iter().sum();
    assert!((sum - 1.0).abs() <= 1e-9, "{name}: scores sum to {sum}, want 1 ± 1e-9");
}

fn check_preset(preset: Preset, seed: u64) {
    let corpus = preset.generate(seed);
    let ctx = RankContext::new(&corpus);
    for ranker in registered_rankers() {
        let name = ranker.name();
        let out = ranker.solve_ctx(&ctx);
        assert_distribution(&name, &corpus, &out.scores);
        let t = &out.telemetry;
        assert!(t.build_secs >= 0.0 && t.solve_secs >= 0.0, "{name}: negative wall time");
        assert!(
            t.residuals.iter().all(|r| r.is_finite()),
            "{name}: non-finite residual in telemetry"
        );
    }
}

#[test]
fn every_ranker_emits_a_distribution_on_tiny() {
    for seed in [1, 7] {
        check_preset(Preset::Tiny, seed);
    }
}

#[test]
fn rank_ctx_matches_rank() {
    let corpus = Preset::Tiny.generate(3);
    let ctx = RankContext::new(&corpus);
    for ranker in registered_rankers() {
        let name = ranker.name();
        let via_ctx = ranker.rank_ctx(&ctx);
        let via_corpus = ranker.rank(&corpus);
        let drift = l1_distance(&via_ctx, &via_corpus);
        assert!(drift <= 1e-12, "{name}: rank vs rank_ctx drift {drift:.3e} > 1e-12");
    }
}

#[test]
fn repeated_solves_on_one_context_are_bitwise_stable() {
    let corpus = Preset::Tiny.generate(4);
    let ctx = RankContext::new(&corpus);
    for ranker in registered_rankers() {
        let first = ranker.rank_ctx(&ctx);
        let second = ranker.rank_ctx(&ctx);
        assert_eq!(first, second, "{}: repeat solve on one context drifted", ranker.name());
    }
}

#[test]
fn full_suite_builds_the_citation_graph_exactly_once() {
    let corpus = Preset::Tiny.generate(5);
    assert_eq!(corpus.citation_graph_builds(), 0);
    let ctx = RankContext::new(&corpus);
    for ranker in registered_rankers() {
        let _ = ranker.rank_ctx(&ctx);
    }
    assert_eq!(
        corpus.citation_graph_builds(),
        1,
        "a shared-context suite must derive the citation CSR exactly once"
    );
}

/// The larger presets take minutes in debug builds; run explicitly with
/// `cargo test --release -- --ignored` for full-preset coverage.
#[test]
#[ignore = "large presets; run in release builds"]
fn every_ranker_emits_a_distribution_on_large_presets() {
    for preset in [Preset::AanLike, Preset::DblpLike, Preset::MagLike] {
        check_preset(preset, 11);
    }
}
