//! Trait-level conformance suite: every registered ranker must honor the
//! [`Ranker`] contract on generated corpora — finite non-negative scores,
//! one per article, summing to 1 — and the context path must agree with
//! the plain-corpus path bit-for-bit (within 1e-12 L1).

use scholar::rank::{
    AgeNormalizedCitations, FusedRanker, FusionRule, MonteCarloPageRank, RankContext,
    RecentCitations, RescaledRanker,
};
use scholar::{CitationCount, Corpus, PageRank, Preset, Ranker};
use sgraph::stochastic::l1_distance;

/// Every ranker exposed by the stack: the R-Table evaluation suite plus
/// the auxiliary/bibliometric rankers and the two combinators.
fn registered_rankers() -> Vec<Box<dyn Ranker>> {
    let mut rankers = scholar::evaluation_rankers();
    rankers.push(Box::new(MonteCarloPageRank::default()));
    rankers.push(Box::new(AgeNormalizedCitations::default()));
    rankers.push(Box::new(RecentCitations::default()));
    rankers.push(Box::new(RescaledRanker::new(Box::new(PageRank::default()), 5)));
    rankers.push(Box::new(FusedRanker::new(
        vec![Box::new(CitationCount), Box::new(PageRank::default())],
        FusionRule::ReciprocalRank { k: 60.0 },
    )));
    rankers
}

fn assert_distribution(name: &str, corpus: &Corpus, scores: &[f64]) {
    assert_eq!(
        scores.len(),
        corpus.num_articles(),
        "{name}: one score per article ({} vs {})",
        scores.len(),
        corpus.num_articles()
    );
    for (i, &s) in scores.iter().enumerate() {
        assert!(s.is_finite(), "{name}: score[{i}] = {s} is not finite");
        assert!(s >= 0.0, "{name}: score[{i}] = {s} is negative");
    }
    let sum: f64 = scores.iter().sum();
    assert!((sum - 1.0).abs() <= 1e-9, "{name}: scores sum to {sum}, want 1 ± 1e-9");
}

fn check_preset(preset: Preset, seed: u64) {
    let corpus = preset.generate(seed);
    let ctx = RankContext::new(&corpus);
    for ranker in registered_rankers() {
        let name = ranker.name();
        let out = ranker.solve_ctx(&ctx);
        assert_distribution(&name, &corpus, &out.scores);
        let t = &out.telemetry;
        assert!(t.build_secs >= 0.0 && t.solve_secs >= 0.0, "{name}: negative wall time");
        assert!(
            t.residuals.iter().all(|r| r.is_finite()),
            "{name}: non-finite residual in telemetry"
        );
    }
}

#[test]
fn every_ranker_emits_a_distribution_on_tiny() {
    for seed in [1, 7] {
        check_preset(Preset::Tiny, seed);
    }
}

#[test]
fn rank_ctx_matches_rank() {
    let corpus = Preset::Tiny.generate(3);
    let ctx = RankContext::new(&corpus);
    for ranker in registered_rankers() {
        let name = ranker.name();
        let via_ctx = ranker.rank_ctx(&ctx);
        let via_corpus = ranker.rank(&corpus);
        let drift = l1_distance(&via_ctx, &via_corpus);
        assert!(drift <= 1e-12, "{name}: rank vs rank_ctx drift {drift:.3e} > 1e-12");
    }
}

#[test]
fn repeated_solves_on_one_context_are_bitwise_stable() {
    let corpus = Preset::Tiny.generate(4);
    let ctx = RankContext::new(&corpus);
    for ranker in registered_rankers() {
        let first = ranker.rank_ctx(&ctx);
        let second = ranker.rank_ctx(&ctx);
        assert_eq!(first, second, "{}: repeat solve on one context drifted", ranker.name());
    }
}

#[test]
fn full_suite_builds_the_citation_graph_exactly_once() {
    let corpus = Preset::Tiny.generate(5);
    assert_eq!(corpus.citation_graph_builds(), 0);
    let ctx = RankContext::new(&corpus);
    for ranker in registered_rankers() {
        let _ = ranker.rank_ctx(&ctx);
    }
    assert_eq!(
        corpus.citation_graph_builds(),
        1,
        "a shared-context suite must derive the citation CSR exactly once"
    );
}

/// The larger presets take minutes in debug builds; run explicitly with
/// `cargo test --release -- --ignored` for full-preset coverage.
#[test]
#[ignore = "large presets; run in release builds"]
fn every_ranker_emits_a_distribution_on_large_presets() {
    for preset in [Preset::AanLike, Preset::DblpLike, Preset::MagLike] {
        check_preset(preset, 11);
    }
}

/// Top-k under total order (score desc, id asc) — ties included, so two
/// backends only agree if every tied score is bit-identical too.
fn full_order(scores: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b)));
    idx
}

/// Backend equivalence: every registered ranker over the same corpus via
/// the in-RAM and mmap (colstore) backends must produce ≤ 1e-12 L1
/// drift, the identical full ranking order (ties resolved by the same
/// deterministic rule on both sides), and identical solver iteration
/// counts — the out-of-core path is a storage change, not an algorithm
/// change.
#[test]
fn mmap_backend_is_score_identical_to_ram() {
    for seed in [3, 12] {
        let corpus = Preset::Tiny.generate(seed);
        let dir =
            std::env::temp_dir().join(format!("scholar-conformance-{}-{seed}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        corpus.write_colstore(&dir).unwrap();
        let store = scholar::corpus::colstore::ColStore::open(&dir).unwrap();

        let ram = RankContext::new(&corpus);
        let mmap = RankContext::from_colstore(&store);
        for ranker in registered_rankers() {
            let name = ranker.name();
            let a = ranker.solve_ctx(&ram);
            let b = ranker.solve_ctx(&mmap);
            assert_distribution(&name, &corpus, &b.scores);
            let drift = l1_distance(&a.scores, &b.scores);
            assert!(drift <= 1e-12, "{name}: backend drift {drift:.3e} > 1e-12 (seed {seed})");
            assert_eq!(
                full_order(&a.scores),
                full_order(&b.scores),
                "{name}: backends disagree on ranking order (seed {seed})"
            );
            assert_eq!(
                a.telemetry.iterations, b.telemetry.iterations,
                "{name}: backends took different iteration counts (seed {seed})"
            );
            assert_eq!(
                a.telemetry.converged, b.telemetry.converged,
                "{name}: backends disagree on convergence (seed {seed})"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// The QRank engine built from an mmap-backed context must match the
/// in-RAM engine bit-for-bit, including the ablation-relevant pieces
/// (venue/author stationaries feed the mixture).
#[test]
fn qrank_engine_matches_across_backends() {
    let corpus = Preset::Tiny.generate(21);
    let dir =
        std::env::temp_dir().join(format!("scholar-conformance-qrank-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    corpus.write_colstore(&dir).unwrap();
    let store = scholar::corpus::colstore::ColStore::open(&dir).unwrap();

    let cfg = scholar::QRankConfig::default();
    let ram = RankContext::new(&corpus);
    let mmap = RankContext::from_colstore(&store);
    let mix = scholar::MixParams::from_config(&cfg);
    let a = scholar::QRankEngine::build_from_ctx(&ram, &cfg).solve(&mix);
    let b = scholar::QRankEngine::build_from_ctx(&mmap, &cfg).solve(&mix);
    assert_eq!(a.article_scores, b.article_scores, "QRank scores must be bit-identical");
    assert_eq!(a.outer.iterations, b.outer.iterations);
    assert_eq!(a.twpr_diagnostics.iterations, b.twpr_diagnostics.iterations);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// TWPR on the mmap backend solves through the *partitioned* shard file
/// (not a dense operator rebuilt in RAM); the shard cache must appear in
/// the store directory and a second context must reuse it.
#[test]
fn mmap_twpr_materializes_and_reuses_the_shard_cache() {
    let corpus = Preset::Tiny.generate(33);
    let dir = std::env::temp_dir().join(format!("scholar-conformance-scsr-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    corpus.write_colstore(&dir).unwrap();
    let store = scholar::corpus::colstore::ColStore::open(&dir).unwrap();

    let ranker = scholar::TimeWeightedPageRank::default();
    let baseline = ranker.rank(&corpus);
    let first = ranker.solve_ctx(&RankContext::from_colstore(&store));
    let shards: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "scsr"))
        .collect();
    assert_eq!(shards.len(), 1, "TWPR over mmap must leave one shard cache file");
    assert!(l1_distance(&baseline, &first.scores) <= 1e-12);

    // A fresh context reopens the cached shard file instead of rebuilding.
    let mtime = shards[0].metadata().unwrap().modified().unwrap();
    let again = ranker.solve_ctx(&RankContext::from_colstore(&store));
    assert_eq!(first.scores, again.scores);
    assert_eq!(
        shards[0].metadata().unwrap().modified().unwrap(),
        mtime,
        "second solve must reuse the shard cache, not rewrite it"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
