//! Prepared-engine equivalence: a cached `QRankEngine` must answer every
//! mixture exactly like a fresh `QRank` run — across corpus presets,
//! ablation variants, warm starts, and thread counts.

use scholar::core::engine::{MixParams, QRankEngine, SolveScratch};
use scholar::core::Ablation;
use scholar::corpus::generator::Preset;
use scholar::corpus::{Corpus, CorpusGenerator};
use scholar::{GeneratorConfig, QRank, QRankConfig};
use sgraph::stochastic::l1_distance;

/// Corpora spanning the generator presets (the larger presets scaled down
/// so the suite stays fast while still crossing the parallel-kernel
/// threshold).
fn preset_corpora() -> Vec<(&'static str, Corpus)> {
    vec![
        ("tiny-1", Preset::Tiny.generate(1)),
        ("tiny-9", Preset::Tiny.generate(9)),
        (
            "aan-scaled",
            CorpusGenerator::new(GeneratorConfig {
                initial_articles_per_year: 60.0,
                ..Preset::AanLike.config(7)
            })
            .generate(),
        ),
        (
            "dblp-scaled",
            CorpusGenerator::new(GeneratorConfig {
                initial_articles_per_year: 25.0,
                ..Preset::DblpLike.config(3)
            })
            .generate(),
        ),
    ]
}

fn assert_result_close(name: &str, a: &scholar::QRankResult, b: &scholar::QRankResult) {
    for (label, x, y) in [
        ("article", &a.article_scores, &b.article_scores),
        ("venue", &a.venue_scores, &b.venue_scores),
        ("author", &a.author_scores, &b.author_scores),
        ("twpr", &a.twpr_scores, &b.twpr_scores),
    ] {
        let l1 = l1_distance(x, y);
        assert!(l1 <= 1e-12, "{name}: {label} scores differ by L1 {l1}");
    }
}

#[test]
fn cached_engine_matches_fresh_run_across_presets() {
    for (name, corpus) in preset_corpora() {
        let cfg = QRankConfig::default();
        let engine = QRankEngine::build(&corpus, &cfg);
        let mut scratch = SolveScratch::new();
        // Solve repeatedly against the same plan — reused scratch, varied
        // mixtures — and check each answer against a from-scratch run.
        for cfg in [
            cfg.clone(),
            cfg.clone().with_lambdas(0.7, 0.2, 0.1),
            cfg.clone().with_maturity(3.0),
            QRankConfig { mu_venue: 0.9, mu_author: 0.1, ..cfg.clone() },
        ] {
            let cached = engine.solve_with(&MixParams::from_config(&cfg), None, &mut scratch);
            let fresh = QRank::new(cfg).run(&corpus);
            assert_result_close(name, &cached, &fresh);
        }
    }
}

#[test]
fn shared_engine_ablation_sweep_matches_fresh_runs() {
    let corpus = Preset::Tiny.generate(5);
    let base = QRankConfig::default();
    let swept = Ablation::sweep(&base, &corpus);
    assert_eq!(swept.len(), Ablation::all().len());
    for (ab, res) in &swept {
        let fresh = QRank::new(ab.apply(&base)).run(&corpus);
        assert_result_close(ab.name(), res, &fresh);
        assert!(res.outer.converged, "{} did not converge", ab.name());
    }
}

#[test]
fn warm_solves_match_fresh_warm_runs() {
    let corpus = Preset::Tiny.generate(6);
    let cfg = QRankConfig::default();
    let engine = QRankEngine::build(&corpus, &cfg);
    let mix = MixParams::from_config(&cfg);
    let cold = engine.solve(&mix);

    // A genuine warm start (yesterday's scores, slightly perturbed).
    let mut warm: Vec<f64> = cold.article_scores.clone();
    for (i, w) in warm.iter_mut().enumerate() {
        *w *= 1.0 + 0.01 * ((i % 7) as f64);
    }
    let cached = engine.solve_warm(&mix, Some(&warm));
    let fresh = QRank::new(cfg.clone()).run_warm(&corpus, Some(warm));
    assert_result_close("warm", &cached, &fresh);

    // Degenerate warm starts are dropped, not propagated: zero mass and
    // wrong length both fall back to the cold solve.
    let zero = engine.solve_warm(&mix, Some(&vec![0.0; corpus.num_articles()]));
    assert_eq!(zero.article_scores, cold.article_scores);
    let short = engine.solve_warm(&mix, Some(&[1.0, 2.0]));
    assert_eq!(short.article_scores, cold.article_scores);
}

#[test]
fn thread_count_does_not_change_any_score() {
    // Large enough to cross the parallel threshold so the balanced-range
    // kernels actually engage; the parallel partitions must be bitwise
    // equivalent to sequential execution.
    let corpus = CorpusGenerator::new(GeneratorConfig {
        initial_articles_per_year: 60.0,
        ..Preset::AanLike.config(11)
    })
    .generate();
    assert!(corpus.num_articles() > 4096, "corpus must exercise the parallel kernels");
    let reference: Option<scholar::QRankResult> = None;
    let mut reference = reference;
    for threads in [1usize, 2, 8] {
        let cfg = QRankConfig::default().with_threads(threads);
        let engine = QRankEngine::build(&corpus, &cfg);
        let res = engine.solve(&MixParams::from_config(&cfg));
        match &reference {
            None => reference = Some(res),
            Some(base) => {
                assert_eq!(
                    base.article_scores, res.article_scores,
                    "article scores changed at {threads} threads"
                );
                assert_eq!(
                    base.venue_scores, res.venue_scores,
                    "venue scores changed at {threads} threads"
                );
                assert_eq!(
                    base.author_scores, res.author_scores,
                    "author scores changed at {threads} threads"
                );
            }
        }
    }
}
